//! The joint disentangling solver (paper §IV-C, §V-A).
//!
//! Given N ≥ 3 antenna observations `(kᵢ, bᵢ)`, solve the 2N equations
//!
//! ```text
//! kᵢ = 4π · dist(Aᵢ, (x, y)) / c + k_t
//! bᵢ = θ_orient(Aᵢ, α) + b_t        (mod 2π)
//! ```
//!
//! for the 5 unknowns `(x, y, α, k_t, b_t)` by weighted nonlinear least
//! squares. The intercept residuals are *angular* (wrapped into
//! `(-π, π]`), which makes the cost surface multimodal in `α`; a coarse
//! multi-start over the working region × orientation grid followed by
//! Levenberg–Marquardt refinement finds the global optimum reliably.
//!
//! Two LM cores share the damping/retry policy:
//!
//! * [`levenberg_marquardt_analytic_with`] — the default hot path. The
//!   residuals of Eq. 6 are closed-form differentiable, so each iteration
//!   evaluates the residuals *and* the exact Jacobian in one fused pass
//!   (DESIGN.md §6 derives ∂r/∂p) and solves the SPD normal equations
//!   `(JᵀJ + λD)δ = −Jᵀr` by Cholesky, re-damping only the diagonal across
//!   the λ-adaptation retries of an iteration.
//! * [`levenberg_marquardt_with`] — the numeric fallback and test oracle:
//!   central-difference Jacobian (2 residual sweeps per parameter per
//!   iteration) with per-parameter step scales, MINPACK style, selected
//!   with [`JacobianMode::Numeric`]. Parameter magnitudes differ wildly
//!   (`k_t` ~1e-8 rad/Hz vs `x` ~1 m), hence the per-parameter steps.
//!
//! [`SolveSeeds`] additionally precomputes per-scene geometry (per-seed
//! per-antenna slopes, per-α-seed orientation/projection tables) once, so
//! the stage-1/stage-2 seeding of every tag against the same scene stops
//! recomputing `dist(Aᵢ, seed)` and `θ_orient(Aᵢ, α₀)` from scratch.
//!
//! By default the multi-start is **coarse-to-fine**: every position seed
//! is ranked by its cheap unrefined slope cost (an O(N) table lookup per
//! seed) and only the [`SolverConfig::refine_top_k`] best receive LM
//! refinement, with a cost-plateau early exit across both the seed beam
//! and the stage-3 joint short-list. [`SolverConfig::exhaustive`] restores
//! the refine-everything behaviour bit-for-bit. Consecutive sensing rounds
//! can also hand the previous round's state back in as a [`WarmStart`]:
//! the solver refines the prior first and skips the multi-start scan
//! whenever the result passes a validation gate against the coarse-scan
//! floor, falling back to the full scan otherwise so a stale prior never
//! captures the solve (see [`solve_2d_seeded_warm`]).
//!
//! Since the lane-core refactor this module is a thin *facade*: the LM
//! refinement engine lives in the dimension-generic
//! [`LmCore`] (`LmCore<5>` for the joint problem,
//! `LmCore<3>` for stage 1), the problem physics sits behind
//! [`ResidualModel`] implementations, and the
//! residual/seed-ranking hot loops run in explicit 4-wide lanes
//! ([`LaneMode`], escape hatch
//! [`SolverConfig::lane_mode`]). The pre-refactor solver is frozen
//! verbatim in [`crate::reference`] as the bit-exact oracle the facade is
//! pinned against (see DESIGN.md §6).

use crate::lm::{LaneMode, LaneStats, LmCore, ResidualModel, StepSolver, StepStats};
use crate::model::AntennaObservation;
use crate::obs;
use rfp_geom::{angle, AntennaPose, Region2, Vec2, Vec3};
use rfp_dsp::trig::{poly_atan2x4, poly_sin_cos};
use rfp_phys::polarization::{orientation_phase, planar_dipole, projection_magnitude};
use rfp_phys::propagation;

/// How the LM refinements obtain the Jacobian of the residuals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JacobianMode {
    /// Closed-form ∂r/∂p (DESIGN.md §6), evaluated fused with the
    /// residuals, normal equations solved by Cholesky — the default.
    #[default]
    Analytic,
    /// Central-difference Jacobian through the numeric
    /// [`levenberg_marquardt_with`] core — the config-selectable fallback
    /// and the oracle the analytic path is verified against in tests.
    Numeric,
}

/// Work counters of the LM cores, for profiling (see the `solver_profile`
/// bench). Counters accumulate monotonically per workspace; snapshot them
/// with [`LmWorkspace::stats`] (or the workspace-level `stats`) before and
/// after a solve and diff with [`SolveStats::since`] for per-solve counts.
///
/// The numeric core charges each finite-difference sweep as one residual
/// evaluation — exactly the cost the analytic path removes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Residual-vector evaluations (each is a full pass over the
    /// residuals).
    pub residual_evals: u64,
    /// Jacobian evaluations. Analytic: fused with one residual pass.
    /// Numeric: assembled from `2·n_params` sweeps, charged to
    /// `residual_evals`.
    pub jacobian_evals: u64,
    /// LM iterations across all starts.
    pub iterations: u64,
}

impl SolveStats {
    /// The work performed since `earlier` was snapshotted.
    #[must_use]
    pub fn since(self, earlier: SolveStats) -> SolveStats {
        SolveStats {
            residual_evals: self.residual_evals - earlier.residual_evals,
            jacobian_evals: self.jacobian_evals - earlier.jacobian_evals,
            iterations: self.iterations - earlier.iterations,
        }
    }
}

/// Seed-pruning and warm-start effectiveness counters, accumulated
/// monotonically per workspace (snapshot with
/// [`SolverWorkspace::prune_stats`] and diff with [`PruneStats::since`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Multi-start position seeds considered across all solves.
    pub seeds_total: u64,
    /// Seeds that actually received a stage-1 LM refinement (includes the
    /// warm-start gate's floor refinement).
    pub seeds_refined: u64,
    /// Warm-started refinements accepted by the validation gate (the
    /// multi-start scan was skipped).
    pub warm_start_hits: u64,
    /// Warm-start attempts rejected by the gate (fell back to the scan).
    pub warm_start_misses: u64,
}

impl PruneStats {
    /// Seeds skipped by the coarse ranking / early exit — the stage-1 work
    /// the coarse-to-fine scan avoided.
    pub fn seeds_pruned(&self) -> u64 {
        self.seeds_total.saturating_sub(self.seeds_refined)
    }

    /// The counters accumulated since `earlier` was snapshotted.
    #[must_use]
    pub fn since(self, earlier: PruneStats) -> PruneStats {
        PruneStats {
            seeds_total: self.seeds_total - earlier.seeds_total,
            seeds_refined: self.seeds_refined - earlier.seeds_refined,
            warm_start_hits: self.warm_start_hits - earlier.warm_start_hits,
            warm_start_misses: self.warm_start_misses - earlier.warm_start_misses,
        }
    }
}

/// Per-scene constants of the 2-D solve, computed once and shared
/// read-only by every solve against the same `(region, config)` pair —
/// the batch engine builds one of these per scene and hands it to all
/// workers (see `crate::batch`).
///
/// [`SolveSeeds::for_scene`] additionally precomputes the per-seed
/// per-antenna slope table and the α-seed orientation/projection tables
/// for a known antenna deployment, hoisting that geometry out of the
/// per-tag loop entirely. Solves against observations whose poses differ
/// from the cached deployment (an antenna dropped by extraction, say)
/// transparently fall back to direct evaluation with bit-identical
/// results.
#[derive(Debug, Clone)]
pub struct SolveSeeds {
    /// Multi-start position grid over the working region.
    pub(crate) position_starts: Vec<Vec2>,
    /// Number of α seeds scanned per position candidate.
    pub(crate) alpha_steps: usize,
    /// Region candidates must refine into to be preferred.
    pub(crate) admissible: Region2,
    /// Precomputed per-antenna geometry tables (only with
    /// [`SolveSeeds::for_scene`]).
    pub(crate) geometry: Option<SeedGeometry>,
}

/// The hoisted per-scene geometry: everything in the stage-1/stage-2
/// seeding that depends only on `(antenna poses, seed grids)`, not on the
/// tag. Entries are computed by exactly the expressions the fallback path
/// uses, so table lookups are bit-identical to direct evaluation.
#[derive(Debug, Clone)]
pub(crate) struct SeedGeometry {
    /// The deployment the tables were built for; tables are valid only
    /// when the observations' poses match these exactly.
    pub(crate) poses: Vec<AntennaPose>,
    /// `seed_slopes[s·n + i]` = `4π·dist(Aᵢ, seedₛ)/c` — the model slope
    /// of antenna *i* for grid seed *s*.
    pub(crate) seed_slopes: Vec<f64>,
    /// `orient[a·n + i]` = `θ_orient(Aᵢ, α₀(a))` for α-seed index *a*.
    pub(crate) orient: Vec<f64>,
    /// `proj[a·n + i]` = dipole projection magnitude at antenna *i* for
    /// α-seed index *a* (feeds the RSSI mode penalty).
    pub(crate) proj: Vec<f64>,
    /// `proj_db[a·n + i]` = `20·log10(proj[a·n + i])` — the RSSI penalty's
    /// projection term, hoisted so the α scan stops paying a `log10` per
    /// antenna per α step. `proj` stays alongside it because the penalty's
    /// readability guard tests the *linear* projection.
    pub(crate) proj_db: Vec<f64>,
}

impl SeedGeometry {
    /// The tables describe `observations` only if the poses agree exactly
    /// (same antennas, same order) — extraction can drop antennas.
    pub(crate) fn matches(&self, observations: &[AntennaObservation]) -> bool {
        self.poses.len() == observations.len()
            && self.poses.iter().zip(observations).all(|(p, o)| *p == o.pose)
    }
}

impl SolveSeeds {
    /// Precomputes the multi-start seeds for `region` under `config`
    /// without geometry tables (no antenna deployment known yet); the
    /// solver evaluates seed geometry directly.
    pub fn new(region: Region2, config: &SolverConfig) -> Self {
        let (nx, ny) = config.position_starts;
        SolveSeeds {
            position_starts: region.grid(nx.max(1), ny.max(1)).collect(),
            alpha_steps: (config.orientation_starts.max(1) * 8).max(24),
            admissible: region.expanded(0.3),
            geometry: None,
        }
    }

    /// [`SolveSeeds::new`] plus the per-antenna geometry tables for a known
    /// deployment `poses` — the per-scene precomputation the pipelines and
    /// the batch engine use. Results are bit-identical to the table-free
    /// seeds; only the per-tag seeding cost changes.
    pub fn for_scene(region: Region2, config: &SolverConfig, poses: &[AntennaPose]) -> Self {
        let mut seeds = Self::new(region, config);
        let n = poses.len();
        let mut seed_slopes = Vec::with_capacity(seeds.position_starts.len() * n);
        for &seed in &seeds.position_starts {
            for pose in poses {
                let d = pose.position().distance(seed.with_z(0.0));
                seed_slopes.push(propagation::slope_from_distance(d));
            }
        }
        let mut orient = Vec::with_capacity(seeds.alpha_steps * n);
        let mut proj = Vec::with_capacity(seeds.alpha_steps * n);
        let mut proj_db = Vec::with_capacity(seeds.alpha_steps * n);
        for a in 0..seeds.alpha_steps {
            let alpha0 = std::f64::consts::PI * a as f64 / seeds.alpha_steps as f64;
            let w = planar_dipole(alpha0);
            for pose in poses {
                orient.push(orientation_phase(pose, w));
                let p = projection_magnitude(pose, w);
                proj.push(p);
                proj_db.push(20.0 * p.log10());
            }
        }
        seeds.geometry = Some(SeedGeometry {
            poses: poses.to_vec(),
            seed_slopes,
            orient,
            proj,
            proj_db,
        });
        seeds
    }

    /// Number of position seeds in the multi-start grid — the beam width
    /// (`refine_top_k`) at which pruning degenerates to the full scan.
    pub fn seed_count(&self) -> usize {
        self.position_starts.len()
    }
}

/// Reusable scratch buffers for repeated 2-D solves. All contents are
/// overwritten by each solve; reusing one workspace across calls only
/// avoids reallocation, it never changes results.
///
/// Since the lane-core refactor the parameter vectors are fixed-size
/// arrays (`[f64; 5]` joint, `[f64; 3]` slope-only) living inline in the
/// candidate lists, so no per-candidate heap storage (and no recycling
/// pool) exists at all: cold and warm solves are allocation-free once the
/// buffers are sized (pinned by the counting-allocator suite).
#[derive(Debug, Default)]
pub struct SolverWorkspace {
    /// The joint 5-parameter LM engine.
    joint: LmCore<5>,
    /// The stage-1 slope-only 3-parameter LM engine.
    slope: LmCore<3>,
    /// Stage-1 refined candidates `(params, cost, seed index)`.
    position_candidates: Vec<([f64; 3], f64, usize)>,
    /// `(coarse cost, seed index, k_t seed)` ranking of the coarse-to-fine
    /// scan.
    coarse: Vec<(f64, usize, f64)>,
    /// `(α₀, b_t seed, ranking cost)` per α scan step.
    alpha_ranked: Vec<(f64, f64, f64)>,
    /// Per-antenna distances of the current stage-2 candidate.
    dists: Vec<f64>,
    /// Per-antenna `rssiᵢ + 40·log10(dᵢ)` of the current stage-2
    /// candidate — the α-independent half of the RSSI penalty, hoisted
    /// out of the α scan.
    rssi_base: Vec<f64>,
    /// Per-antenna `θ_orient` / projection rows when no geometry table
    /// applies.
    orient_row: Vec<f64>,
    proj_row: Vec<f64>,
    proj_db_row: Vec<f64>,
    /// Per-α closed-form `b_t` seeds and squared intercept residuals,
    /// cached by the first α scan of a solve. Both depend only on the
    /// observations and the α geometry — not on the position candidate —
    /// so the second and later scans of the same solve replay them
    /// instead of recomputing the circular means. Cleared at every solve
    /// entry (`alpha_bt0.is_empty()` marks the cache cold).
    alpha_bt0: Vec<f64>,
    alpha_rb2: Vec<f64>,
    /// Stage-3 refined candidates; the winner is extracted by index.
    refined: Vec<([f64; 5], f64)>,
    /// Scratch of the Gauss–Newton covariance propagation.
    uncert: UncertScratch,
    /// Pruning / warm-start effectiveness tallies.
    prune: PruneStats,
    /// Lane tallies of the coarse seed ranking (the LM cores keep their
    /// own row tallies).
    lanes: LaneStats,
}

/// Scratch buffers of [`estimate_uncertainty`]: residuals, Jacobian and
/// the normal-equation/covariance matrices, reused across solves.
#[derive(Debug, Default)]
struct UncertScratch {
    r: Vec<f64>,
    r_minus: Vec<f64>,
    work: Vec<f64>,
    jac: Vec<f64>,
    jtj: Vec<f64>,
    cov: Vec<f64>,
    e: Vec<f64>,
}

impl SolverWorkspace {
    /// Snapshot of the LM work counters accumulated by solves run against
    /// this workspace (diff two snapshots with [`SolveStats::since`] for
    /// per-solve counts). Sums the joint and slope cores, so totals match
    /// the single-workspace accounting of the pre-refactor solver.
    pub fn stats(&self) -> SolveStats {
        let j = self.joint.stats();
        let s = self.slope.stats();
        SolveStats {
            residual_evals: j.residual_evals + s.residual_evals,
            jacobian_evals: j.jacobian_evals + s.jacobian_evals,
            iterations: j.iterations + s.iterations,
        }
    }

    /// Snapshot of the seed-pruning / warm-start effectiveness counters
    /// (diff with [`PruneStats::since`]).
    pub fn prune_stats(&self) -> PruneStats {
        self.prune
    }

    /// Snapshot of the 4-wide lane tallies: the coarse seed-ranking blocks
    /// plus both LM cores' residual-row blocks (diff with
    /// [`LaneStats::since`]).
    pub fn lane_stats(&self) -> LaneStats {
        self.lanes
            .merged(self.joint.lane_stats())
            .merged(self.slope.lane_stats())
    }

    /// Snapshot of the damped-step tallies — λ retries, factorization
    /// failures, cached λ-resolves — summed over both LM cores (diff with
    /// [`StepStats::since`]).
    pub fn step_stats(&self) -> StepStats {
        self.joint.step_stats().merged(self.slope.step_stats())
    }
}

/// Configuration of the 2-D disentangling solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// Expected slope noise (rad/Hz); weights the slope residuals.
    pub slope_sigma: f64,
    /// Expected intercept noise (rad); weights the intercept residuals.
    pub intercept_sigma: f64,
    /// Multi-start position grid (nx, ny) over the working region.
    pub position_starts: (usize, usize),
    /// Multi-start orientation count over `[0, π)`.
    pub orientation_starts: usize,
    /// Maximum LM iterations per start.
    pub max_iterations: usize,
    /// Relative cost-decrease tolerance for LM convergence.
    pub tolerance: f64,
    /// Expected RSSI noise (dB) used when ranking candidate modes by
    /// polarization-mismatch consistency. The wrapped intercept equations
    /// admit near-twin `α` solutions with 3 antennas; the per-antenna RSSI
    /// pattern (`20·log10` of the dipole projection) breaks the tie. Set to
    /// `f64::INFINITY` to disable and rank by phase cost alone.
    pub rssi_sigma_db: f64,
    /// Jacobian mode of the LM refinements: closed-form (default) or the
    /// central-difference fallback (see [`JacobianMode`]).
    pub jacobian: JacobianMode,
    /// Stage-1 beam width of the coarse-to-fine scan: only the
    /// `refine_top_k` position seeds with the lowest *unrefined* slope
    /// cost receive LM refinement. `None` refines every seed; combined
    /// with `early_exit_rel_tol = 0` that reproduces the exhaustive
    /// multi-start bit-for-bit (see [`SolverConfig::exhaustive`]).
    pub refine_top_k: Option<usize>,
    /// Cost-plateau early exit of the coarse-to-fine scan: once at least
    /// two candidates of a stage are refined, the remaining candidates
    /// whose *pre-refinement* cost already exceeds the best refined cost
    /// by this relative margin are skipped. Applies to the stage-1 seed
    /// beam and the stage-3 joint short-list; `0` disables the exit.
    pub early_exit_rel_tol: f64,
    /// Warm-start validation gate: a warm-started refinement is accepted
    /// only when its ranking cost stays within this relative margin of the
    /// coarse-scan floor (the cost of the best coarse seed after stage-1
    /// refinement and an α scan — a value the scan itself could reach).
    /// Teleporting tags fail the gate and fall back to the full scan.
    pub warm_gate_rel_tol: f64,
    /// How the hot loops (coarse seed ranking, residual/Jacobian rows)
    /// traverse their data: explicit 4-wide lanes (default) or the plain
    /// scalar loop. Both produce bit-identical results — rows are
    /// independent and written in a fixed order — so this is purely an
    /// escape hatch / A-B switch (see [`LaneMode`]).
    pub lane_mode: LaneMode,
    /// How each damped LM step `(JᵀJ + λD)δ = −Jᵀr` is solved: a fresh
    /// Cholesky factorization per λ attempt (default, the frozen
    /// bit-identity reference) or the tridiagonal cache that factors
    /// `JᵀJ` once per λ ladder and resolves further retries in O(P²)
    /// (see [`StepSolver`], pinned ≤1e-9 against the default).
    pub step_solver: StepSolver,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            slope_sigma: 1.0e-10,
            intercept_sigma: 0.08,
            position_starts: (6, 6),
            orientation_starts: 6,
            max_iterations: 60,
            tolerance: 1e-10,
            rssi_sigma_db: 1.0,
            jacobian: JacobianMode::Analytic,
            refine_top_k: Some(8),
            early_exit_rel_tol: 0.5,
            warm_gate_rel_tol: 0.25,
            lane_mode: LaneMode::Wide4,
            step_solver: StepSolver::Cholesky,
        }
    }
}

impl SolverConfig {
    /// The exhaustive escape hatch: refine every multi-start seed with no
    /// early exit, reproducing the pre-pruning solver bit-for-bit.
    #[must_use]
    pub fn exhaustive() -> Self {
        SolverConfig {
            refine_top_k: None,
            early_exit_rel_tol: 0.0,
            ..SolverConfig::default()
        }
    }

    /// True when the multi-start scan runs the legacy exhaustive loop
    /// (every seed refined, grid order, no early exit).
    pub(crate) fn is_exhaustive(&self) -> bool {
        self.refine_top_k.is_none() && self.early_exit_rel_tol <= 0.0
    }
}

/// A cross-round warm-start prior for the 2-D solve: the previous round's
/// disentangled state `(x, y, α, k_t, b_t)`, optionally with the position
/// advanced by a motion model (see
/// [`TagTracker::extrapolate`](crate::tracking::TagTracker::extrapolate)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmStart {
    /// Predicted tag position, metres.
    pub position: Vec2,
    /// Previous dipole orientation, radians.
    pub orientation: f64,
    /// Previous material/device slope term `k_t`, rad/Hz.
    pub kt: f64,
    /// Previous material/device intercept term `b_t`, radians.
    pub bt: f64,
}

impl WarmStart {
    /// The warm start implied by a previous round's estimate.
    pub fn from_estimate(estimate: &TagEstimate2D) -> Self {
        WarmStart {
            position: estimate.position,
            orientation: estimate.orientation,
            kt: estimate.kt,
            bt: estimate.bt,
        }
    }

    /// Replaces the position prediction (e.g. with a tracker's
    /// velocity-extrapolated position) while keeping the slow-moving
    /// material terms.
    #[must_use]
    pub fn with_position(mut self, position: Vec2) -> Self {
        self.position = position;
        self
    }

    pub(crate) fn params(&self) -> [f64; 5] {
        [self.position.x, self.position.y, self.orientation, self.kt, self.bt]
    }
}

/// Cross-solve warm-gate state for tracking callers
/// ([`solve_2d_tracking_warm`]): caches the coarse-scan cost floor the
/// warm-start gate compares against, so steady-state advances skip the
/// per-solve stage-1 refinement + α scan that anchors it.
///
/// At tracking cadence consecutive windows overlap almost entirely, so
/// the floor drifts far more slowly than the gate's relative tolerance
/// ([`SolverConfig::warm_gate_rel_tol`]); re-anchoring it with a full
/// recomputation every [`reanchor period`](Self::with_period) bounds the
/// staleness. The cached floor can only *accept* a prior early: a miss
/// against it triggers an immediate re-anchor and a definitive retest
/// against the fresh floor — exactly the comparison
/// [`solve_2d_seeded_warm`] makes — before the multi-start scan is paid
/// for, and a confirmed miss (the scan path runs) invalidates the cache.
/// A teleporting tag therefore still fails the gate exactly as in the
/// ungated solve: its cost sits orders of magnitude above any floor,
/// stale or fresh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmGate {
    /// Cached coarse-scan floor; infinite when invalid.
    floor: f64,
    /// Warm solves gated against the cached floor since the last anchor.
    age: u32,
    /// Full re-anchors happen every this many warm solves.
    period: u32,
}

impl WarmGate {
    /// A gate that re-anchors its cached floor every `period` warm solves
    /// (clamped to ≥ 1; `1` re-anchors every solve, matching
    /// [`solve_2d_seeded_warm`] exactly).
    pub fn with_period(period: u32) -> Self {
        WarmGate { floor: f64::INFINITY, age: 0, period: period.max(1) }
    }

    /// The cached floor when it is fresh enough to gate against.
    fn cached(&self) -> Option<f64> {
        (self.floor.is_finite() && self.age < self.period).then_some(self.floor)
    }

    fn anchor(&mut self, floor: f64) {
        self.floor = floor;
        self.age = 0;
    }

    fn invalidate(&mut self) {
        self.floor = f64::INFINITY;
        self.age = 0;
    }
}

impl Default for WarmGate {
    /// Re-anchor every 16 warm solves: at the streaming dwell cadence
    /// (50 advances per hop round, 4-round windows) that is ≲ 1 % window
    /// turnover per gated solve, far inside the gate tolerance.
    fn default() -> Self {
        WarmGate::with_period(16)
    }
}

/// The disentangled physical state of one tag in 2-D.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TagEstimate2D {
    /// Tag coordinates on the surveillance plane, metres.
    pub position: Vec2,
    /// Tag dipole orientation, radians in `[0, π)` (dipoles are
    /// π-symmetric).
    pub orientation: f64,
    /// Material/device slope term `k_t`, rad/Hz.
    pub kt: f64,
    /// Material/device intercept term `b_t`, radians in `[0, 2π)`.
    pub bt: f64,
    /// Final weighted cost (sum of squared sigma-normalized residuals).
    pub cost: f64,
    /// RMS of the sigma-normalized residuals (≈1 when the noise model is
    /// well calibrated, ≫1 when the linear model is violated).
    pub residual_rms: f64,
    /// 1-σ position uncertainty from the local curvature of the cost
    /// surface (Gauss–Newton covariance), metres. A *statistical* bound —
    /// model violations (multipath bias) are not included.
    pub position_std_m: f64,
    /// 1-σ orientation uncertainty, radians (same caveat).
    pub orientation_std_rad: f64,
    /// Full 2×2 position covariance `[[σxx², σxy], [σxy, σyy²]]`, m².
    pub position_cov: [[f64; 2]; 2],
}

impl TagEstimate2D {
    /// The 1-σ uncertainty ellipse of the position estimate, if the
    /// covariance is well-formed.
    pub fn uncertainty_ellipse(&self) -> Option<rfp_geom::CovarianceEllipse> {
        rfp_geom::CovarianceEllipse::from_covariance(self.position_cov)
    }
}

/// Errors from [`solve_2d`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// Fewer than three antennas: 2N < 5 unknowns.
    TooFewAntennas {
        /// Number of observations provided.
        provided: usize,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::TooFewAntennas { provided } => write!(
                f,
                "2-D disentangling needs at least 3 antennas, got {provided}"
            ),
        }
    }
}

impl std::error::Error for SolveError {}

/// Solves the 2-D disentangling problem.
///
/// `region` bounds the multi-start grid (the paper's known working region);
/// the refined position may land slightly outside it — it is a seed
/// region, not a hard constraint.
///
/// # Errors
///
/// [`SolveError::TooFewAntennas`] when fewer than 3 observations are given.
pub fn solve_2d(
    observations: &[AntennaObservation],
    region: Region2,
    config: &SolverConfig,
) -> Result<TagEstimate2D, SolveError> {
    let poses: Vec<AntennaPose> = observations.iter().map(|o| o.pose).collect();
    let seeds = SolveSeeds::for_scene(region, config, &poses);
    let mut workspace = SolverWorkspace::default();
    solve_2d_seeded(observations, &seeds, config, &mut workspace)
}

/// [`solve_2d`] against precomputed [`SolveSeeds`] and a reusable
/// [`SolverWorkspace`] — the hot-path entry used by the batch engine.
/// Produces bit-identical results to [`solve_2d`] with the same inputs.
///
/// # Errors
///
/// [`SolveError::TooFewAntennas`] when fewer than 3 observations are given.
pub fn solve_2d_seeded(
    observations: &[AntennaObservation],
    seeds: &SolveSeeds,
    config: &SolverConfig,
    workspace: &mut SolverWorkspace,
) -> Result<TagEstimate2D, SolveError> {
    solve_2d_seeded_warm(observations, seeds, config, workspace, None)
}

/// [`solve_2d_seeded`] with an optional cross-round [`WarmStart`] prior.
///
/// When `warm` is given the solver refines the prior *first* and, if the
/// refined result passes the validation gate (in the admissible region and
/// its ranking cost within [`SolverConfig::warm_gate_rel_tol`] of the
/// coarse-scan floor), returns it without running the multi-start scan at
/// all — the steady-state tracking fast path. A prior in a stale basin
/// (the tag teleported, the scene changed) fails the gate and the solver
/// falls back to the normal scan, so warm starts never change *which*
/// optimum wins, only how fast it is found.
///
/// # Errors
///
/// [`SolveError::TooFewAntennas`] when fewer than 3 observations are given.
pub fn solve_2d_seeded_warm(
    observations: &[AntennaObservation],
    seeds: &SolveSeeds,
    config: &SolverConfig,
    workspace: &mut SolverWorkspace,
    warm: Option<&WarmStart>,
) -> Result<TagEstimate2D, SolveError> {
    solve_2d_gated(observations, seeds, config, workspace, warm, None)
}

/// [`solve_2d_seeded_warm`] for tracking callers that solve the same
/// slowly sliding window many times per round: the warm-start gate reuses
/// the [`WarmGate`]'s cached coarse-scan floor instead of re-anchoring it
/// (stage-1 refinement + α scan of the best coarse seed) on every solve.
/// Cold solves, gate misses and periodic re-anchors are unchanged from
/// [`solve_2d_seeded_warm`]; only the floor's freshness differs, bounded
/// by the gate's re-anchor period.
///
/// # Errors
///
/// [`SolveError::TooFewAntennas`] when fewer than 3 observations are given.
pub fn solve_2d_tracking_warm(
    observations: &[AntennaObservation],
    seeds: &SolveSeeds,
    config: &SolverConfig,
    workspace: &mut SolverWorkspace,
    warm: Option<&WarmStart>,
    gate: &mut WarmGate,
) -> Result<TagEstimate2D, SolveError> {
    solve_2d_gated(observations, seeds, config, workspace, warm, Some(gate))
}

/// Coarse ranking shared by the pruned stage-1 beam and the warm-start
/// floor: every position seed scored by its *unrefined* slope cost — an
/// O(N) table lookup per seed. Ties break towards grid order, which is
/// exactly how the exhaustive path's cost sort breaks them; the explicit
/// (cost, index) key makes the ordering total, so the unstable
/// (allocation-free) sort is deterministic.
///
/// With geometry tables and [`LaneMode::Wide4`] the ranking evaluates 4
/// seeds per pass over the slope table: the two per-seed accumulations
/// (`k_t` seed mean, then the cost) run in 4 independent lanes whose
/// per-seed operation order over the antennas is exactly the scalar
/// loop's, so the lane path is bit-identical to
/// [`coarse_seed_cost_2d`].
fn rank_coarse_2d(
    observations: &[AntennaObservation],
    geometry: Option<&SeedGeometry>,
    seeds: &SolveSeeds,
    config: &SolverConfig,
    coarse: &mut Vec<(f64, usize, f64)>,
    lanes: &mut LaneStats,
) {
    let _rank_span = obs::span("seed_rank");
    coarse.clear();
    match (geometry, config.lane_mode) {
        (Some(g), LaneMode::Wide4 | LaneMode::Padded4) => {
            let n = observations.len();
            let total = seeds.position_starts.len();
            let mut s = 0usize;
            while s + 4 <= total {
                let bases = [s * n, (s + 1) * n, (s + 2) * n, (s + 3) * n];
                let mut sum = [0.0f64; 4];
                for (i, o) in observations.iter().enumerate() {
                    for l in 0..4 {
                        sum[l] += o.slope - g.seed_slopes[bases[l] + i];
                    }
                }
                let kt0 = sum.map(|v| v / n as f64);
                let mut cost = [0.0f64; 4];
                for (i, o) in observations.iter().enumerate() {
                    for l in 0..4 {
                        let rs =
                            (o.slope - g.seed_slopes[bases[l] + i] - kt0[l]) / config.slope_sigma;
                        cost[l] += rs * rs;
                    }
                }
                for l in 0..4 {
                    coarse.push((cost[l], s + l, kt0[l]));
                }
                lanes.seed_blocks += 1;
                s += 4;
            }
            for (idx, &seed_pos) in seeds.position_starts.iter().enumerate().skip(s) {
                let (kt0, cost) =
                    coarse_seed_cost_2d(observations, geometry, idx, seed_pos, config);
                coarse.push((cost, idx, kt0));
                lanes.scalar_rows += 1;
            }
        }
        _ => {
            for (s, &seed_pos) in seeds.position_starts.iter().enumerate() {
                let (kt0, cost) =
                    coarse_seed_cost_2d(observations, geometry, s, seed_pos, config);
                coarse.push((cost, s, kt0));
            }
            lanes.scalar_rows += seeds.position_starts.len() as u64;
        }
    }
    coarse.sort_unstable_by(|a, b| {
        a.0.partial_cmp(&b.0).expect("finite costs").then_with(|| a.1.cmp(&b.1))
    });
}

fn solve_2d_gated(
    observations: &[AntennaObservation],
    seeds: &SolveSeeds,
    config: &SolverConfig,
    workspace: &mut SolverWorkspace,
    warm: Option<&WarmStart>,
    mut gate: Option<&mut WarmGate>,
) -> Result<TagEstimate2D, SolveError> {
    if observations.len() < 3 {
        return Err(SolveError::TooFewAntennas { provided: observations.len() });
    }
    let _solve_span = obs::span("solve_2d");
    let _solve_timer = obs::time_histogram(obs::id::SOLVE_LATENCY_US);
    let before = if obs::active() {
        Some((workspace.stats(), workspace.lane_stats(), workspace.step_stats()))
    } else {
        None
    };
    let n_obs = observations.len();
    let geometry = seeds.geometry.as_ref().filter(|g| g.matches(observations));
    let SolverWorkspace {
        joint,
        slope,
        position_candidates,
        coarse,
        alpha_ranked,
        dists,
        rssi_base,
        orient_row,
        proj_row,
        proj_db_row,
        alpha_bt0,
        alpha_rb2,
        refined,
        uncert,
        prune,
        lanes,
    } = workspace;
    position_candidates.clear();
    refined.clear();
    // The α-scan cache is keyed by the observations of *this* solve.
    alpha_bt0.clear();
    alpha_rb2.clear();

    // The problem separates naturally, which both speeds the solve up and
    // avoids local minima:
    //
    // 1. Position + k_t depend only on the slope equations — a smooth
    //    3-parameter least-squares problem seeded from a coarse grid.
    // 2. Given a position candidate, orientation is found by scanning α
    //    over [0, π) with the closed-form circular-mean b_t — the wrapped
    //    intercept residuals are multimodal in α, so a scan is the robust
    //    way in.
    // 3. A full joint 5-parameter LM refinement from the combined seeds
    //    lets the two halves inform each other.
    //
    // Candidates refining to a point outside the (slightly expanded)
    // working region are physically impossible deployments — when the
    // per-antenna observations are inconsistent (multipath bias), the
    // near-degenerate range direction otherwise lets the unconstrained
    // optimum drift metres away. Prefer in-region candidates; fall back to
    // the overall best only if no start stayed inside.
    let admissible = seeds.admissible;
    let total_seeds = seeds.position_starts.len() as u64;
    let mut seeds_refined: u64 = 0;

    // Coarse ranking (see `rank_coarse_2d`), shared by the pruned stage-1
    // beam and the warm-start floor. A tracking caller with a fresh cached
    // floor defers it: when the warm gate accepts — the steady state — the
    // ranking is never needed at all, and a gate miss ranks lazily below.
    let cached_floor = match (&gate, warm) {
        (Some(g), Some(_)) => g.cached(),
        _ => None,
    };
    coarse.clear();
    let mut coarse_ready = false;
    if cached_floor.is_none() && (warm.is_some() || !config.is_exhaustive()) {
        rank_coarse_2d(observations, geometry, seeds, config, coarse, lanes);
        coarse_ready = true;
    }

    // Warm start: refine the prior first and gate the result against the
    // coarse-scan floor — the cost the scan itself would reach from its
    // best coarse seed (stage-1 refined, best α at it). A prior still in
    // the true basin refines to a key at or below that floor; a stale
    // basin's key is far above it and falls through to the scan.
    let warm_attempted = warm.is_some();
    if let Some(w) = warm {
        let _warm_span = obs::span("warm_start");
        let (p, cost) = refine_joint_2d(joint, observations, config, w.params());
        let key = cost
            + rssi_mode_penalty(
                observations,
                Vec2::new(p[0], p[1]),
                p[2],
                config.rssi_sigma_db,
            );
        let in_region = admissible.contains(Vec2::new(p[0], p[1]));
        let gate_ok = |floor: f64| key <= floor * (1.0 + config.warm_gate_rel_tol) + 1e-9;
        // Fast pre-test against the cached floor, then — only when that
        // rejects — a fresh re-anchor and the definitive retest. A cached
        // miss is therefore always confirmed against exactly the floor the
        // ungated path would have used before the full scan is paid for.
        let mut accept = match cached_floor {
            Some(floor) if in_region && gate_ok(floor) => {
                if let Some(g) = gate.as_deref_mut() {
                    g.age += 1;
                }
                true
            }
            _ => false,
        };
        if !accept {
            if !coarse_ready {
                rank_coarse_2d(observations, geometry, seeds, config, coarse, lanes);
                coarse_ready = true;
            }
            let (_, best_seed, best_kt) = coarse[0];
            let seed_pos = seeds.position_starts[best_seed];
            let (sp, _) =
                refine_slope_2d(slope, observations, config, [seed_pos.x, seed_pos.y, best_kt]);
            seeds_refined += 1;
            scan_alphas_2d(
                observations,
                geometry,
                config,
                seeds.alpha_steps,
                (sp[0], sp[1], sp[2]),
                dists,
                rssi_base,
                orient_row,
                proj_row,
                proj_db_row,
                alpha_bt0,
                alpha_rb2,
                alpha_ranked,
            );
            let floor = alpha_ranked.first().map_or(f64::INFINITY, |&(_, _, c)| c);
            if let Some(g) = gate.as_deref_mut() {
                g.anchor(floor);
            }
            accept = in_region && gate_ok(floor);
        }
        if accept {
            prune.seeds_total += total_seeds;
            prune.seeds_refined += seeds_refined;
            prune.warm_start_hits += 1;
            flush_obs_2d(joint, slope, *lanes, before, total_seeds, seeds_refined, true, false);
            let estimate = build_estimate_2d(observations, &p, cost, config, uncert);
            return Ok(estimate);
        }
        // Confirmed gate miss: the scan below recomputes the optimum from
        // scratch, so drop the cached floor and re-anchor next warm solve.
        if let Some(g) = gate {
            g.invalidate();
        }
    }

    // A deferred coarse ranking is needed after all (warm gate missed, or
    // the prior was absent) for the pruned stage-1 beam.
    if !coarse_ready && !config.is_exhaustive() {
        rank_coarse_2d(observations, geometry, seeds, config, coarse, lanes);
    }

    // Stage 1: slope-only position solve. Exhaustive mode refines every
    // grid seed (the pre-pruning behaviour, bit-for-bit); the default
    // coarse-to-fine mode refines only the top-K coarse-ranked seeds with
    // a cost-plateau early exit.
    let stage1_span = obs::span("stage1_slope");
    if config.is_exhaustive() {
        for (s, &seed_pos) in seeds.position_starts.iter().enumerate() {
            let kt0 = match geometry {
                Some(g) => {
                    let base = s * n_obs;
                    let sum: f64 = observations
                        .iter()
                        .enumerate()
                        .map(|(i, o)| o.slope - g.seed_slopes[base + i])
                        .sum();
                    sum / n_obs as f64
                }
                None => seed_kt(observations, seed_pos),
            };
            let (p, cost) =
                refine_slope_2d(slope, observations, config, [seed_pos.x, seed_pos.y, kt0]);
            position_candidates.push((p, cost, s));
        }
        // Ties on cost keep grid (push) order via the explicit seed-index
        // key — candidates were pushed in ascending `s`, so this matches
        // what a stable cost-only sort would produce, while the unstable
        // sort stays allocation-free.
        position_candidates.sort_unstable_by(|a, b| {
            a.1.partial_cmp(&b.1).expect("finite costs").then_with(|| a.2.cmp(&b.2))
        });
    } else {
        let beam = config.refine_top_k.unwrap_or(usize::MAX).max(1);
        let mut best_refined = f64::INFINITY;
        for (rank, &(coarse_cost, s, kt0)) in coarse.iter().enumerate() {
            if rank >= beam {
                break;
            }
            // Plateau exit: once two seeds are refined, a seed whose
            // *unrefined* cost already exceeds the best refined cost by
            // the margin cannot plausibly overtake it.
            if config.early_exit_rel_tol > 0.0
                && rank >= 2
                && coarse_cost > best_refined * (1.0 + config.early_exit_rel_tol)
            {
                break;
            }
            let seed_pos = seeds.position_starts[s];
            let (p, cost) =
                refine_slope_2d(slope, observations, config, [seed_pos.x, seed_pos.y, kt0]);
            best_refined = best_refined.min(cost);
            position_candidates.push((p, cost, s));
        }
        position_candidates.sort_unstable_by(|a, b| {
            a.1.partial_cmp(&b.1).expect("finite costs").then_with(|| a.2.cmp(&b.2))
        });
    }
    seeds_refined += position_candidates.len() as u64;
    #[allow(clippy::drop_non_drop)] // ends the span early; inert unit guard without `obs`
    drop(stage1_span);
    // Keep the best in-region candidates by index (the overall best, at
    // index 0 after the sort, is the backup if none stayed inside).
    let mut stage1 = [0usize; 2];
    let mut stage1_len = 0usize;
    for (i, (p, _, _)) in position_candidates.iter().enumerate() {
        if admissible.contains(Vec2::new(p[0], p[1])) {
            stage1[stage1_len] = i;
            stage1_len += 1;
            if stage1_len == stage1.len() {
                break;
            }
        }
    }
    if stage1_len == 0 {
        stage1_len = 1;
    }

    // Stages 2 + 3: α scan then joint refinement. Final candidates are
    // ranked by phase cost *plus* the RSSI mode penalty: the wrapped
    // intercept system admits near-twin α solutions (3 antennas, 2
    // intercept unknowns), and the per-antenna polarization-mismatch
    // pattern in the RSSI is the physical tie-breaker.
    let mut best_inside: Option<(usize, f64)> = None;
    let mut best_any: Option<(usize, f64)> = None;
    for &ci in &stage1[..stage1_len] {
        let (cx, cy, ckt) = {
            let p = &position_candidates[ci].0;
            (p[0], p[1], p[2])
        };
        scan_alphas_2d(
            observations,
            geometry,
            config,
            seeds.alpha_steps,
            (cx, cy, ckt),
            dists,
            rssi_base,
            orient_row,
            proj_row,
            proj_db_row,
            alpha_bt0,
            alpha_rb2,
            alpha_ranked,
        );
        let _refine_span = obs::span("joint_refine");
        for (rank, &(alpha0, bt0, scan_cost)) in alpha_ranked.iter().take(4).enumerate() {
            // Plateau exit across the joint short-list — but always refine
            // at least two α modes per candidate, so the twin-α
            // disambiguation (truth vs its RSSI-implausible mirror) never
            // degenerates to a single basin.
            if config.early_exit_rel_tol > 0.0 && rank >= 2 {
                if let Some((_, k)) = best_any {
                    if scan_cost > k * (1.0 + config.early_exit_rel_tol) {
                        break;
                    }
                }
            }
            let (p, cost) =
                refine_joint_2d(joint, observations, config, [cx, cy, alpha0, ckt, bt0]);
            let key = cost
                + rssi_mode_penalty(
                    observations,
                    Vec2::new(p[0], p[1]),
                    p[2],
                    config.rssi_sigma_db,
                );
            let idx = refined.len();
            if admissible.contains(Vec2::new(p[0], p[1]))
                && best_inside.is_none_or(|(_, k)| key < k)
            {
                best_inside = Some((idx, key));
            }
            if best_any.is_none_or(|(_, k)| key < k) {
                best_any = Some((idx, key));
            }
            refined.push((p, cost));
        }
    }

    let (best_idx, _) = best_inside.or(best_any).expect("at least one start");
    let (p, cost) = refined.swap_remove(best_idx);
    prune.seeds_total += total_seeds;
    prune.seeds_refined += seeds_refined;
    if warm_attempted {
        prune.warm_start_misses += 1;
    }
    flush_obs_2d(
        joint,
        slope,
        *lanes,
        before,
        total_seeds,
        seeds_refined,
        false,
        warm_attempted,
    );
    let estimate = build_estimate_2d(observations, &p, cost, config, uncert);
    Ok(estimate)
}

/// The cheap stage-1 score of one grid seed: the closed-form `k_t` seed
/// and the unrefined slope cost at the seed position — computed from the
/// geometry table when one applies, by exactly the expressions the
/// refinement path uses (so pruned-with-full-beam stays bit-identical to
/// exhaustive).
fn coarse_seed_cost_2d(
    observations: &[AntennaObservation],
    geometry: Option<&SeedGeometry>,
    s: usize,
    seed_pos: Vec2,
    config: &SolverConfig,
) -> (f64, f64) {
    let n_obs = observations.len();
    let mut cost = 0.0;
    let kt0 = match geometry {
        Some(g) => {
            let base = s * n_obs;
            let sum: f64 = observations
                .iter()
                .enumerate()
                .map(|(i, o)| o.slope - g.seed_slopes[base + i])
                .sum();
            let kt0 = sum / n_obs as f64;
            for (i, o) in observations.iter().enumerate() {
                let rs = (o.slope - g.seed_slopes[base + i] - kt0) / config.slope_sigma;
                cost += rs * rs;
            }
            kt0
        }
        None => {
            let kt0 = seed_kt(observations, seed_pos);
            let p3 = seed_pos.with_z(0.0);
            for o in observations {
                let d = o.pose.position().distance(p3);
                let rs =
                    (o.slope - propagation::slope_from_distance(d) - kt0) / config.slope_sigma;
                cost += rs * rs;
            }
            kt0
        }
    };
    (kt0, cost)
}

/// Stage 2 at one position candidate `(x, y, k_t)`: ranks every α seed by
/// the full cost (slope + wrapped intercept + RSSI mode penalty) and
/// leaves `alpha_ranked` sorted best-first. Everything α-independent — the
/// per-antenna distances, the slope half of the cost and the RSSI
/// penalty's `rssiᵢ + 40·log10(dᵢ)` base — is hoisted out of the scan,
/// and the projection `log10` comes from the geometry table
/// ([`SeedGeometry::proj_db`]) when one applies. Everything
/// *candidate*-independent — the per-α circular-mean `b_t` seed and the
/// squared intercept residuals — is computed once per solve and replayed
/// from `bt0_cache`/`rb2_cache` on later scans. The hoisted penalty
/// groups the dB terms exactly as the original left-associative
/// expression and the replayed residuals re-sum in push order, so the
/// scan stays bit-identical to the frozen reference.
#[allow(clippy::too_many_arguments)]
fn scan_alphas_2d(
    observations: &[AntennaObservation],
    geometry: Option<&SeedGeometry>,
    config: &SolverConfig,
    alpha_steps: usize,
    candidate: (f64, f64, f64),
    dists: &mut Vec<f64>,
    rssi_base: &mut Vec<f64>,
    orient_row: &mut Vec<f64>,
    proj_row: &mut Vec<f64>,
    proj_db_row: &mut Vec<f64>,
    bt0_cache: &mut Vec<f64>,
    rb2_cache: &mut Vec<f64>,
    alpha_ranked: &mut Vec<(f64, f64, f64)>,
) {
    let n_obs = observations.len();
    let (cx, cy, ckt) = candidate;
    let cand_pos = Vec2::new(cx, cy).with_z(0.0);
    dists.clear();
    let mut slope_cost = 0.0;
    for o in observations {
        let d = o.pose.position().distance(cand_pos);
        let rs = (o.slope - propagation::slope_from_distance(d) - ckt) / config.slope_sigma;
        slope_cost += rs * rs;
        dists.push(d);
    }
    // The α-independent half of the RSSI penalty. Entries for unreadable
    // distances may be NaN/−∞, but the penalty's guards return before
    // reading them — exactly as the unhoisted kernel returned before
    // computing the term at all.
    let rssi_active = config.rssi_sigma_db.is_finite() && config.rssi_sigma_db > 0.0;
    rssi_base.clear();
    if rssi_active {
        for (o, &d) in observations.iter().zip(dists.iter()) {
            rssi_base.push(o.mean_rssi_dbm + 40.0 * d.log10());
        }
    }
    // Rank α seeds by full cost at this position; spurious twin-α basins
    // often fit the phases *better* than the true mode under noise, so the
    // RSSI mode penalty is applied already in the ranking — otherwise they
    // crowd truth out of the refinement short-list entirely.
    alpha_ranked.clear();
    let _alpha_span = obs::span("alpha_scan");
    let cached = !bt0_cache.is_empty();
    for a in 0..alpha_steps {
        let alpha0 = std::f64::consts::PI * a as f64 / alpha_steps as f64;
        if !cached {
            // First scan of the solve: compute the closed-form b_t seed
            // (circular mean of `bᵢ − θ_orient`) and the squared
            // intercept residuals, and stash both for replay.
            let orow: &[f64] = match geometry {
                Some(g) => &g.orient[a * n_obs..(a + 1) * n_obs],
                None => {
                    let w = planar_dipole(alpha0);
                    orient_row.clear();
                    for o in observations {
                        orient_row.push(orientation_phase(&o.pose, w));
                    }
                    orient_row.as_slice()
                }
            };
            let bt0 = angle::circular_mean(
                observations.iter().zip(orow).map(|(o, &th)| o.intercept - th),
            )
            .unwrap_or(0.0);
            bt0_cache.push(bt0);
            for (o, &th) in observations.iter().zip(orow) {
                let rb = angle::wrap_pi(o.intercept - th - bt0) / config.intercept_sigma;
                rb2_cache.push(rb * rb);
            }
        }
        let bt0 = bt0_cache[a];
        // Replaying the squared residuals in push order re-associates the
        // sum exactly as the uncached expression did — bit-identical on
        // the first scan and every replay.
        let mut cost = slope_cost;
        for &rb2 in &rb2_cache[a * n_obs..(a + 1) * n_obs] {
            cost += rb2;
        }
        if rssi_active {
            let (prow, pdbrow): (&[f64], &[f64]) = match geometry {
                Some(g) => (
                    &g.proj[a * n_obs..(a + 1) * n_obs],
                    &g.proj_db[a * n_obs..(a + 1) * n_obs],
                ),
                None => {
                    let w = planar_dipole(alpha0);
                    proj_row.clear();
                    proj_db_row.clear();
                    for o in observations {
                        let p = projection_magnitude(&o.pose, w);
                        proj_row.push(p);
                        proj_db_row.push(20.0 * p.log10());
                    }
                    (proj_row.as_slice(), proj_db_row.as_slice())
                }
            };
            cost += rssi_penalty_hoisted(
                observations,
                rssi_base,
                dists,
                prow,
                pdbrow,
                config.rssi_sigma_db,
            );
        }
        alpha_ranked.push((alpha0, bt0, cost));
    }
    // α seeds were pushed in strictly ascending α, so breaking cost ties
    // on α reproduces the stable push order while keeping the unstable
    // sort allocation-free.
    alpha_ranked.sort_unstable_by(|a, b| {
        a.2.partial_cmp(&b.2).expect("finite costs").then_with(|| {
            a.0.partial_cmp(&b.0).expect("finite alphas")
        })
    });
}

/// Final-estimate assembly shared by the warm-start fast path and the
/// full scan: uncertainty propagation plus canonical wrapping of the
/// angular parameters.
fn build_estimate_2d(
    observations: &[AntennaObservation],
    p: &[f64],
    cost: f64,
    config: &SolverConfig,
    scratch: &mut UncertScratch,
) -> TagEstimate2D {
    let n_res = 2 * observations.len();
    let (position_std_m, orientation_std_rad, position_cov) =
        estimate_uncertainty(observations, p, config, scratch);
    TagEstimate2D {
        position: Vec2::new(p[0], p[1]),
        orientation: p[2].rem_euclid(std::f64::consts::PI),
        kt: p[3],
        bt: angle::wrap_tau(p[4]),
        cost,
        residual_rms: (cost / n_res as f64).sqrt(),
        position_std_m,
        orientation_std_rad,
        position_cov,
    }
}

/// Per-solve counter flush of the 2-D solve (active only when the obs
/// layer is recording; `before` is `None` otherwise).
#[allow(clippy::too_many_arguments)]
fn flush_obs_2d(
    joint: &LmCore<5>,
    slope: &LmCore<3>,
    rank_lanes: LaneStats,
    before: Option<(SolveStats, LaneStats, StepStats)>,
    seeds_total: u64,
    seeds_refined: u64,
    warm_hit: bool,
    warm_miss: bool,
) {
    let Some((stats_before, lanes_before, steps_before)) = before else { return };
    let j = joint.stats();
    let s = slope.stats();
    let work = SolveStats {
        residual_evals: j.residual_evals + s.residual_evals,
        jacobian_evals: j.jacobian_evals + s.jacobian_evals,
        iterations: j.iterations + s.iterations,
    }
    .since(stats_before);
    let lane_work = rank_lanes
        .merged(joint.lane_stats())
        .merged(slope.lane_stats())
        .since(lanes_before);
    let step_work = joint.step_stats().merged(slope.step_stats()).since(steps_before);
    obs::counter_add(obs::id::SOLVER2D_SOLVES, 1);
    obs::counter_add(obs::id::SOLVER2D_ITERATIONS, work.iterations);
    obs::counter_add(obs::id::SOLVER2D_RESIDUAL_EVALS, work.residual_evals);
    obs::counter_add(obs::id::SOLVER2D_JACOBIAN_EVALS, work.jacobian_evals);
    obs::counter_add(obs::id::SOLVER_SEEDS_TOTAL, seeds_total);
    obs::counter_add(obs::id::SOLVER_SEEDS_REFINED, seeds_refined);
    obs::counter_add(
        obs::id::SOLVER_SEEDS_PRUNED,
        seeds_total.saturating_sub(seeds_refined),
    );
    obs::counter_add(obs::id::SOLVER_LANE_SEED_BLOCKS, lane_work.seed_blocks);
    obs::counter_add(obs::id::SOLVER_LANE_ROW_BLOCKS, lane_work.row_blocks);
    obs::counter_add(obs::id::SOLVER_LANE_SCALAR_ROWS, lane_work.scalar_rows);
    obs::counter_add(obs::id::SOLVER_LAMBDA_RETRIES, step_work.lambda_retries);
    obs::counter_add(obs::id::SOLVER_CHOL_FAILURES, step_work.chol_failures);
    obs::counter_add(obs::id::SOLVER_STEP_CACHED_SOLVES, step_work.cached_solves);
    if warm_hit {
        obs::counter_add(obs::id::SOLVER_WARM_HITS, 1);
    }
    if warm_miss {
        obs::counter_add(obs::id::SOLVER_WARM_MISSES, 1);
    }
}

/// Finite-difference steps of the numeric-fallback joint solve:
/// x (m), y (m), α (rad), k_t (rad/Hz), b_t (rad).
const JOINT_STEPS_2D: [f64; 5] = [1e-4, 1e-4, 1e-4, 1e-13, 1e-4];
/// Steps of the numeric-fallback slope-only (stage-1) solve: x, y, k_t.
const SLOPE_STEPS_2D: [f64; 3] = [1e-4, 1e-4, 1e-13];

/// The joint 5-parameter disentangling problem as a [`ResidualModel`]:
/// Eq. 6's slope + wrapped-intercept residuals with the fused analytic
/// Jacobian of [`residuals_and_jacobian_2d`].
struct Joint2<'a> {
    observations: &'a [AntennaObservation],
    config: &'a SolverConfig,
}

impl ResidualModel<5> for Joint2<'_> {
    fn eval(&self, p: &[f64; 5], r: &mut Vec<f64>, jac: Option<&mut Vec<f64>>) {
        residuals_and_jacobian_2d(self.observations, p, self.config, r, jac);
    }

    fn lane_mode(&self) -> LaneMode {
        self.config.lane_mode
    }
}

/// The stage-1 slope-only `(x, y, k_t)` problem as a [`ResidualModel`].
struct Slope2<'a> {
    observations: &'a [AntennaObservation],
    config: &'a SolverConfig,
}

impl ResidualModel<3> for Slope2<'_> {
    fn eval(&self, p: &[f64; 3], r: &mut Vec<f64>, jac: Option<&mut Vec<f64>>) {
        slope_residuals_and_jacobian_2d(self.observations, p, self.config, r, jac);
    }

    fn lane_mode(&self) -> LaneMode {
        self.config.lane_mode
    }
}

/// Joint 5-parameter LM refinement through the dimension-generic core,
/// dispatched on the configured [`JacobianMode`].
fn refine_joint_2d(
    core: &mut LmCore<5>,
    observations: &[AntennaObservation],
    config: &SolverConfig,
    p0: [f64; 5],
) -> ([f64; 5], f64) {
    let model = Joint2 { observations, config };
    match config.jacobian {
        JacobianMode::Analytic => core.refine_with(
            &model,
            p0,
            config.max_iterations,
            config.tolerance,
            config.step_solver,
        ),
        JacobianMode::Numeric => core.refine_numeric(
            &model,
            p0,
            &JOINT_STEPS_2D,
            config.max_iterations,
            config.tolerance,
        ),
    }
}

/// Stage-1 slope-only LM refinement over `(x, y, k_t)` through the
/// dimension-generic core, dispatched on the configured [`JacobianMode`].
fn refine_slope_2d(
    core: &mut LmCore<3>,
    observations: &[AntennaObservation],
    config: &SolverConfig,
    p0: [f64; 3],
) -> ([f64; 3], f64) {
    let model = Slope2 { observations, config };
    match config.jacobian {
        JacobianMode::Analytic => core.refine_with(
            &model,
            p0,
            config.max_iterations,
            config.tolerance,
            config.step_solver,
        ),
        JacobianMode::Numeric => core.refine_numeric(
            &model,
            p0,
            &SLOPE_STEPS_2D,
            config.max_iterations,
            config.tolerance,
        ),
    }
}

/// Gauss–Newton covariance at the solution: `(JᵀJ)⁻¹` of the
/// sigma-normalized residuals, with the Jacobian evaluated per the
/// configured [`JacobianMode`]. `JᵀJ` is factored by Cholesky **once**
/// and each covariance column obtained by back-substituting one unit
/// right-hand side. Returns `(position σ, orientation σ, position 2×2
/// covariance)`; infinities when the curvature is singular.
// Index loops mirror the matrix math; iterator forms obscure the kernels.
#[allow(clippy::needless_range_loop)]
fn estimate_uncertainty(
    observations: &[AntennaObservation],
    p: &[f64],
    config: &SolverConfig,
    scratch: &mut UncertScratch,
) -> (f64, f64, [[f64; 2]; 2]) {
    let n = p.len();
    let UncertScratch { r, r_minus, work, jac, jtj, cov, e } = scratch;
    jac.clear();
    match config.jacobian {
        JacobianMode::Analytic => {
            residuals_and_jacobian_2d(observations, p, config, r, Some(jac));
        }
        JacobianMode::Numeric => {
            // Central differences with the same steps as the numeric core.
            residuals_2d(observations, p, config, r);
            let m = r.len();
            jac.resize(m * n, 0.0);
            work.clear();
            work.extend_from_slice(p);
            for j in 0..n {
                let h = JOINT_STEPS_2D[j];
                work[j] = p[j] + h;
                residuals_2d(observations, work, config, r);
                work[j] = p[j] - h;
                residuals_2d(observations, work, config, r_minus);
                work[j] = p[j];
                for i in 0..m {
                    jac[i * n + j] = (r[i] - r_minus[i]) / (2.0 * h);
                }
            }
        }
    }
    let m = jac.len() / n;
    jtj.clear();
    jtj.resize(n * n, 0.0);
    for i in 0..m {
        let row = &jac[i * n..(i + 1) * n];
        for a in 0..n {
            for b in a..n {
                jtj[a * n + b] += row[a] * row[b];
            }
        }
    }
    for a in 0..n {
        for b in 0..a {
            jtj[a * n + b] = jtj[b * n + a];
        }
    }
    let singular = (f64::INFINITY, f64::INFINITY, [[f64::INFINITY; 2]; 2]);
    // Factor once; every covariance column is one pair of triangular
    // substitutions against a unit right-hand side.
    if !cholesky_factor(jtj, n) {
        return singular;
    }
    cov.clear();
    cov.resize(n * n, 0.0);
    e.clear();
    e.resize(n, 0.0);
    for col in 0..n {
        e.fill(0.0);
        e[col] = 1.0;
        cholesky_solve(jtj, n, e);
        if !(e[col].is_finite() && e[col] >= 0.0) {
            return singular;
        }
        cov[col * n..(col + 1) * n].copy_from_slice(e);
    }
    let position_cov = [[cov[0], cov[n]], [cov[1], cov[n + 1]]];
    let position_std = (cov[0] + cov[n + 1]).sqrt();
    let orientation_std = cov[2 * n + 2].sqrt();
    (position_std, orientation_std, position_cov)
}

/// Mean `kᵢ − 4π dᵢ(pos)/c` over antennas — the closed-form `k_t` seed for
/// a hypothesised position.
fn seed_kt(observations: &[AntennaObservation], pos: Vec2) -> f64 {
    let sum: f64 = observations
        .iter()
        .map(|o| {
            let d = o.pose.position().distance(pos.with_z(0.0));
            o.slope - propagation::slope_from_distance(d)
        })
        .sum();
    sum / observations.len() as f64
}

/// RSSI-consistency penalty of a candidate mode `(pos, α)`: the weighted
/// variance of `rssiᵢ + 40·log10(dᵢ) − 20·log10(pᵢ(α))` across antennas.
///
/// The backscatter link budget (`rfp_phys::rssi`) says that quantity is a
/// per-tag constant (transmit power + material loss) plus noise, so modes
/// whose predicted polarization projections `pᵢ(α)` disagree with the
/// measured RSSI pattern score high. Returns 0 when disabled
/// (`sigma_db = ∞`) or when any observation lacks a finite RSSI.
pub(crate) fn rssi_mode_penalty(
    observations: &[AntennaObservation],
    pos: Vec2,
    alpha: f64,
    sigma_db: f64,
) -> f64 {
    if !sigma_db.is_finite() || sigma_db <= 0.0 {
        return 0.0;
    }
    let w = planar_dipole(alpha);
    rssi_pattern_penalty(
        observations,
        |o| {
            let d = o.pose.position().distance(pos.with_z(0.0));
            (d, projection_magnitude(&o.pose, w))
        },
        sigma_db,
    )
}

/// Shared core of the 2-D and 3-D RSSI mode penalties: `predict` returns
/// each observation's `(distance, projection magnitude)` under the
/// candidate mode.
pub(crate) fn rssi_pattern_penalty<F>(
    observations: &[AntennaObservation],
    predict: F,
    sigma_db: f64,
) -> f64
where
    F: Fn(&AntennaObservation) -> (f64, f64),
{
    rssi_penalty_core(
        observations.iter().map(|o| {
            let (d, proj) = predict(o);
            (o.mean_rssi_dbm, d, proj)
        }),
        sigma_db,
    )
}

/// The RSSI mode penalty with both dB terms precomputed: `rssi_base[i]` =
/// `rssiᵢ + 40·log10(dᵢ)` (hoisted out of the α scan) and `proj_dbs[i]` =
/// `20·log10(projs[i])` (a geometry-table lookup). The caller has already
/// checked `sigma_db` is active. Guard order and the grouping of the dB
/// sum match [`rssi_penalty_core`]'s left-associative
/// `rssi + 40·log10(d) − 20·log10(proj)` exactly, so the hoisted form is
/// bit-identical — `rssi_base`/`proj_dbs` entries behind a triggered
/// guard are never read.
pub(crate) fn rssi_penalty_hoisted(
    observations: &[AntennaObservation],
    rssi_base: &[f64],
    dists: &[f64],
    projs: &[f64],
    proj_dbs: &[f64],
    sigma_db: f64,
) -> f64 {
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut n = 0usize;
    for (i, o) in observations.iter().enumerate() {
        if !o.mean_rssi_dbm.is_finite() {
            return 0.0;
        }
        if projs[i] < 1e-3 || dists[i] <= 0.0 {
            // The mode predicts an unreadable antenna that in fact read the
            // tag: strongly implausible.
            return 1e6;
        }
        let m = rssi_base[i] - proj_dbs[i];
        sum += m;
        sum_sq += m * m;
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    let variance = (sum_sq - sum * sum / n as f64).max(0.0);
    variance / (sigma_db * sigma_db)
}

/// The penalty kernel over `(rssi dBm, distance, projection)` triples; see
/// [`rssi_mode_penalty`] for the physics.
fn rssi_penalty_core<I>(items: I, sigma_db: f64) -> f64
where
    I: Iterator<Item = (f64, f64, f64)>,
{
    if !sigma_db.is_finite() || sigma_db <= 0.0 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut n = 0usize;
    for (rssi, d, proj) in items {
        if !rssi.is_finite() {
            return 0.0;
        }
        if proj < 1e-3 || d <= 0.0 {
            // The mode predicts an unreadable antenna that in fact read the
            // tag: strongly implausible.
            return 1e6;
        }
        let m = rssi + 40.0 * d.log10() - 20.0 * proj.log10();
        sum += m;
        sum_sq += m * m;
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    let variance = (sum_sq - sum * sum / n as f64).max(0.0);
    variance / (sigma_db * sigma_db)
}

/// Circular mean of `bᵢ − θ_orient(Aᵢ, α₀)` — the closed-form `b_t` seed
/// for a hypothesised orientation.
#[cfg(test)]
fn seed_bt(observations: &[AntennaObservation], alpha0: f64) -> f64 {
    let w = planar_dipole(alpha0);
    angle::circular_mean(
        observations
            .iter()
            .map(|o| o.intercept - orientation_phase(&o.pose, w)),
    )
    .unwrap_or(0.0)
}

/// Fills `out` with the 2N sigma-normalized residuals at parameters
/// `p = (x, y, α, k_t, b_t)` — residual `2i` is antenna *i*'s slope
/// equation, `2i+1` its wrapped intercept equation.
pub fn residuals_2d(
    observations: &[AntennaObservation],
    p: &[f64],
    config: &SolverConfig,
    out: &mut Vec<f64>,
) {
    residuals_and_jacobian_2d(observations, p, config, out, None);
}

/// [`residuals_2d`] plus, when `jac` is given, the row-major `2N × 5`
/// analytic Jacobian `∂r/∂p` (DESIGN.md §6 derives it):
///
/// * slope rows: `∂r/∂(x,y) = −(4π/c)·(pos − Aᵢ)_{x,y}/(dᵢ σ_k)`,
///   `∂r/∂k_t = −1/σ_k`;
/// * intercept rows: `∂r/∂α = −θ′_orient/σ_b` with
///   `θ′_orient = 2(u·w · v·w′ − v·w · u·w′)/((u·w)² + (v·w)²)` and
///   `w′ = dw/dα`, and `∂r/∂b_t = −1/σ_b` (the `wrap_pi` is a
///   locally-constant offset, so it differentiates through).
///
/// The residual values are identical to calling [`residuals_2d`]; the
/// fused evaluation exists so the analytic LM core pays one pass for
/// both.
pub fn residuals_and_jacobian_2d(
    observations: &[AntennaObservation],
    p: &[f64],
    config: &SolverConfig,
    r: &mut Vec<f64>,
    jac: Option<&mut Vec<f64>>,
) {
    let pos = Vec2::new(p[0], p[1]).with_z(0.0);
    let alpha = p[2];
    // The padded polynomial mode also evaluates the dipole preamble with
    // the polynomial (sin, cos) — one pair per residual evaluation, paid
    // on every λ attempt, so it rides the same ≲1e-12 trig budget as the
    // per-row polynomial atan2 (pinned ≤1e-9 on full solves).
    let w = if config.lane_mode == LaneMode::Padded4 {
        let (s, c) = poly_sin_cos(alpha);
        Vec3::new(c, 0.0, s)
    } else {
        planar_dipole(alpha)
    };
    // d/dα of the planar dipole (a rotation in the x–z plane): the same
    // sine/cosine pair as `w`, so the derivative costs no further trig —
    // `-w.z` and `w.x` are bit-identical to `-alpha.sin()` / `alpha.cos()`.
    let dw = Vec3::new(-w.z, 0.0, w.x);
    let (kt, bt) = (p[3], p[4]);
    r.clear();
    let mut jac = jac;
    if let Some(j) = jac.as_deref_mut() {
        j.clear();
        j.resize(observations.len() * 2 * 5, 0.0);
    }
    let mut jac: Option<&mut [f64]> = jac.map(Vec::as_mut_slice);
    let k1 = propagation::slope_from_distance(1.0); // 4π/c
    match config.lane_mode {
        LaneMode::Wide4 => {
            // Four independent antenna rows per pass. Each lane writes its
            // own residual/Jacobian rows and rows are emitted in antenna
            // order, so the unrolled path is bit-identical to the scalar
            // loop — there is no cross-lane reduction to reorder.
            let mut chunks = observations.chunks_exact(4);
            let mut i = 0usize;
            for c in chunks.by_ref() {
                joint_row_2d(&c[0], i, pos, w, dw, kt, bt, k1, config, r, jac.as_deref_mut());
                joint_row_2d(&c[1], i + 1, pos, w, dw, kt, bt, k1, config, r, jac.as_deref_mut());
                joint_row_2d(&c[2], i + 2, pos, w, dw, kt, bt, k1, config, r, jac.as_deref_mut());
                joint_row_2d(&c[3], i + 3, pos, w, dw, kt, bt, k1, config, r, jac.as_deref_mut());
                i += 4;
            }
            for o in chunks.remainder() {
                joint_row_2d(o, i, pos, w, dw, kt, bt, k1, config, r, jac.as_deref_mut());
                i += 1;
            }
        }
        LaneMode::Padded4 => {
            // Every pass works on a full 4-lane block: the trailing block
            // is padded by repeating the last antenna and the padded
            // lanes' outputs discarded, so a 6-row 2-D scene fills two
            // wide passes instead of one wide + two scalar rows. The
            // orientation phase runs through the polynomial `atan2`
            // lanes — the one place this mode differs numerically from
            // the bit-identity modes (≲1e-13 per row, pinned ≤1e-9 on
            // full solves).
            let n = observations.len();
            let mut i = 0usize;
            while i < n {
                let live = (n - i).min(4);
                let at = |l: usize| &observations[i + l.min(live - 1)];
                let obs4 = [at(0), at(1), at(2), at(3)];
                joint_rows_padded_2d(
                    &obs4,
                    live,
                    i,
                    pos,
                    w,
                    dw,
                    kt,
                    bt,
                    k1,
                    config,
                    r,
                    jac.as_deref_mut(),
                );
                i += live;
            }
        }
        LaneMode::Scalar => {
            for (i, o) in observations.iter().enumerate() {
                joint_row_2d(o, i, pos, w, dw, kt, bt, k1, config, r, jac.as_deref_mut());
            }
        }
    }
}

/// One antenna's slope + wrapped-intercept rows (and, when `jac` is given,
/// their Jacobian rows) of the joint 2-D problem — the body shared by the
/// 4-wide lanes and the scalar loop of [`residuals_and_jacobian_2d`].
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn joint_row_2d(
    o: &AntennaObservation,
    i: usize,
    pos: Vec3,
    w: Vec3,
    dw: Vec3,
    kt: f64,
    bt: f64,
    k1: f64,
    config: &SolverConfig,
    r: &mut Vec<f64>,
    jac: Option<&mut [f64]>,
) {
    let ap = o.pose.position();
    let d = ap.distance(pos);
    let k_model = propagation::slope_from_distance(d) + kt;
    r.push((o.slope - k_model) / config.slope_sigma);
    let uw = o.pose.u().dot(w);
    let vw = o.pose.v().dot(w);
    let denom = uw * uw + vw * vw;
    // Same expression (and guard) as `orientation_phase`, inlined so the
    // Jacobian reuses the dot products.
    let theta = if denom < 1e-24 {
        0.0
    } else {
        (2.0 * uw * vw).atan2(uw * uw - vw * vw)
    };
    let b_model = theta + bt;
    r.push(angle::wrap_pi(o.intercept - b_model) / config.intercept_sigma);
    if let Some(j) = jac {
        let rs = 2 * i * 5;
        let g = if d > 1e-12 { -k1 / (d * config.slope_sigma) } else { 0.0 };
        j[rs] = g * (pos.x - ap.x);
        j[rs + 1] = g * (pos.y - ap.y);
        j[rs + 3] = -1.0 / config.slope_sigma;
        let rb = rs + 5;
        let dtheta = if denom < 1e-24 {
            0.0
        } else {
            let uwp = o.pose.u().dot(dw);
            let vwp = o.pose.v().dot(dw);
            2.0 * (uw * vwp - vw * uwp) / denom
        };
        j[rb + 2] = -dtheta / config.intercept_sigma;
        j[rb + 4] = -1.0 / config.intercept_sigma;
    }
}

/// The [`LaneMode::Padded4`] block kernel of
/// [`residuals_and_jacobian_2d`]: four antennas' scalars gathered into
/// lane arrays, the orientation phase evaluated through the 4-lane
/// polynomial [`poly_atan2x4`], and the `live` real rows emitted in
/// antenna order (padded lanes compute and are discarded). All row
/// expressions besides `θ = atan2(2·uw·vw, uw² − vw²)` are the exact
/// scalar ones, so only the polynomial `atan2` separates this mode from
/// the bit-identity paths.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn joint_rows_padded_2d(
    obs4: &[&AntennaObservation; 4],
    live: usize,
    base: usize,
    pos: Vec3,
    w: Vec3,
    dw: Vec3,
    kt: f64,
    bt: f64,
    k1: f64,
    config: &SolverConfig,
    r: &mut Vec<f64>,
    jac: Option<&mut [f64]>,
) {
    let mut d = [0.0f64; 4];
    let mut uw = [0.0f64; 4];
    let mut vw = [0.0f64; 4];
    let mut ty = [0.0f64; 4];
    let mut tx = [0.0f64; 4];
    for l in 0..4 {
        let o = obs4[l];
        d[l] = o.pose.position().distance(pos);
        uw[l] = o.pose.u().dot(w);
        vw[l] = o.pose.v().dot(w);
        ty[l] = 2.0 * uw[l] * vw[l];
        tx[l] = uw[l] * uw[l] - vw[l] * vw[l];
    }
    let th = poly_atan2x4(ty, tx);
    for l in 0..live {
        let o = obs4[l];
        let k_model = propagation::slope_from_distance(d[l]) + kt;
        r.push((o.slope - k_model) / config.slope_sigma);
        let denom = uw[l] * uw[l] + vw[l] * vw[l];
        // Same degenerate-dipole guard as the scalar row.
        let theta = if denom < 1e-24 { 0.0 } else { th[l] };
        r.push(angle::wrap_pi(o.intercept - (theta + bt)) / config.intercept_sigma);
    }
    if let Some(j) = jac {
        for l in 0..live {
            let o = obs4[l];
            let ap = o.pose.position();
            let rs = 2 * (base + l) * 5;
            let g = if d[l] > 1e-12 { -k1 / (d[l] * config.slope_sigma) } else { 0.0 };
            j[rs] = g * (pos.x - ap.x);
            j[rs + 1] = g * (pos.y - ap.y);
            j[rs + 3] = -1.0 / config.slope_sigma;
            let rb = rs + 5;
            let denom = uw[l] * uw[l] + vw[l] * vw[l];
            let dtheta = if denom < 1e-24 {
                0.0
            } else {
                let uwp = o.pose.u().dot(dw);
                let vwp = o.pose.v().dot(dw);
                2.0 * (uw[l] * vwp - vw[l] * uwp) / denom
            };
            j[rb + 2] = -dtheta / config.intercept_sigma;
            j[rb + 4] = -1.0 / config.intercept_sigma;
        }
    }
}

/// The N sigma-normalized slope residuals at `p = (x, y, k_t)` and,
/// when `jac` is given, their row-major `N × 3` analytic Jacobian — the
/// stage-1 seeding problem.
fn slope_residuals_and_jacobian_2d(
    observations: &[AntennaObservation],
    p: &[f64],
    config: &SolverConfig,
    r: &mut Vec<f64>,
    jac: Option<&mut Vec<f64>>,
) {
    let pos = Vec2::new(p[0], p[1]).with_z(0.0);
    let kt = p[2];
    r.clear();
    let mut jac = jac;
    if let Some(j) = jac.as_deref_mut() {
        j.clear();
        j.resize(observations.len() * 3, 0.0);
    }
    let mut jac: Option<&mut [f64]> = jac.map(Vec::as_mut_slice);
    let k1 = propagation::slope_from_distance(1.0);
    match config.lane_mode {
        LaneMode::Wide4 => {
            // See `residuals_and_jacobian_2d`: independent rows in antenna
            // order, bit-identical to the scalar loop.
            let mut chunks = observations.chunks_exact(4);
            let mut i = 0usize;
            for c in chunks.by_ref() {
                slope_row_2d(&c[0], i, pos, kt, k1, config, r, jac.as_deref_mut());
                slope_row_2d(&c[1], i + 1, pos, kt, k1, config, r, jac.as_deref_mut());
                slope_row_2d(&c[2], i + 2, pos, kt, k1, config, r, jac.as_deref_mut());
                slope_row_2d(&c[3], i + 3, pos, kt, k1, config, r, jac.as_deref_mut());
                i += 4;
            }
            for o in chunks.remainder() {
                slope_row_2d(o, i, pos, kt, k1, config, r, jac.as_deref_mut());
                i += 1;
            }
        }
        LaneMode::Padded4 => {
            // Padded full blocks, as in `residuals_and_jacobian_2d`. The
            // slope rows involve no trig, so this arm is bit-identical to
            // the scalar loop — padding only changes which lanes are
            // discarded.
            let n = observations.len();
            let mut i = 0usize;
            while i < n {
                let live = (n - i).min(4);
                let at = |l: usize| &observations[i + l.min(live - 1)];
                let obs4 = [at(0), at(1), at(2), at(3)];
                slope_rows_padded_2d(&obs4, live, i, pos, kt, k1, config, r, jac.as_deref_mut());
                i += live;
            }
        }
        LaneMode::Scalar => {
            for (i, o) in observations.iter().enumerate() {
                slope_row_2d(o, i, pos, kt, k1, config, r, jac.as_deref_mut());
            }
        }
    }
}

/// The [`LaneMode::Padded4`] block kernel of
/// [`slope_residuals_and_jacobian_2d`]: four antenna distances per pass
/// (trailing block padded with the last antenna), `live` real rows
/// emitted in antenna order. Expressions are exactly the scalar row's,
/// so the padded slope path is bit-identical.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn slope_rows_padded_2d(
    obs4: &[&AntennaObservation; 4],
    live: usize,
    base: usize,
    pos: Vec3,
    kt: f64,
    k1: f64,
    config: &SolverConfig,
    r: &mut Vec<f64>,
    jac: Option<&mut [f64]>,
) {
    let mut d = [0.0f64; 4];
    for l in 0..4 {
        d[l] = obs4[l].pose.position().distance(pos);
    }
    for l in 0..live {
        let o = obs4[l];
        r.push((o.slope - propagation::slope_from_distance(d[l]) - kt) / config.slope_sigma);
    }
    if let Some(j) = jac {
        for l in 0..live {
            let ap = obs4[l].pose.position();
            let i = base + l;
            let g = if d[l] > 1e-12 { -k1 / (d[l] * config.slope_sigma) } else { 0.0 };
            j[i * 3] = g * (pos.x - ap.x);
            j[i * 3 + 1] = g * (pos.y - ap.y);
            j[i * 3 + 2] = -1.0 / config.slope_sigma;
        }
    }
}

/// One antenna's slope row (and Jacobian row) of the stage-1 problem —
/// the body shared by the 4-wide lanes and the scalar loop of
/// [`slope_residuals_and_jacobian_2d`].
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn slope_row_2d(
    o: &AntennaObservation,
    i: usize,
    pos: Vec3,
    kt: f64,
    k1: f64,
    config: &SolverConfig,
    r: &mut Vec<f64>,
    jac: Option<&mut [f64]>,
) {
    let ap = o.pose.position();
    let d = ap.distance(pos);
    r.push((o.slope - propagation::slope_from_distance(d) - kt) / config.slope_sigma);
    if let Some(j) = jac {
        let g = if d > 1e-12 { -k1 / (d * config.slope_sigma) } else { 0.0 };
        j[i * 3] = g * (pos.x - ap.x);
        j[i * 3 + 1] = g * (pos.y - ap.y);
        j[i * 3 + 2] = -1.0 / config.slope_sigma;
    }
}

/// Small dense Levenberg–Marquardt with numeric Jacobian and per-parameter
/// step scales (MINPACK-style diagonal damping). Returns the refined
/// parameters and the final cost (sum of squared residuals).
///
/// `residual` fills its output vector with the residuals at the supplied
/// parameters; `steps` gives the finite-difference step per parameter and
/// must have the same length as `p`. Exposed publicly because the
/// baselines reuse it for their own small least-squares problems.
///
/// # Example
///
/// ```
/// use rfp_core::solver::levenberg_marquardt;
/// // Fit y = a·x to the points (1, 2), (2, 4).
/// let residual = |p: &[f64], out: &mut Vec<f64>| {
///     out.clear();
///     out.push(2.0 - p[0] * 1.0);
///     out.push(4.0 - p[0] * 2.0);
/// };
/// let (p, cost) = levenberg_marquardt(&residual, vec![0.0], &[1e-6], 50, 1e-14);
/// assert!((p[0] - 2.0).abs() < 1e-8);
/// assert!(cost < 1e-12);
/// ```
pub fn levenberg_marquardt<F>(
    residual: &F,
    p: Vec<f64>,
    steps: &[f64],
    max_iterations: usize,
    tolerance: f64,
) -> (Vec<f64>, f64)
where
    F: Fn(&[f64], &mut Vec<f64>),
{
    let mut workspace = LmWorkspace::default();
    levenberg_marquardt_with(&mut workspace, residual, p, steps, max_iterations, tolerance)
}

/// Reusable buffers for the LM cores: the residual, Jacobian and
/// normal-equation storage whose allocation otherwise dominates small
/// repeated solves. Contents are fully overwritten by every call — after
/// the first solve sized the buffers, the steady state performs **zero**
/// heap allocations in either core. The [`SolveStats`] counters accumulate
/// monotonically; snapshot with [`LmWorkspace::stats`] and diff with
/// [`SolveStats::since`].
#[derive(Debug, Default)]
pub struct LmWorkspace {
    r: Vec<f64>,
    r_plus: Vec<f64>,
    r_minus: Vec<f64>,
    /// Row-major `m × n` Jacobian.
    jac: Vec<f64>,
    /// Flat `n × n` normal matrix `JᵀJ`.
    jtj: Vec<f64>,
    /// Gradient `Jᵀr`.
    jtr: Vec<f64>,
    /// Damped-matrix / factorization buffer (Cholesky in the analytic
    /// core, Gaussian elimination in the numeric core), recycled across
    /// the λ retries of one iteration.
    chol: Vec<f64>,
    /// Step and trial-point buffers.
    delta: Vec<f64>,
    candidate: Vec<f64>,
    stats: SolveStats,
}

impl LmWorkspace {
    /// Snapshot of the work counters accumulated by every solve run
    /// against this workspace; diff two snapshots with
    /// [`SolveStats::since`] for per-solve counts.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }
}

/// [`levenberg_marquardt`] with caller-owned scratch buffers; produces
/// bit-identical results. This is the numeric-fallback core
/// ([`JacobianMode::Numeric`]) and the oracle the analytic core is tested
/// against; the batch engine reuses one [`LmWorkspace`] per worker thread
/// across every solve that worker performs.
#[allow(clippy::needless_range_loop)]
pub fn levenberg_marquardt_with<F>(
    workspace: &mut LmWorkspace,
    residual: &F,
    mut p: Vec<f64>,
    steps: &[f64],
    max_iterations: usize,
    tolerance: f64,
) -> (Vec<f64>, f64)
where
    F: Fn(&[f64], &mut Vec<f64>),
{
    let n = p.len();
    debug_assert_eq!(steps.len(), n);
    let LmWorkspace { r, r_plus, r_minus, jac, jtj, jtr, chol, delta, candidate, stats } =
        workspace;
    residual(&p, r);
    stats.residual_evals += 1;
    let mut cost: f64 = r.iter().map(|v| v * v).sum();
    let m = r.len();

    let mut lambda = 1e-3;
    jac.clear();
    jac.resize(m * n, 0.0);
    jtj.clear();
    jtj.resize(n * n, 0.0);
    jtr.clear();
    jtr.resize(n, 0.0);
    chol.clear();
    chol.resize(n * n, 0.0);
    delta.clear();
    delta.resize(n, 0.0);
    candidate.clear();
    candidate.resize(n, 0.0);

    for _ in 0..max_iterations {
        stats.iterations += 1;
        // Numeric Jacobian (central differences with per-parameter steps).
        for j in 0..n {
            let h = steps[j];
            let saved = p[j];
            p[j] = saved + h;
            residual(&p, r_plus);
            p[j] = saved - h;
            residual(&p, r_minus);
            p[j] = saved;
            for i in 0..m {
                jac[i * n + j] = (r_plus[i] - r_minus[i]) / (2.0 * h);
            }
        }
        stats.residual_evals += 2 * n as u64;
        stats.jacobian_evals += 1;
        // Normal equations (flat row-major, same accumulation order as the
        // historical nested-Vec form — bit-identical results).
        jtj.fill(0.0);
        jtr.fill(0.0);
        for i in 0..m {
            for a in 0..n {
                jtr[a] += jac[i * n + a] * r[i];
                for b in a..n {
                    jtj[a * n + b] += jac[i * n + a] * jac[i * n + b];
                }
            }
        }
        for a in 0..n {
            for b in 0..a {
                jtj[a * n + b] = jtj[b * n + a];
            }
        }

        // Damped solve with retry on cost increase.
        let mut improved = false;
        for _ in 0..8 {
            chol.copy_from_slice(jtj);
            for d in 0..n {
                chol[d * n + d] += lambda * jtj[d * n + d].max(1e-12);
            }
            for a in 0..n {
                delta[a] = -jtr[a];
            }
            if !solve_linear_in_place(chol, n, delta) {
                lambda *= 10.0;
                continue;
            }
            for a in 0..n {
                candidate[a] = p[a] + delta[a];
            }
            residual(candidate, r_plus);
            stats.residual_evals += 1;
            let new_cost: f64 = r_plus.iter().map(|v| v * v).sum();
            if new_cost < cost {
                let rel_drop = (cost - new_cost) / cost.max(1e-300);
                p.copy_from_slice(candidate);
                std::mem::swap(r, r_plus);
                cost = new_cost;
                lambda = (lambda / 3.0).max(1e-12);
                improved = true;
                if rel_drop < tolerance {
                    return (p, cost);
                }
                break;
            }
            lambda *= 4.0;
        }
        if !improved {
            break;
        }
    }
    (p, cost)
}

/// Levenberg–Marquardt with an analytic Jacobian — the hot-path core.
///
/// `resjac(p, r, jac)` fills `r` with the residuals at `p` and, when
/// `jac` is `Some`, the row-major `m × n` Jacobian `∂r/∂p` in the same
/// pass (the fused evaluation is why this core needs roughly one residual
/// sweep per iteration where the numeric core needs `2n + 1`). The damping
/// and retry policy matches [`levenberg_marquardt_with`]; the normal
/// equations `(JᵀJ + λ·diag(JᵀJ))δ = −Jᵀr` are assembled once per
/// iteration and solved by Cholesky, with only the damped diagonal
/// rewritten across the λ-adaptation retries.
///
/// # Example
///
/// ```
/// use rfp_core::solver::levenberg_marquardt_analytic;
/// // Fit y = a·x to the points (1, 2), (2, 4): r_i = y_i − a·x_i, ∂r_i/∂a = −x_i.
/// let resjac = |p: &[f64], r: &mut Vec<f64>, jac: Option<&mut Vec<f64>>| {
///     r.clear();
///     r.push(2.0 - p[0] * 1.0);
///     r.push(4.0 - p[0] * 2.0);
///     if let Some(j) = jac {
///         j.clear();
///         j.extend_from_slice(&[-1.0, -2.0]);
///     }
/// };
/// let (p, cost) = levenberg_marquardt_analytic(&resjac, vec![0.0], 50, 1e-14);
/// assert!((p[0] - 2.0).abs() < 1e-8);
/// assert!(cost < 1e-12);
/// ```
pub fn levenberg_marquardt_analytic<F>(
    resjac: &F,
    p: Vec<f64>,
    max_iterations: usize,
    tolerance: f64,
) -> (Vec<f64>, f64)
where
    F: Fn(&[f64], &mut Vec<f64>, Option<&mut Vec<f64>>),
{
    let mut workspace = LmWorkspace::default();
    levenberg_marquardt_analytic_with(&mut workspace, resjac, p, max_iterations, tolerance)
}

/// [`levenberg_marquardt_analytic`] with caller-owned scratch buffers
/// (bit-identical results) — the entry the solver stages and the batch
/// engine's per-worker workspaces use.
#[allow(clippy::needless_range_loop)]
pub fn levenberg_marquardt_analytic_with<F>(
    workspace: &mut LmWorkspace,
    resjac: &F,
    mut p: Vec<f64>,
    max_iterations: usize,
    tolerance: f64,
) -> (Vec<f64>, f64)
where
    F: Fn(&[f64], &mut Vec<f64>, Option<&mut Vec<f64>>),
{
    let n = p.len();
    let LmWorkspace { r, r_plus, jac, jtj, jtr, chol, delta, candidate, stats, .. } =
        workspace;
    resjac(&p, r, Some(jac));
    stats.residual_evals += 1;
    stats.jacobian_evals += 1;
    let mut cost: f64 = r.iter().map(|v| v * v).sum();
    let m = r.len();
    debug_assert_eq!(jac.len(), m * n);

    jtj.clear();
    jtj.resize(n * n, 0.0);
    jtr.clear();
    jtr.resize(n, 0.0);
    chol.clear();
    chol.resize(n * n, 0.0);
    delta.clear();
    delta.resize(n, 0.0);
    candidate.clear();
    candidate.resize(n, 0.0);

    let mut lambda = 1e-3;
    // The Jacobian from the initial fused evaluation is current; after an
    // accepted step it goes stale and the next iteration re-fuses.
    let mut jac_fresh = true;

    for _ in 0..max_iterations {
        stats.iterations += 1;
        if !jac_fresh {
            resjac(&p, r, Some(jac));
            stats.residual_evals += 1;
            stats.jacobian_evals += 1;
            jac_fresh = true;
        }
        // Assemble the normal equations once; the λ retries below reuse
        // them and only re-damp the diagonal.
        jtj.fill(0.0);
        jtr.fill(0.0);
        for i in 0..m {
            let row = &jac[i * n..(i + 1) * n];
            for a in 0..n {
                jtr[a] += row[a] * r[i];
                for b in a..n {
                    jtj[a * n + b] += row[a] * row[b];
                }
            }
        }
        for a in 0..n {
            for b in 0..a {
                jtj[a * n + b] = jtj[b * n + a];
            }
        }

        let mut improved = false;
        for _ in 0..8 {
            chol.copy_from_slice(jtj);
            for d in 0..n {
                chol[d * n + d] += lambda * jtj[d * n + d].max(1e-12);
            }
            if !cholesky_factor(chol, n) {
                lambda *= 10.0;
                continue;
            }
            for a in 0..n {
                delta[a] = -jtr[a];
            }
            cholesky_solve(chol, n, delta);
            for a in 0..n {
                candidate[a] = p[a] + delta[a];
            }
            resjac(candidate, r_plus, None);
            stats.residual_evals += 1;
            let new_cost: f64 = r_plus.iter().map(|v| v * v).sum();
            if new_cost < cost {
                let rel_drop = (cost - new_cost) / cost.max(1e-300);
                p.copy_from_slice(candidate);
                std::mem::swap(r, r_plus);
                cost = new_cost;
                lambda = (lambda / 3.0).max(1e-12);
                improved = true;
                jac_fresh = false;
                if rel_drop < tolerance {
                    return (p, cost);
                }
                break;
            }
            lambda *= 4.0;
        }
        if !improved {
            break;
        }
    }
    (p, cost)
}

/// In-place Cholesky factorization `A = LLᵀ` of the flat row-major `n × n`
/// symmetric matrix in `a`; on success the lower triangle holds `L` (the
/// strict upper triangle is left untouched). Returns `false` when the
/// matrix is not (numerically) positive definite.
#[allow(clippy::needless_range_loop)]
fn cholesky_factor(a: &mut [f64], n: usize) -> bool {
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[i * n + j];
            for k in 0..j {
                s -= a[i * n + k] * a[j * n + k];
            }
            if i == j {
                if !s.is_finite() || s < 1e-300 {
                    return false;
                }
                a[i * n + i] = s.sqrt();
            } else {
                a[i * n + j] = s / a[j * n + j];
            }
        }
    }
    true
}

/// Solves `LLᵀ x = b` in place (forward then back substitution) against a
/// factor produced by [`cholesky_factor`].
fn cholesky_solve(l: &[f64], n: usize, b: &mut [f64]) {
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[i * n + k] * b[k];
        }
        b[i] = s / l[i * n + i];
    }
    for i in (0..n).rev() {
        let mut s = b[i];
        for k in (i + 1)..n {
            s -= l[k * n + i] * b[k];
        }
        b[i] = s / l[i * n + i];
    }
}

/// In-place Gaussian elimination with partial pivoting over a flat
/// row-major `n × n` matrix; on success the solution overwrites `b`.
/// Returns `false` when singular (contents of `a`/`b` are then
/// unspecified). Allocation-free — the numeric LM core calls this once
/// per λ retry against workspace scratch. Pivot selection, elimination
/// order and back-substitution match the historical nested-`Vec` routine
/// exactly, so the numeric core stays the bit-exact oracle it was.
#[allow(clippy::needless_range_loop)]
fn solve_linear_in_place(a: &mut [f64], n: usize, b: &mut [f64]) -> bool {
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for row in (col + 1)..n {
            if a[row * n + col].abs() > a[pivot * n + col].abs() {
                pivot = row;
            }
        }
        if a[pivot * n + col].abs() < 1e-300 {
            return false;
        }
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
            b.swap(col, pivot);
        }
        // Eliminate below.
        for row in (col + 1)..n {
            let factor = a[row * n + col] / a[col * n + col];
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution, in place: step `col` only reads `b[k]` for
    // `k > col`, which already hold solution entries.
    for col in (0..n).rev() {
        let mut s = b[col];
        for k in (col + 1)..n {
            s -= a[col * n + k] * b[k];
        }
        b[col] = s / a[col * n + col];
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{extract_observation, ExtractConfig};
    use rfp_geom::AntennaPose;
    use rfp_sim::{Motion, NoiseModel, ReaderConfig, Scene, SimTag};

    /// Builds exact (noise-free) observations straight from the forward
    /// model, bypassing the simulator.
    fn synthetic_observations(
        poses: &[AntennaPose],
        truth: (Vec2, f64, f64, f64),
    ) -> Vec<AntennaObservation> {
        let (pos, alpha, kt, bt) = truth;
        let scene = Scene::standard_2d()
            .with_noise(NoiseModel::clean())
            .with_reader(ReaderConfig::ideal());
        // Use the simulator only to obtain correctly-shaped observations;
        // then overwrite slope/intercept with exact values.
        let tag = SimTag::nominal(0).with_motion(Motion::planar_static(pos, alpha));
        let survey = scene.survey(&tag, 0);
        poses
            .iter()
            .zip(&survey.per_antenna)
            .map(|(&pose, reads)| {
                let mut o =
                    extract_observation(pose, reads, &ExtractConfig::paper()).unwrap();
                let d = pose.position().distance(pos.with_z(0.0));
                o.slope = propagation::slope_from_distance(d) + kt;
                o.intercept = angle::wrap_tau(
                    orientation_phase(&pose, planar_dipole(alpha)) + bt,
                );
                o
            })
            .collect()
    }

    fn region() -> Region2 {
        Scene::standard_2d().region()
    }

    #[test]
    fn recovers_exact_truth() {
        let poses = Scene::standard_2d().antenna_poses();
        let truth_pos = Vec2::new(0.3, 1.7);
        let obs = synthetic_observations(&poses, (truth_pos, 0.8, -2.5e-8, 1.3));
        let est = solve_2d(&obs, region(), &SolverConfig::default()).unwrap();
        assert!(est.position.distance(truth_pos) < 1e-4, "pos {}", est.position);
        assert!(angle::dipole_distance(est.orientation, 0.8) < 1e-4);
        assert!((est.kt + 2.5e-8).abs() < 1e-12);
        assert!(angle::distance(est.bt, 1.3) < 1e-4);
        assert!(est.residual_rms < 1e-3);
    }

    #[test]
    fn orientation_recovered_mod_pi() {
        let poses = Scene::standard_2d().antenna_poses();
        // Truth orientation 0.4 + π must come back as 0.4.
        let obs = synthetic_observations(
            &poses,
            (Vec2::new(0.9, 1.1), 0.4 + std::f64::consts::PI, 0.0, 0.2),
        );
        let est = solve_2d(&obs, region(), &SolverConfig::default()).unwrap();
        assert!(angle::dipole_distance(est.orientation, 0.4) < 1e-4);
        assert!((0.0..std::f64::consts::PI).contains(&est.orientation));
    }

    #[test]
    fn corners_of_region_solvable() {
        let poses = Scene::standard_2d().antenna_poses();
        for &(x, y) in &[(-0.4, 0.6), (1.4, 0.6), (-0.4, 2.4), (1.4, 2.4)] {
            let truth = Vec2::new(x, y);
            let obs = synthetic_observations(&poses, (truth, 1.2, -1e-8, 4.0));
            let est = solve_2d(&obs, region(), &SolverConfig::default()).unwrap();
            assert!(
                est.position.distance(truth) < 1e-3,
                "corner ({x},{y}): got {}",
                est.position
            );
        }
    }

    #[test]
    fn end_to_end_with_noise_lands_near_truth() {
        let scene = Scene::standard_2d();
        let truth = Vec2::new(0.6, 1.3);
        let tag = SimTag::with_seeded_diversity(3)
            .with_motion(Motion::planar_static(truth, 0.5));
        let survey = scene.survey(&tag, 11);
        let obs: Vec<AntennaObservation> = scene
            .antenna_poses()
            .iter()
            .zip(&survey.per_antenna)
            .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).unwrap())
            .collect();
        let est = solve_2d(&obs, region(), &SolverConfig::default()).unwrap();
        let err_cm = est.position.distance(truth) * 100.0;
        assert!(err_cm < 30.0, "error {err_cm} cm");
        let orient_err = angle::dipole_distance(est.orientation, 0.5).to_degrees();
        assert!(orient_err < 30.0, "orientation error {orient_err}°");
    }

    #[test]
    fn too_few_antennas_rejected() {
        let poses = Scene::standard_2d().antenna_poses();
        let obs = synthetic_observations(&poses, (Vec2::new(0.5, 1.5), 0.0, 0.0, 0.0));
        assert_eq!(
            solve_2d(&obs[..2], region(), &SolverConfig::default()).unwrap_err(),
            SolveError::TooFewAntennas { provided: 2 }
        );
    }

    #[test]
    fn lm_minimizes_quadratic() {
        // Sanity-check the numeric LM core on a known problem:
        // fit y = a·x + b.
        let data: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64 - 3.0)).collect();
        let residual = |p: &[f64], out: &mut Vec<f64>| {
            out.clear();
            for (x, y) in &data {
                out.push(y - (p[0] * x + p[1]));
            }
        };
        let (p, cost) =
            levenberg_marquardt(&residual, vec![0.0, 0.0], &[1e-5, 1e-5], 100, 1e-14);
        assert!((p[0] - 2.0).abs() < 1e-6);
        assert!((p[1] + 3.0).abs() < 1e-6);
        assert!(cost < 1e-10);
    }

    #[test]
    fn analytic_lm_minimizes_quadratic() {
        // Same fit through the analytic core: r = y − (a·x + b),
        // ∂r/∂a = −x, ∂r/∂b = −1.
        let data: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64 - 3.0)).collect();
        let resjac = |p: &[f64], r: &mut Vec<f64>, jac: Option<&mut Vec<f64>>| {
            r.clear();
            let mut jac = jac;
            if let Some(j) = jac.as_deref_mut() {
                j.clear();
            }
            for (x, y) in &data {
                r.push(y - (p[0] * x + p[1]));
                if let Some(j) = jac.as_deref_mut() {
                    j.push(-x);
                    j.push(-1.0);
                }
            }
        };
        let (p, cost) = levenberg_marquardt_analytic(&resjac, vec![0.0, 0.0], 100, 1e-14);
        assert!((p[0] - 2.0).abs() < 1e-6);
        assert!((p[1] + 3.0).abs() < 1e-6);
        assert!(cost < 1e-10);
    }

    #[test]
    fn uncertainty_reported_and_meaningful() {
        let scene = Scene::standard_2d();
        let truth = Vec2::new(0.5, 1.4);
        let tag = SimTag::with_seeded_diversity(4)
            .with_motion(Motion::planar_static(truth, 0.7));
        let survey = scene.survey(&tag, 21);
        let obs: Vec<AntennaObservation> = scene
            .antenna_poses()
            .iter()
            .zip(&survey.per_antenna)
            .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).unwrap())
            .collect();
        let est = solve_2d(&obs, region(), &SolverConfig::default()).unwrap();
        assert!(est.position_std_m.is_finite() && est.position_std_m > 0.0);
        assert!(est.orientation_std_rad.is_finite() && est.orientation_std_rad > 0.0);
        // The reported σ should be in the same decade as the actual error
        // regime (centimetres / ~0.2 rad).
        assert!(est.position_std_m < 0.5, "σ_pos {}", est.position_std_m);
        assert!(est.orientation_std_rad < 1.0, "σ_α {}", est.orientation_std_rad);
        // The ellipse is well-formed and elongated along the weakly
        // constrained (range) direction — its major axis exceeds its minor.
        let e = est.uncertainty_ellipse().expect("well-formed covariance");
        assert!(e.semi_major >= e.semi_minor);
        assert!(e.semi_major > 0.0 && e.semi_major < 0.5);
        // Consistency with the scalar summary.
        let trace = (e.semi_major * e.semi_major + e.semi_minor * e.semi_minor).sqrt();
        assert!((trace - est.position_std_m).abs() < 1e-9);
    }

    #[test]
    fn solve_linear_rejects_singular() {
        let mut a = [1.0, 2.0, 2.0, 4.0];
        let mut b = [1.0, 2.0];
        assert!(!solve_linear_in_place(&mut a, 2, &mut b));
        let mut a = [2.0, 0.0, 0.0, 0.5];
        let mut x = [4.0, 1.0];
        assert!(solve_linear_in_place(&mut a, 2, &mut x));
        assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_linear_pivots_correctly() {
        // Requires a row swap (zero leading pivot); check A·x = b.
        let a0 = [0.0, 2.0, 1.0, 1.0, 1.0, 0.5, 3.0, 0.1, 2.0];
        let b0 = [1.0, 2.0, 3.0];
        let mut a = a0;
        let mut x = b0;
        assert!(solve_linear_in_place(&mut a, 3, &mut x));
        for i in 0..3 {
            let ax: f64 = (0..3).map(|j| a0[i * 3 + j] * x[j]).sum();
            assert!((ax - b0[i]).abs() < 1e-10, "row {i}: {ax} vs {}", b0[i]);
        }
    }

    #[test]
    fn cholesky_round_trip() {
        // SPD 3×3: factor, solve, and check A·x = b.
        let a = [4.0, 2.0, 0.6, 2.0, 5.0, 1.0, 0.6, 1.0, 3.0];
        let b = [1.0, -2.0, 0.5];
        let mut l = a;
        assert!(cholesky_factor(&mut l, 3));
        let mut x = b;
        cholesky_solve(&l, 3, &mut x);
        for i in 0..3 {
            let ax: f64 = (0..3).map(|j| a[i * 3 + j] * x[j]).sum();
            assert!((ax - b[i]).abs() < 1e-12, "row {i}: {ax} vs {}", b[i]);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut a = [1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, −1
        assert!(!cholesky_factor(&mut a, 2));
        let mut z = [0.0, 0.0, 0.0, 0.0]; // singular
        assert!(!cholesky_factor(&mut z, 2));
    }

    #[test]
    fn analytic_jacobian_matches_central_differences() {
        let poses = Scene::standard_2d().antenna_poses();
        let obs = synthetic_observations(&poses, (Vec2::new(0.45, 1.62), 0.9, -1.5e-8, 0.7));
        let config = SolverConfig::default();
        // Slightly off truth, where all residuals are small and far from
        // the wrap_pi discontinuity.
        let p = [0.46, 1.60, 0.93, -1.52e-8, 0.72];
        let mut r = Vec::new();
        let mut jac = Vec::new();
        residuals_and_jacobian_2d(&obs, &p, &config, &mut r, Some(&mut jac));
        let n = 5;
        let m = r.len();
        let mut r_plus = Vec::new();
        let mut r_minus = Vec::new();
        let mut work = p.to_vec();
        for j in 0..n {
            let h = JOINT_STEPS_2D[j];
            work[j] = p[j] + h;
            residuals_2d(&obs, &work, &config, &mut r_plus);
            work[j] = p[j] - h;
            residuals_2d(&obs, &work, &config, &mut r_minus);
            work[j] = p[j];
            for i in 0..m {
                let num = (r_plus[i] - r_minus[i]) / (2.0 * h);
                let ana = jac[i * n + j];
                let tol = 1e-6 * (1.0 + ana.abs().max(num.abs()));
                assert!(
                    (ana - num).abs() <= tol,
                    "entry ({i},{j}): analytic {ana} vs numeric {num}"
                );
            }
        }
    }

    #[test]
    fn numeric_fallback_converges_to_analytic_result() {
        let poses = Scene::standard_2d().antenna_poses();
        let truth_pos = Vec2::new(0.7, 1.9);
        let obs = synthetic_observations(&poses, (truth_pos, 1.1, -2.0e-8, 2.4));
        let analytic = solve_2d(&obs, region(), &SolverConfig::default()).unwrap();
        let numeric_cfg =
            SolverConfig { jacobian: JacobianMode::Numeric, ..SolverConfig::default() };
        let numeric = solve_2d(&obs, region(), &numeric_cfg).unwrap();
        // On a clean synthetic scene both modes must land on the same
        // optimum — the exact truth — to well below a nanometre.
        assert!(analytic.position.distance(numeric.position) < 1e-9);
        assert!((analytic.orientation - numeric.orientation).abs() < 1e-9);
        assert!((analytic.kt - numeric.kt).abs() < 1e-15);
        assert!(angle::distance(analytic.bt, numeric.bt) < 1e-9);
        assert!(analytic.position.distance(truth_pos) < 1e-9);
        assert!(numeric.position.distance(truth_pos) < 1e-9);
    }

    #[test]
    fn analytic_path_needs_far_fewer_residual_evaluations() {
        let poses = Scene::standard_2d().antenna_poses();
        let obs = synthetic_observations(&poses, (Vec2::new(0.5, 1.5), 0.6, -1e-8, 1.0));
        let config = SolverConfig::default();
        let seeds = SolveSeeds::for_scene(region(), &config, &poses);
        let mut ws = SolverWorkspace::default();
        solve_2d_seeded(&obs, &seeds, &config, &mut ws).unwrap();
        let analytic = ws.stats();
        let numeric_cfg =
            SolverConfig { jacobian: JacobianMode::Numeric, ..SolverConfig::default() };
        solve_2d_seeded(&obs, &seeds, &numeric_cfg, &mut ws).unwrap();
        let numeric = ws.stats().since(analytic);
        assert!(analytic.residual_evals > 0 && numeric.residual_evals > 0);
        assert!(
            analytic.residual_evals * 2 <= numeric.residual_evals,
            "analytic {} evals vs numeric {}",
            analytic.residual_evals,
            numeric.residual_evals
        );
    }

    #[test]
    fn seed_geometry_is_bit_identical_to_direct_evaluation() {
        let poses = Scene::standard_2d().antenna_poses();
        let obs = synthetic_observations(&poses, (Vec2::new(0.8, 1.2), 1.3, -3e-8, 0.4));
        let config = SolverConfig::default();
        let plain = SolveSeeds::new(region(), &config);
        let with_geo = SolveSeeds::for_scene(region(), &config, &poses);
        let mut ws_a = SolverWorkspace::default();
        let mut ws_b = SolverWorkspace::default();
        let a = solve_2d_seeded(&obs, &plain, &config, &mut ws_a).unwrap();
        let b = solve_2d_seeded(&obs, &with_geo, &config, &mut ws_b).unwrap();
        assert_eq!(a.position.x.to_bits(), b.position.x.to_bits());
        assert_eq!(a.position.y.to_bits(), b.position.y.to_bits());
        assert_eq!(a.orientation.to_bits(), b.orientation.to_bits());
        assert_eq!(a.kt.to_bits(), b.kt.to_bits());
        assert_eq!(a.bt.to_bits(), b.bt.to_bits());
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
    }

    #[test]
    fn stage2_tables_match_seed_bt() {
        // The hoisted α-scan's closed-form b_t (computed from the orient
        // row) must equal the classic per-α `seed_bt`.
        let poses = Scene::standard_2d().antenna_poses();
        let obs = synthetic_observations(&poses, (Vec2::new(0.4, 1.8), 0.35, 0.0, 1.9));
        for a in 0..24 {
            let alpha0 = std::f64::consts::PI * a as f64 / 24.0;
            let w = planar_dipole(alpha0);
            let row: Vec<f64> =
                obs.iter().map(|o| orientation_phase(&o.pose, w)).collect();
            let bt_row = angle::circular_mean(
                obs.iter().zip(&row).map(|(o, &th)| o.intercept - th),
            )
            .unwrap_or(0.0);
            assert_eq!(bt_row.to_bits(), seed_bt(&obs, alpha0).to_bits());
        }
    }

    #[test]
    fn exhaustive_config_refines_every_seed() {
        let poses = Scene::standard_2d().antenna_poses();
        let obs = synthetic_observations(&poses, (Vec2::new(0.5, 1.5), 0.6, -1e-8, 1.0));
        let config = SolverConfig::exhaustive();
        let seeds = SolveSeeds::for_scene(region(), &config, &poses);
        let mut ws = SolverWorkspace::default();
        solve_2d_seeded(&obs, &seeds, &config, &mut ws).unwrap();
        let ps = ws.prune_stats();
        assert_eq!(ps.seeds_total, 36);
        assert_eq!(ps.seeds_refined, 36);
        assert_eq!(ps.seeds_pruned(), 0);
        assert_eq!(ps.warm_start_hits + ps.warm_start_misses, 0);
    }

    #[test]
    fn default_pruning_refines_a_fraction_and_matches_exhaustive() {
        let poses = Scene::standard_2d().antenna_poses();
        let obs = synthetic_observations(&poses, (Vec2::new(0.5, 1.5), 0.6, -1e-8, 1.0));
        let config = SolverConfig::default();
        let seeds = SolveSeeds::for_scene(region(), &config, &poses);
        let mut ws = SolverWorkspace::default();
        let pruned = solve_2d_seeded(&obs, &seeds, &config, &mut ws).unwrap();
        let ps = ws.prune_stats();
        assert_eq!(ps.seeds_total, 36);
        assert!(ps.seeds_refined <= 8, "refined {}", ps.seeds_refined);
        assert!(ps.seeds_pruned() >= 28);
        let exhaustive =
            solve_2d(&obs, region(), &SolverConfig::exhaustive()).unwrap();
        assert!(pruned.position.distance(exhaustive.position) < 1e-6);
        assert!((pruned.cost - exhaustive.cost).abs() <= 1e-6 * (1.0 + exhaustive.cost));
    }

    #[test]
    fn warm_start_hit_skips_the_scan() {
        let poses = Scene::standard_2d().antenna_poses();
        let truth = Vec2::new(0.7, 1.4);
        let obs = synthetic_observations(&poses, (truth, 0.9, -2e-8, 0.8));
        let config = SolverConfig::default();
        let seeds = SolveSeeds::for_scene(region(), &config, &poses);
        let mut ws = SolverWorkspace::default();
        let cold = solve_2d_seeded(&obs, &seeds, &config, &mut ws).unwrap();
        let before = ws.prune_stats();
        let warm = WarmStart::from_estimate(&cold);
        let warm_est =
            solve_2d_seeded_warm(&obs, &seeds, &config, &mut ws, Some(&warm)).unwrap();
        let ps = ws.prune_stats().since(before);
        assert_eq!(ps.warm_start_hits, 1, "gate should accept the prior");
        assert_eq!(ps.warm_start_misses, 0);
        // Only the floor refinement ran stage 1.
        assert_eq!(ps.seeds_refined, 1);
        assert!(warm_est.position.distance(cold.position) < 1e-6);
        assert!((warm_est.cost - cold.cost).abs() <= 1e-6 * (1.0 + cold.cost));
    }

    #[test]
    fn warm_start_gate_rejects_teleported_prior() {
        let poses = Scene::standard_2d().antenna_poses();
        let truth = Vec2::new(0.3, 1.1);
        let tag = SimTag::with_seeded_diversity(9)
            .with_motion(Motion::planar_static(truth, 0.4));
        let survey = Scene::standard_2d().survey(&tag, 31);
        let obs: Vec<AntennaObservation> = poses
            .iter()
            .zip(&survey.per_antenna)
            .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).unwrap())
            .collect();
        let config = SolverConfig::default();
        let seeds = SolveSeeds::for_scene(region(), &config, &poses);
        let mut ws = SolverWorkspace::default();
        let cold = solve_2d_seeded(&obs, &seeds, &config, &mut ws).unwrap();
        // A prior parked in the far corner with wrong material terms: the
        // joint refinement from it lands in a stale basin whose cost fails
        // the gate, and the solver falls back to the scan.
        let stale = WarmStart {
            position: Vec2::new(-0.4, 2.4),
            orientation: 2.6,
            kt: 5e-8,
            bt: 3.0,
        };
        let before = ws.prune_stats();
        let est =
            solve_2d_seeded_warm(&obs, &seeds, &config, &mut ws, Some(&stale)).unwrap();
        let ps = ws.prune_stats().since(before);
        if ps.warm_start_misses == 1 {
            // Fallback must agree with the cold solve exactly (the scan is
            // deterministic and warm attempts never perturb it).
            assert_eq!(ps.warm_start_hits, 0);
            assert_eq!(est.position.x.to_bits(), cold.position.x.to_bits());
            assert_eq!(est.position.y.to_bits(), cold.position.y.to_bits());
            assert_eq!(est.cost.to_bits(), cold.cost.to_bits());
        } else {
            // If the stale prior happened to refine back into the true
            // basin, accepting it is correct — but then it must match.
            assert_eq!(ps.warm_start_hits, 1);
            assert!((est.cost - cold.cost).abs() <= 1e-6 * (1.0 + cold.cost));
        }
        assert!(est.position.distance(cold.position) < 1e-3);
    }
}
