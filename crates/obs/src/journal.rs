//! A fixed-capacity structured event journal: the "flight recorder" next
//! to the metrics registry. Counters tell you *how many* fallbacks or
//! rebuilds a session took; the journal tells you *which* ones, *when*
//! (by caller-defined tick), and in what order — enough to reconstruct a
//! fallback or rebuild storm postmortem without logging on the hot path.
//!
//! Design constraints, in order:
//!
//! 1. **Zero steady-state allocation.** The ring buffer is sized once at
//!    construction; [`record`](Journal::record) writes a fixed-size
//!    [`JournalEvent`] (a `&'static str` kind plus integers) in place.
//! 2. **Bounded memory, drop-oldest.** When full, the oldest event is
//!    overwritten and [`dropped`](Journal::dropped) increments, so the
//!    journal always holds the *most recent* `capacity` events and the
//!    loss is observable.
//! 3. **Deterministic merges.** Merging per-worker journals in
//!    worker-index order re-records events in that order, so the merged
//!    event sequence (kinds, ticks, payloads, drop counts) is identical
//!    at any worker count — the same discipline the registry merge uses.

use crate::json::JsonValue;

/// One structured journal entry: a static kind, the caller-defined tick
/// it happened on, and two integer payload slots (`key` typically names
/// the entity — an antenna index, a tag slot — and `value` the
/// magnitude). Fixed-size on purpose: recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEvent {
    /// Monotone sequence number assigned at insertion (gaps never occur;
    /// `seq` of the oldest retained event is exactly
    /// [`Journal::dropped`]).
    pub seq: u64,
    /// Caller-defined clock (e.g. the streaming advance index) set via
    /// [`Journal::set_tick`].
    pub tick: u64,
    /// Static event kind (e.g. `"refit_fallback"`).
    pub kind: &'static str,
    /// Entity payload (antenna index, tag slot, …).
    pub key: u64,
    /// Magnitude payload (count, ops, …).
    pub value: u64,
}

/// The ring-buffer journal. See the module docs for the contract.
#[derive(Debug, Clone, PartialEq)]
pub struct Journal {
    capacity: usize,
    /// Ring storage; grows by pushes up to `capacity`, then stays put.
    events: Vec<JournalEvent>,
    /// Index of the oldest event once the ring is full.
    head: usize,
    next_seq: u64,
    dropped: u64,
    tick: u64,
}

impl Journal {
    /// Default ring capacity used by the recorder.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// An empty journal holding at most `capacity` events. All storage is
    /// reserved here; recording never allocates.
    pub fn new(capacity: usize) -> Journal {
        Journal {
            capacity,
            events: Vec::with_capacity(capacity),
            head: 0,
            next_seq: 0,
            dropped: 0,
            tick: 0,
        }
    }

    /// The fixed ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (`len() + dropped()`).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Sets the tick stamped onto subsequently recorded events.
    pub fn set_tick(&mut self, tick: u64) {
        self.tick = tick;
    }

    /// The current tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Records one event at the current tick. O(1), allocation-free; when
    /// the ring is full the oldest event is overwritten and the dropped
    /// counter increments. A zero-capacity journal drops everything.
    #[inline]
    pub fn record(&mut self, kind: &'static str, key: u64, value: u64) {
        self.record_at(self.tick, kind, key, value);
    }

    /// [`record`](Self::record) with an explicit tick (used by merges to
    /// preserve the source journal's clock).
    #[inline]
    pub fn record_at(&mut self, tick: u64, kind: &'static str, key: u64, value: u64) {
        if self.capacity == 0 {
            self.next_seq += 1;
            self.dropped += 1;
            return;
        }
        let ev = JournalEvent { seq: self.next_seq, tick, kind, key, value };
        self.next_seq += 1;
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &JournalEvent> {
        let (tail, front) = self.events.split_at(self.head);
        front.iter().chain(tail.iter())
    }

    /// Clears the retained events and drop count (capacity is kept, the
    /// storage is not released).
    pub fn clear(&mut self) {
        self.events.clear();
        self.head = 0;
        self.next_seq = 0;
        self.dropped = 0;
    }

    /// Re-records every event of `other` (oldest first, keeping its
    /// ticks) into this journal and adds its drop count. Called in
    /// worker-index order by the recorder merge, which keeps the merged
    /// sequence deterministic at any worker count.
    pub fn merge(&mut self, other: &Journal) {
        for ev in other.events() {
            self.record_at(ev.tick, ev.kind, ev.key, ev.value);
        }
        self.dropped += other.dropped;
    }

    /// The journal as a JSON document: capacity, drop count and the
    /// retained events oldest-first — the postmortem dump format.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("capacity", JsonValue::Num(self.capacity as f64)),
            ("recorded", JsonValue::Num(self.next_seq as f64)),
            ("dropped", JsonValue::Num(self.dropped as f64)),
            (
                "events",
                JsonValue::Arr(
                    self.events()
                        .map(|e| {
                            JsonValue::obj(vec![
                                ("seq", JsonValue::Num(e.seq as f64)),
                                ("tick", JsonValue::Num(e.tick as f64)),
                                ("kind", JsonValue::Str(e.kind.to_string())),
                                ("key", JsonValue::Num(e.key as f64)),
                                ("value", JsonValue::Num(e.value as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new(Journal::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_until_capacity() {
        let mut j = Journal::new(3);
        j.set_tick(7);
        j.record("a", 1, 10);
        j.record("b", 2, 20);
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 0);
        let evs: Vec<_> = j.events().collect();
        assert_eq!(evs[0].kind, "a");
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[0].tick, 7);
        assert_eq!(evs[1].kind, "b");
    }

    #[test]
    fn wraparound_drops_oldest_and_counts() {
        let mut j = Journal::new(2);
        for i in 0..5u64 {
            j.set_tick(i);
            j.record("e", i, 0);
        }
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 3);
        assert_eq!(j.recorded(), 5);
        let keys: Vec<u64> = j.events().map(|e| e.key).collect();
        assert_eq!(keys, vec![3, 4], "retains the most recent events");
        // seq of the oldest retained event equals the drop count.
        assert_eq!(j.events().next().unwrap().seq, j.dropped());
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut j = Journal::new(0);
        j.record("e", 0, 0);
        assert!(j.is_empty());
        assert_eq!(j.dropped(), 1);
        assert_eq!(j.recorded(), 1);
    }

    #[test]
    fn merge_preserves_order_and_ticks() {
        let mut a = Journal::new(8);
        a.set_tick(1);
        a.record("a", 0, 0);
        let mut b = Journal::new(8);
        b.set_tick(9);
        b.record("b1", 1, 0);
        b.record("b2", 2, 0);
        a.merge(&b);
        let seen: Vec<(&str, u64)> = a.events().map(|e| (e.kind, e.tick)).collect();
        assert_eq!(seen, vec![("a", 1), ("b1", 9), ("b2", 9)]);
        // Seqs are reassigned by the destination, still gap-free.
        let seqs: Vec<u64> = a.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn merge_accumulates_drop_counts() {
        let mut a = Journal::new(1);
        a.record("a", 0, 0); // retained
        let mut b = Journal::new(1);
        b.record("b1", 0, 0);
        b.record("b2", 0, 0); // b1 dropped
        a.merge(&b); // a's event dropped by the merge push
        assert_eq!(a.len(), 1);
        assert_eq!(a.events().next().unwrap().kind, "b2");
        // 1 dropped inside b + 1 dropped during merge.
        assert_eq!(a.dropped(), 2);
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut j = Journal::new(2);
        j.record("a", 0, 0);
        j.record("b", 0, 0);
        j.record("c", 0, 0);
        j.clear();
        assert!(j.is_empty());
        assert_eq!(j.dropped(), 0);
        assert_eq!(j.capacity(), 2);
        j.record("d", 0, 0);
        assert_eq!(j.events().next().unwrap().seq, 0);
    }

    #[test]
    fn json_dump_carries_events_and_drops() {
        let mut j = Journal::new(2);
        for i in 0..3u64 {
            j.record("e", i, i * 10);
        }
        let v = j.to_json();
        assert_eq!(v.get("dropped").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(v.get("recorded").and_then(JsonValue::as_u64), Some(3));
        let evs = v.get("events").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].get("key").and_then(JsonValue::as_u64), Some(1));
    }
}
