//! Ablation: how many hop channels does the disentangling actually need?
//!
//! The paper (§V-D) notes 50 channels are "more than enough for a linear
//! fitting"; this sweep quantifies the accuracy cost of narrower plans —
//! relevant for regions with fewer channels (ETSI: 4) or readers with
//! custom hop sets.

use rfp_bench::{loc, report};
use rfp_phys::FrequencyPlan;
use rfp_sim::Scene;

fn main() {
    report::header("Ablation", "localization/orientation error vs channel count");
    println!("{:>9} {:>14} {:>14} {:>10}", "channels", "loc error", "orient error", "trials");
    let mut results = Vec::new();
    for &channels in &[50usize, 30, 20, 10, 6] {
        let scene = Scene::standard_2d().with_reader(
            rfp_sim::ReaderConfig::impinj_r420()
                .with_plan(FrequencyPlan::fcc_us_subsampled(channels)),
        );
        let specs: Vec<_> =
            loc::grid_orientation_specs(&scene, 2).into_iter().step_by(3).collect();
        let outcomes = loc::run_trials(&scene, &specs);
        let loc_cm = loc::mean_position_error_cm(&outcomes);
        let orient_deg = loc::mean_orientation_error_deg(&outcomes);
        println!(
            "{channels:>9} {:>14} {:>14} {:>10}",
            report::cm(loc_cm),
            report::deg(orient_deg),
            outcomes.len()
        );
        results.push((channels, loc_cm));
    }
    // Fewer channels → same band span but fewer averaging points → worse.
    let full = results[0].1;
    let narrow = results.last().unwrap().1;
    assert!(
        narrow > full,
        "6 channels should be worse than 50 ({narrow} vs {full})"
    );
}
