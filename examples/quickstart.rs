//! Quickstart: sense a tag's position, orientation and material parameters
//! from one hop round.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rf_prism::prelude::*;

fn main() {
    // The simulated stand-in for the paper's testbed: an ImpinJ-R420-class
    // reader, three circularly-polarized antennas on a rack, a 2 m × 2 m
    // working region.
    let scene = Scene::standard_2d();

    // A tag with manufacturing diversity, attached to a glass bottle,
    // placed somewhere in the region at a 40° orientation.
    let truth_position = Vec2::new(0.35, 1.45);
    let truth_alpha = 40.0f64.to_radians();
    let tag = SimTag::with_seeded_diversity(2024)
        .attached_to(Material::Glass)
        .with_motion(Motion::planar_static(truth_position, truth_alpha));

    // One full hop round: 50 channels × 8 reads per antenna, ~10 s on real
    // hardware, instantaneous here.
    let survey = scene.survey(&tag, 1);
    println!(
        "collected {} reads over {} channels on {} antennas",
        survey.total_reads(),
        scene.reader().plan.channel_count(),
        survey.antenna_count()
    );

    // The sensing side knows only the antenna poses (measured at
    // deployment) and the channel plan.
    let prism = RfPrism::new(scene.antenna_poses(), scene.reader().plan)
        .with_region(scene.region());
    let result = prism.sense(&survey.per_antenna).expect("static tag, clean window");

    let est = &result.estimate;
    println!();
    println!("disentangled state:");
    println!(
        "  position     ({:.3}, {:.3}) m   [truth ({:.3}, {:.3}), error {:.1} cm]",
        est.position.x,
        est.position.y,
        truth_position.x,
        truth_position.y,
        est.position.distance(truth_position) * 100.0
    );
    println!(
        "  orientation  {:.1}°              [truth {:.1}°]",
        est.orientation.to_degrees(),
        truth_alpha.to_degrees()
    );
    println!("  k_t          {:.3e} rad/Hz   (material + device slope)", est.kt);
    println!("  b_t          {:.3} rad          (material + device intercept)", est.bt);
    println!("  verdict      {:?}", result.verdict);
}
