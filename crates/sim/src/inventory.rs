//! Multi-tag inventory rounds.
//!
//! Every scenario the paper motivates (chemical shelves, supermarkets,
//! production lines — Fig. 1) holds *many* tags. An EPC Gen2 reader
//! time-shares its inventory slots among the tags in the field: with `n`
//! responding tags, each tag is read roughly `1/n` as often per dwell, and
//! the slotted-ALOHA anti-collision loses a further fraction of slots when
//! the population grows.
//!
//! [`Scene::survey_inventory`] models exactly that: the per-channel read
//! budget is divided among the tags (with a collision-efficiency factor),
//! and each tag gets its own [`HopSurvey`] assembled from the same
//! deterministic round.

use crate::measure::HopSurvey;
use crate::scene::Scene;
use crate::tag::SimTag;

/// Result of one inventory round over multiple tags.
#[derive(Debug, Clone)]
pub struct InventoryRound {
    /// Per-tag surveys, in the order the tags were supplied.
    pub surveys: Vec<(u64, HopSurvey)>,
    /// Effective reads per channel per antenna each tag received.
    pub reads_per_tag: usize,
}

/// Slotted-ALOHA efficiency: the fraction of inventory slots that produce
/// a successful singulation as the population grows (ideal framed ALOHA
/// approaches 1/e ≈ 0.37 for large populations; small populations do much
/// better because the reader adapts its Q parameter).
pub fn aloha_efficiency(n_tags: usize) -> f64 {
    match n_tags {
        0 | 1 => 1.0,
        2..=4 => 0.85,
        5..=16 => 0.65,
        _ => 0.45,
    }
}

impl Scene {
    /// Runs one hop round over a population of tags.
    ///
    /// Each tag receives `max(1, reads_per_channel × efficiency / n)` reads
    /// per channel per antenna; the surveys are otherwise generated exactly
    /// like single-tag rounds (deterministic per `(scene, tag, seed)`).
    ///
    /// # Panics
    ///
    /// Panics if `tags` is empty.
    pub fn survey_inventory(&self, tags: &[SimTag], seed: u64) -> InventoryRound {
        assert!(!tags.is_empty(), "inventory needs at least one tag");
        let budget = self.reader().reads_per_channel as f64;
        let eff = aloha_efficiency(tags.len());
        let reads_per_tag =
            ((budget * eff / tags.len() as f64).floor() as usize).max(1);
        let scene = self
            .clone()
            .with_reader(self.reader().with_reads_per_channel(reads_per_tag));
        let surveys = tags
            .iter()
            .map(|t| (t.id(), scene.survey(t, seed.wrapping_add(t.id()))))
            .collect();
        InventoryRound { surveys, reads_per_tag }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motion::Motion;
    use rfp_geom::Vec2;
    use rfp_phys::Material;

    fn population(n: usize) -> Vec<SimTag> {
        (0..n)
            .map(|i| {
                SimTag::with_seeded_diversity(i as u64 + 1)
                    .attached_to(Material::CLASSES[i % 8])
                    .with_motion(Motion::planar_static(
                        Vec2::new(-0.4 + 0.12 * i as f64, 1.0 + 0.08 * i as f64),
                        0.2 * i as f64,
                    ))
            })
            .collect()
    }

    #[test]
    fn read_budget_is_shared() {
        let scene = Scene::standard_2d();
        let solo = scene.survey_inventory(&population(1), 1);
        let crowd = scene.survey_inventory(&population(8), 1);
        assert!(solo.reads_per_tag > crowd.reads_per_tag);
        assert!(crowd.reads_per_tag >= 1);
        assert_eq!(crowd.surveys.len(), 8);
        // Each tag's survey has correspondingly fewer reads.
        assert!(
            solo.surveys[0].1.total_reads() > crowd.surveys[0].1.total_reads()
        );
    }

    #[test]
    fn surveys_keyed_by_tag_id() {
        let scene = Scene::standard_2d();
        let tags = population(4);
        let round = scene.survey_inventory(&tags, 2);
        for (tag, (id, survey)) in tags.iter().zip(&round.surveys) {
            assert_eq!(tag.id(), *id);
            assert_eq!(survey.truth_material, tag.material());
        }
    }

    #[test]
    fn aloha_efficiency_monotone() {
        assert_eq!(aloha_efficiency(1), 1.0);
        assert!(aloha_efficiency(3) > aloha_efficiency(10));
        assert!(aloha_efficiency(10) > aloha_efficiency(100));
        assert!(aloha_efficiency(100) > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let scene = Scene::standard_2d();
        let tags = population(3);
        let a = scene.survey_inventory(&tags, 7);
        let b = scene.survey_inventory(&tags, 7);
        for ((ia, sa), (ib, sb)) in a.surveys.iter().zip(&b.surveys) {
            assert_eq!(ia, ib);
            assert_eq!(sa, sb);
        }
    }

    #[test]
    #[should_panic]
    fn empty_population_panics() {
        let _ = Scene::standard_2d().survey_inventory(&[], 1);
    }
}
