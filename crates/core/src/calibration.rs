//! Device-diversity calibration (paper §V-B).
//!
//! `k_t`/`b_t` are not determined by the target material alone — the
//! reader-tag hardware pair contributes its own phase response (imperfect
//! manufacturing, chip modulator offset). The paper removes it with a
//! **one-time** pre-deployment calibration: each bare tag is placed at a
//! known position with known orientation, the phase is collected across all
//! channels, and the known `θ_prop` and `θ_orient` are subtracted; what
//! remains is the tag's own `θ_device0(f)`, stored in a database keyed by
//! tag id. Unlike the environment-dependent calibrations of prior systems,
//! this is needed once per tag, ever — and only when RF-Prism is used for
//! material identification.

use crate::model::AntennaObservation;
use rfp_dsp::linfit;
use rfp_geom::{angle, Vec2};
use rfp_phys::polarization::{orientation_phase, planar_dipole};
use rfp_phys::propagation;
use std::collections::BTreeMap;

/// The calibrated free-space device response `θ_device0` of one tag.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceCalibration {
    /// Per-channel `(channel, frequency_hz, θ_device0 mod 2π)`.
    samples: Vec<(usize, f64, f64)>,
    /// Slope of the free-space device line `k_t0`, rad/Hz.
    kt0: f64,
    /// Intercept of the free-space device line `b_t0`, radians in `[0, 2π)`.
    bt0: f64,
}

impl DeviceCalibration {
    /// Derives a calibration from observations of the **bare** tag at a
    /// known planar position and orientation.
    ///
    /// Every antenna contributes an independent estimate of the device
    /// curve; they are circularly averaged per channel.
    ///
    /// # Panics
    ///
    /// Panics if `observations` is empty.
    pub fn from_observations(
        observations: &[AntennaObservation],
        known_position: Vec2,
        known_alpha: f64,
    ) -> Self {
        assert!(!observations.is_empty(), "need at least one antenna observation");
        let w = planar_dipole(known_alpha);

        // Collect per-channel device-phase estimates across antennas.
        let mut per_channel: BTreeMap<usize, (f64, Vec<f64>)> = BTreeMap::new();
        let mut kt0s = Vec::new();
        let mut bt0s = Vec::new();
        for obs in observations {
            let d = obs.pose.position().distance(known_position.with_z(0.0));
            let theta_orient = orientation_phase(&obs.pose, w);
            let k_prop = propagation::slope_from_distance(d);

            // Per-channel device phase (arbitrary common 2π offset).
            let mut xs = Vec::with_capacity(obs.channels.len());
            let mut ys = Vec::with_capacity(obs.channels.len());
            for c in &obs.channels {
                let device = c.phase - k_prop * c.frequency_hz - theta_orient;
                per_channel
                    .entry(c.channel)
                    .or_insert_with(|| (c.frequency_hz, Vec::new()))
                    .1
                    .push(angle::wrap_tau(device));
                xs.push(c.frequency_hz);
                ys.push(device);
            }
            // Device line of this antenna (offset cancels in the slope; the
            // intercept is kept modulo 2π).
            if let Ok(fit) = linfit::ols(&xs, &ys) {
                kt0s.push(fit.slope);
                bt0s.push(fit.intercept);
            }
        }

        let samples: Vec<(usize, f64, f64)> = per_channel
            .into_iter()
            .map(|(ch, (f, vals))| {
                let mean = angle::circular_mean(vals.iter().copied()).unwrap_or(vals[0]);
                (ch, f, angle::wrap_tau(mean))
            })
            .collect();
        let kt0 = kt0s.iter().sum::<f64>() / kt0s.len().max(1) as f64;
        let bt0 = angle::circular_mean(bt0s.iter().copied()).unwrap_or(0.0);
        DeviceCalibration { samples, kt0, bt0: angle::wrap_tau(bt0) }
    }

    /// Free-space device slope `k_t0`, rad/Hz.
    pub fn kt0(&self) -> f64 {
        self.kt0
    }

    /// Free-space device intercept `b_t0`, radians in `[0, 2π)`.
    pub fn bt0(&self) -> f64 {
        self.bt0
    }

    /// Number of calibrated channels.
    pub fn channel_count(&self) -> usize {
        self.samples.len()
    }

    /// Calibrated `θ_device0` (mod 2π) for a channel index, if present.
    pub fn device_phase(&self, channel: usize) -> Option<f64> {
        self.samples
            .iter()
            .find(|(ch, _, _)| *ch == channel)
            .map(|&(_, _, v)| v)
    }

    /// Iterates `(channel, frequency_hz, θ_device0)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64, f64)> + '_ {
        self.samples.iter().copied()
    }
}

/// A persistent store of per-tag calibrations, keyed by tag id — the
/// paper's calibration "database".
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CalibrationDb {
    entries: BTreeMap<u64, DeviceCalibration>,
}

/// Errors from [`CalibrationDb::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbParseError {
    /// A line did not match the expected `key value...` shape.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for DbParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbParseError::Malformed { line } => write!(f, "malformed record at line {line}"),
            DbParseError::BadNumber { line } => write!(f, "bad number at line {line}"),
        }
    }
}

impl std::error::Error for DbParseError {}

impl CalibrationDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores (or replaces) the calibration for `tag_id`.
    pub fn insert(&mut self, tag_id: u64, calibration: DeviceCalibration) {
        self.entries.insert(tag_id, calibration);
    }

    /// Looks up a tag's calibration.
    pub fn get(&self, tag_id: u64) -> Option<&DeviceCalibration> {
        self.entries.get(&tag_id)
    }

    /// Number of calibrated tags.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes to a simple line-oriented text format (one `tag` block
    /// per entry) suitable for a flat file.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (id, cal) in &self.entries {
            out.push_str(&format!(
                "tag {id} {:e} {:e} {}\n",
                cal.kt0,
                cal.bt0,
                cal.samples.len()
            ));
            for &(ch, f, v) in &cal.samples {
                out.push_str(&format!("{ch} {f:e} {v:e}\n"));
            }
        }
        out
    }

    /// Parses the format produced by [`CalibrationDb::to_text`].
    ///
    /// # Errors
    ///
    /// [`DbParseError`] on any structural or numeric problem.
    pub fn from_text(text: &str) -> Result<Self, DbParseError> {
        let mut db = CalibrationDb::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((ln, line)) = lines.next() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            if parts.next() != Some("tag") {
                return Err(DbParseError::Malformed { line: ln + 1 });
            }
            let parse =
                |s: Option<&str>| s.and_then(|v| v.parse::<f64>().ok());
            let id: u64 = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or(DbParseError::BadNumber { line: ln + 1 })?;
            let kt0 = parse(parts.next()).ok_or(DbParseError::BadNumber { line: ln + 1 })?;
            let bt0 = parse(parts.next()).ok_or(DbParseError::BadNumber { line: ln + 1 })?;
            let n: usize = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or(DbParseError::BadNumber { line: ln + 1 })?;
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                let (sln, sline) =
                    lines.next().ok_or(DbParseError::Malformed { line: ln + 1 })?;
                let mut p = sline.split_whitespace();
                let ch: usize = p
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(DbParseError::BadNumber { line: sln + 1 })?;
                let f = parse(p.next()).ok_or(DbParseError::BadNumber { line: sln + 1 })?;
                let v = parse(p.next()).ok_or(DbParseError::BadNumber { line: sln + 1 })?;
                samples.push((ch, f, v));
            }
            db.insert(id, DeviceCalibration { samples, kt0, bt0 });
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{extract_observation, ExtractConfig};
    use rfp_sim::{Motion, NoiseModel, ReaderConfig, Scene, SimTag};

    fn calibrate_tag(seed: u64) -> (DeviceCalibration, rfp_sim::SimTag, Scene) {
        let scene = Scene::standard_2d()
            .with_noise(NoiseModel::clean())
            .with_reader(ReaderConfig::ideal());
        let pos = Vec2::new(0.5, 1.0);
        let alpha = 0.0;
        let tag = SimTag::with_seeded_diversity(seed)
            .with_motion(Motion::planar_static(pos, alpha));
        let survey = scene.survey(&tag, 100 + seed);
        let obs: Vec<AntennaObservation> = scene
            .antenna_poses()
            .iter()
            .zip(&survey.per_antenna)
            .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).unwrap())
            .collect();
        (DeviceCalibration::from_observations(&obs, pos, alpha), tag, scene)
    }

    #[test]
    fn recovers_true_device_line() {
        let (cal, tag, scene) = calibrate_tag(1);
        let truth = tag.electrical().linearized(&scene.reader().plan);
        assert!((cal.kt0() - truth.kt).abs() < 1e-10, "kt0 {} vs {}", cal.kt0(), truth.kt);
        assert!(
            angle::distance(cal.bt0(), angle::wrap_tau(truth.bt)) < 0.05,
            "bt0 {} vs {}",
            cal.bt0(),
            truth.bt
        );
        assert_eq!(cal.channel_count(), 50);
    }

    #[test]
    fn per_channel_values_match_device_phase() {
        let (cal, tag, _) = calibrate_tag(2);
        for (_, f, v) in cal.iter() {
            let truth = angle::wrap_tau(tag.electrical().device_phase(f));
            assert!(angle::distance(v, truth) < 1e-6, "f {f}: {v} vs {truth}");
        }
        assert!(cal.device_phase(0).is_some());
        assert!(cal.device_phase(999).is_none());
    }

    #[test]
    fn db_round_trips_through_text() {
        let (cal, _, _) = calibrate_tag(3);
        let mut db = CalibrationDb::new();
        db.insert(3, cal.clone());
        let (cal2, _, _) = calibrate_tag(4);
        db.insert(4, cal2);
        let text = db.to_text();
        let parsed = CalibrationDb::from_text(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        let a = parsed.get(3).unwrap();
        assert!((a.kt0() - cal.kt0()).abs() < 1e-18);
        assert_eq!(a.channel_count(), cal.channel_count());
        for ((c1, f1, v1), (c2, f2, v2)) in a.iter().zip(cal.iter()) {
            assert_eq!(c1, c2);
            assert!((f1 - f2).abs() < 1.0);
            assert!((v1 - v2).abs() < 1e-12);
        }
    }

    #[test]
    fn db_parse_errors() {
        assert!(matches!(
            CalibrationDb::from_text("nonsense 1 2 3"),
            Err(DbParseError::Malformed { line: 1 })
        ));
        assert!(matches!(
            CalibrationDb::from_text("tag abc 1 2 0"),
            Err(DbParseError::BadNumber { line: 1 })
        ));
        // Truncated sample list.
        assert!(CalibrationDb::from_text("tag 1 1e-8 0.5 2\n0 9e8 1.0\n").is_err());
        // Empty text is an empty db.
        assert!(CalibrationDb::from_text("").unwrap().is_empty());
    }
}
