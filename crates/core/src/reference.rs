//! Frozen pre-lane-core solver implementations.
//!
//! These are the 2-D and 3-D disentangling solvers exactly as they stood
//! before the [`LmCore`](crate::lm::LmCore) refactor: dynamically-sized
//! parameter vectors recycled through a free-list, the shared
//! [`LmWorkspace`] cores, scalar residual
//! loops and non-hoisted `log10` RSSI penalties. They are kept for two
//! reasons:
//!
//! * the `solver_profile` bench measures the lane-parallel facades against
//!   this baseline, so the speedup claim is reproducible on any machine;
//! * the `lm_equivalence` suite uses them as an independent bit-exact
//!   oracle for the const-generic facades.
//!
//! The only deliberate differences from the historical entry points are
//! that the observability spans/counters and the pruning tallies are
//! stripped (the oracle must not perturb the measured path's telemetry)
//! and that the [`WarmGate`](crate::solver::WarmGate) cached-floor fast
//! path is omitted — the gate only skips work, it never changes which
//! optimum wins, so the un-cached flow here is the semantic ground truth.
//!
//! Do not "improve" this module — its value is that it does not change.

use crate::model::AntennaObservation;
use crate::solver::{
    levenberg_marquardt_analytic_with, levenberg_marquardt_with, JacobianMode, LmWorkspace,
    SeedGeometry, SolveError, SolveSeeds, SolverConfig, TagEstimate2D, WarmStart,
};
use crate::solver3d::{
    SeedGeometry3D, Solve3DError, Solve3DSeeds, Solver3DConfig, TagEstimate3D, WarmStart3D,
};
use rfp_geom::{angle, Vec2, Vec3};
use rfp_phys::polarization::{orientation_phase, planar_dipole, projection_magnitude};
use rfp_phys::propagation;

// ---------------------------------------------------------------------------
// 2-D reference solver
// ---------------------------------------------------------------------------

/// Scratch buffers of the frozen 2-D solver — the pre-refactor
/// `SolverWorkspace` shape, parameter free-list included.
#[derive(Debug, Default)]
pub struct Reference2DWorkspace {
    lm: LmWorkspace,
    position_candidates: Vec<(Vec<f64>, f64, usize)>,
    coarse: Vec<(f64, usize, f64)>,
    alpha_ranked: Vec<(f64, f64, f64)>,
    dists: Vec<f64>,
    orient_row: Vec<f64>,
    proj_row: Vec<f64>,
    refined: Vec<(Vec<f64>, f64)>,
    params_pool: Vec<Vec<f64>>,
    uncert: UncertScratch,
}

/// Scratch buffers of [`estimate_uncertainty`].
#[derive(Debug, Default)]
struct UncertScratch {
    r: Vec<f64>,
    r_minus: Vec<f64>,
    work: Vec<f64>,
    jac: Vec<f64>,
    jtj: Vec<f64>,
    cov: Vec<f64>,
    e: Vec<f64>,
}

/// Pops a recycled parameter vector off the free-list (or makes an empty
/// one), cleared and ready to be filled with a new seed.
fn pooled(pool: &mut Vec<Vec<f64>>) -> Vec<f64> {
    let mut v = pool.pop().unwrap_or_default();
    v.clear();
    v
}

/// True when the multi-start scan runs the legacy exhaustive loop.
fn is_exhaustive_2d(config: &SolverConfig) -> bool {
    config.refine_top_k.is_none() && config.early_exit_rel_tol <= 0.0
}

/// The frozen pre-lane-core
/// [`solve_2d_seeded_warm`](crate::solver::solve_2d_seeded_warm):
/// bit-exact oracle of the facade for identical inputs.
///
/// # Errors
///
/// [`SolveError::TooFewAntennas`] when fewer than 3 observations are given.
pub fn solve_2d_reference(
    observations: &[AntennaObservation],
    seeds: &SolveSeeds,
    config: &SolverConfig,
    workspace: &mut Reference2DWorkspace,
    warm: Option<&WarmStart>,
) -> Result<TagEstimate2D, SolveError> {
    if observations.len() < 3 {
        return Err(SolveError::TooFewAntennas { provided: observations.len() });
    }
    let n_obs = observations.len();
    let geometry = seeds.geometry.as_ref().filter(|g| g.matches(observations));
    let Reference2DWorkspace {
        lm,
        position_candidates,
        coarse,
        alpha_ranked,
        dists,
        orient_row,
        proj_row,
        refined,
        params_pool,
        uncert,
    } = workspace;

    // Recycle the previous solve's candidate parameter vectors before
    // anything claims a seed from the pool.
    params_pool.extend(position_candidates.drain(..).map(|(v, _, _)| v));
    params_pool.extend(refined.drain(..).map(|(v, _)| v));

    let admissible = seeds.admissible;

    // Coarse ranking shared by the pruned stage-1 beam and the warm-start
    // floor.
    coarse.clear();
    if warm.is_some() || !is_exhaustive_2d(config) {
        for (s, &seed_pos) in seeds.position_starts.iter().enumerate() {
            let (kt0, cost) = coarse_seed_cost_2d(observations, geometry, s, seed_pos, config);
            coarse.push((cost, s, kt0));
        }
        coarse.sort_unstable_by(|a, b| {
            a.0.partial_cmp(&b.0).expect("finite costs").then_with(|| a.1.cmp(&b.1))
        });
    }

    // Warm start: refine the prior first and gate the result against the
    // coarse-scan floor.
    if let Some(w) = warm {
        let mut wp0 = pooled(params_pool);
        wp0.extend_from_slice(&[w.position.x, w.position.y, w.orientation, w.kt, w.bt]);
        let (p, cost) = refine_joint_2d(lm, observations, config, wp0);
        let key = cost
            + rssi_mode_penalty(
                observations,
                Vec2::new(p[0], p[1]),
                p[2],
                config.rssi_sigma_db,
            );
        let in_region = admissible.contains(Vec2::new(p[0], p[1]));
        let (_, best_seed, best_kt) = coarse[0];
        let seed_pos = seeds.position_starts[best_seed];
        let mut sp0 = pooled(params_pool);
        sp0.extend_from_slice(&[seed_pos.x, seed_pos.y, best_kt]);
        let (sp, _) = refine_slope_2d(lm, observations, config, sp0);
        scan_alphas_2d(
            observations,
            geometry,
            config,
            seeds.alpha_steps,
            (sp[0], sp[1], sp[2]),
            dists,
            orient_row,
            proj_row,
            alpha_ranked,
        );
        params_pool.push(sp);
        let floor = alpha_ranked.first().map_or(f64::INFINITY, |&(_, _, c)| c);
        if in_region && key <= floor * (1.0 + config.warm_gate_rel_tol) + 1e-9 {
            let estimate = build_estimate_2d(observations, &p, cost, config, uncert);
            params_pool.push(p);
            return Ok(estimate);
        }
        params_pool.push(p);
    }

    // Stage 1: slope-only position solve.
    if is_exhaustive_2d(config) {
        for (s, &seed_pos) in seeds.position_starts.iter().enumerate() {
            let kt0 = match geometry {
                Some(g) => {
                    let base = s * n_obs;
                    let sum: f64 = observations
                        .iter()
                        .enumerate()
                        .map(|(i, o)| o.slope - g.seed_slopes[base + i])
                        .sum();
                    sum / n_obs as f64
                }
                None => seed_kt(observations, seed_pos),
            };
            let mut p0 = pooled(params_pool);
            p0.extend_from_slice(&[seed_pos.x, seed_pos.y, kt0]);
            let (p, cost) = refine_slope_2d(lm, observations, config, p0);
            position_candidates.push((p, cost, s));
        }
        position_candidates.sort_unstable_by(|a, b| {
            a.1.partial_cmp(&b.1).expect("finite costs").then_with(|| a.2.cmp(&b.2))
        });
    } else {
        let beam = config.refine_top_k.unwrap_or(usize::MAX).max(1);
        let mut best_refined = f64::INFINITY;
        for (rank, &(coarse_cost, s, kt0)) in coarse.iter().enumerate() {
            if rank >= beam {
                break;
            }
            if config.early_exit_rel_tol > 0.0
                && rank >= 2
                && coarse_cost > best_refined * (1.0 + config.early_exit_rel_tol)
            {
                break;
            }
            let seed_pos = seeds.position_starts[s];
            let mut p0 = pooled(params_pool);
            p0.extend_from_slice(&[seed_pos.x, seed_pos.y, kt0]);
            let (p, cost) = refine_slope_2d(lm, observations, config, p0);
            best_refined = best_refined.min(cost);
            position_candidates.push((p, cost, s));
        }
        position_candidates.sort_unstable_by(|a, b| {
            a.1.partial_cmp(&b.1).expect("finite costs").then_with(|| a.2.cmp(&b.2))
        });
    }
    // Keep the best in-region candidates by index (the overall best, at
    // index 0 after the sort, is the backup if none stayed inside).
    let mut stage1 = [0usize; 2];
    let mut stage1_len = 0usize;
    for (i, (p, _, _)) in position_candidates.iter().enumerate() {
        if admissible.contains(Vec2::new(p[0], p[1])) {
            stage1[stage1_len] = i;
            stage1_len += 1;
            if stage1_len == stage1.len() {
                break;
            }
        }
    }
    if stage1_len == 0 {
        stage1_len = 1;
    }

    // Stages 2 + 3: α scan then joint refinement, ranked by phase cost
    // plus the RSSI mode penalty.
    let mut best_inside: Option<(usize, f64)> = None;
    let mut best_any: Option<(usize, f64)> = None;
    for &ci in &stage1[..stage1_len] {
        let (cx, cy, ckt) = {
            let p = &position_candidates[ci].0;
            (p[0], p[1], p[2])
        };
        scan_alphas_2d(
            observations,
            geometry,
            config,
            seeds.alpha_steps,
            (cx, cy, ckt),
            dists,
            orient_row,
            proj_row,
            alpha_ranked,
        );
        for (rank, &(alpha0, bt0, scan_cost)) in alpha_ranked.iter().take(4).enumerate() {
            if config.early_exit_rel_tol > 0.0 && rank >= 2 {
                if let Some((_, k)) = best_any {
                    if scan_cost > k * (1.0 + config.early_exit_rel_tol) {
                        break;
                    }
                }
            }
            let mut p0 = pooled(params_pool);
            p0.extend_from_slice(&[cx, cy, alpha0, ckt, bt0]);
            let (p, cost) = refine_joint_2d(lm, observations, config, p0);
            let key = cost
                + rssi_mode_penalty(
                    observations,
                    Vec2::new(p[0], p[1]),
                    p[2],
                    config.rssi_sigma_db,
                );
            let idx = refined.len();
            if admissible.contains(Vec2::new(p[0], p[1]))
                && best_inside.is_none_or(|(_, k)| key < k)
            {
                best_inside = Some((idx, key));
            }
            if best_any.is_none_or(|(_, k)| key < k) {
                best_any = Some((idx, key));
            }
            refined.push((p, cost));
        }
    }

    let (best_idx, _) = best_inside.or(best_any).expect("at least one start");
    let (p, cost) = refined.swap_remove(best_idx);
    let estimate = build_estimate_2d(observations, &p, cost, config, uncert);
    params_pool.push(p);
    Ok(estimate)
}

/// The cheap stage-1 score of one grid seed: the closed-form `k_t` seed
/// and the unrefined slope cost at the seed position.
fn coarse_seed_cost_2d(
    observations: &[AntennaObservation],
    geometry: Option<&SeedGeometry>,
    s: usize,
    seed_pos: Vec2,
    config: &SolverConfig,
) -> (f64, f64) {
    let n_obs = observations.len();
    let mut cost = 0.0;
    let kt0 = match geometry {
        Some(g) => {
            let base = s * n_obs;
            let sum: f64 = observations
                .iter()
                .enumerate()
                .map(|(i, o)| o.slope - g.seed_slopes[base + i])
                .sum();
            let kt0 = sum / n_obs as f64;
            for (i, o) in observations.iter().enumerate() {
                let rs = (o.slope - g.seed_slopes[base + i] - kt0) / config.slope_sigma;
                cost += rs * rs;
            }
            kt0
        }
        None => {
            let kt0 = seed_kt(observations, seed_pos);
            let p3 = seed_pos.with_z(0.0);
            for o in observations {
                let d = o.pose.position().distance(p3);
                let rs =
                    (o.slope - propagation::slope_from_distance(d) - kt0) / config.slope_sigma;
                cost += rs * rs;
            }
            kt0
        }
    };
    (kt0, cost)
}

/// Stage 2 at one position candidate `(x, y, k_t)`: ranks every α seed by
/// the full cost and leaves `alpha_ranked` sorted best-first.
#[allow(clippy::too_many_arguments)]
fn scan_alphas_2d(
    observations: &[AntennaObservation],
    geometry: Option<&SeedGeometry>,
    config: &SolverConfig,
    alpha_steps: usize,
    candidate: (f64, f64, f64),
    dists: &mut Vec<f64>,
    orient_row: &mut Vec<f64>,
    proj_row: &mut Vec<f64>,
    alpha_ranked: &mut Vec<(f64, f64, f64)>,
) {
    let n_obs = observations.len();
    let (cx, cy, ckt) = candidate;
    let cand_pos = Vec2::new(cx, cy).with_z(0.0);
    dists.clear();
    let mut slope_cost = 0.0;
    for o in observations {
        let d = o.pose.position().distance(cand_pos);
        let rs = (o.slope - propagation::slope_from_distance(d) - ckt) / config.slope_sigma;
        slope_cost += rs * rs;
        dists.push(d);
    }
    alpha_ranked.clear();
    for a in 0..alpha_steps {
        let alpha0 = std::f64::consts::PI * a as f64 / alpha_steps as f64;
        let (orow, prow): (&[f64], &[f64]) = match geometry {
            Some(g) => (
                &g.orient[a * n_obs..(a + 1) * n_obs],
                &g.proj[a * n_obs..(a + 1) * n_obs],
            ),
            None => {
                let w = planar_dipole(alpha0);
                orient_row.clear();
                proj_row.clear();
                for o in observations {
                    orient_row.push(orientation_phase(&o.pose, w));
                    proj_row.push(projection_magnitude(&o.pose, w));
                }
                (orient_row.as_slice(), proj_row.as_slice())
            }
        };
        let bt0 = angle::circular_mean(
            observations.iter().zip(orow).map(|(o, &th)| o.intercept - th),
        )
        .unwrap_or(0.0);
        let mut cost = slope_cost;
        for (o, &th) in observations.iter().zip(orow) {
            let rb = angle::wrap_pi(o.intercept - th - bt0) / config.intercept_sigma;
            cost += rb * rb;
        }
        cost += rssi_penalty_precomputed(observations, dists, prow, config.rssi_sigma_db);
        alpha_ranked.push((alpha0, bt0, cost));
    }
    alpha_ranked.sort_unstable_by(|a, b| {
        a.2.partial_cmp(&b.2).expect("finite costs").then_with(|| {
            a.0.partial_cmp(&b.0).expect("finite alphas")
        })
    });
}

/// Final-estimate assembly: uncertainty propagation plus canonical
/// wrapping of the angular parameters.
fn build_estimate_2d(
    observations: &[AntennaObservation],
    p: &[f64],
    cost: f64,
    config: &SolverConfig,
    scratch: &mut UncertScratch,
) -> TagEstimate2D {
    let n_res = 2 * observations.len();
    let (position_std_m, orientation_std_rad, position_cov) =
        estimate_uncertainty(observations, p, config, scratch);
    TagEstimate2D {
        position: Vec2::new(p[0], p[1]),
        orientation: p[2].rem_euclid(std::f64::consts::PI),
        kt: p[3],
        bt: angle::wrap_tau(p[4]),
        cost,
        residual_rms: (cost / n_res as f64).sqrt(),
        position_std_m,
        orientation_std_rad,
        position_cov,
    }
}

/// Finite-difference steps of the numeric-fallback joint solve:
/// x (m), y (m), α (rad), k_t (rad/Hz), b_t (rad).
const JOINT_STEPS_2D: [f64; 5] = [1e-4, 1e-4, 1e-4, 1e-13, 1e-4];
/// Steps of the numeric-fallback slope-only (stage-1) solve: x, y, k_t.
const SLOPE_STEPS_2D: [f64; 3] = [1e-4, 1e-4, 1e-13];

/// Joint 5-parameter LM refinement, dispatched on the configured
/// [`JacobianMode`].
fn refine_joint_2d(
    lm: &mut LmWorkspace,
    observations: &[AntennaObservation],
    config: &SolverConfig,
    p0: Vec<f64>,
) -> (Vec<f64>, f64) {
    match config.jacobian {
        JacobianMode::Analytic => levenberg_marquardt_analytic_with(
            lm,
            &|p: &[f64], r: &mut Vec<f64>, jac: Option<&mut Vec<f64>>| {
                residuals_and_jacobian_2d(observations, p, config, r, jac)
            },
            p0,
            config.max_iterations,
            config.tolerance,
        ),
        JacobianMode::Numeric => levenberg_marquardt_with(
            lm,
            &|p: &[f64], out: &mut Vec<f64>| {
                residuals_and_jacobian_2d(observations, p, config, out, None)
            },
            p0,
            &JOINT_STEPS_2D,
            config.max_iterations,
            config.tolerance,
        ),
    }
}

/// Stage-1 slope-only LM refinement over `(x, y, k_t)`, dispatched on the
/// configured [`JacobianMode`].
fn refine_slope_2d(
    lm: &mut LmWorkspace,
    observations: &[AntennaObservation],
    config: &SolverConfig,
    p0: Vec<f64>,
) -> (Vec<f64>, f64) {
    match config.jacobian {
        JacobianMode::Analytic => levenberg_marquardt_analytic_with(
            lm,
            &|p: &[f64], r: &mut Vec<f64>, jac: Option<&mut Vec<f64>>| {
                slope_residuals_and_jacobian_2d(observations, p, config, r, jac)
            },
            p0,
            config.max_iterations,
            config.tolerance,
        ),
        JacobianMode::Numeric => levenberg_marquardt_with(
            lm,
            &|p: &[f64], out: &mut Vec<f64>| {
                slope_residuals_and_jacobian_2d(observations, p, config, out, None)
            },
            p0,
            &SLOPE_STEPS_2D,
            config.max_iterations,
            config.tolerance,
        ),
    }
}

/// Gauss–Newton covariance at the solution — the frozen copy of the
/// facade's uncertainty propagation (identical today, pinned here so the
/// oracle stays closed under future changes).
#[allow(clippy::needless_range_loop)]
fn estimate_uncertainty(
    observations: &[AntennaObservation],
    p: &[f64],
    config: &SolverConfig,
    scratch: &mut UncertScratch,
) -> (f64, f64, [[f64; 2]; 2]) {
    let n = p.len();
    let UncertScratch { r, r_minus, work, jac, jtj, cov, e } = scratch;
    jac.clear();
    match config.jacobian {
        JacobianMode::Analytic => {
            residuals_and_jacobian_2d(observations, p, config, r, Some(jac));
        }
        JacobianMode::Numeric => {
            residuals_and_jacobian_2d(observations, p, config, r, None);
            let m = r.len();
            jac.resize(m * n, 0.0);
            work.clear();
            work.extend_from_slice(p);
            for j in 0..n {
                let h = JOINT_STEPS_2D[j];
                work[j] = p[j] + h;
                residuals_and_jacobian_2d(observations, work, config, r, None);
                work[j] = p[j] - h;
                residuals_and_jacobian_2d(observations, work, config, r_minus, None);
                work[j] = p[j];
                for i in 0..m {
                    jac[i * n + j] = (r[i] - r_minus[i]) / (2.0 * h);
                }
            }
        }
    }
    let m = jac.len() / n;
    jtj.clear();
    jtj.resize(n * n, 0.0);
    for i in 0..m {
        let row = &jac[i * n..(i + 1) * n];
        for a in 0..n {
            for b in a..n {
                jtj[a * n + b] += row[a] * row[b];
            }
        }
    }
    for a in 0..n {
        for b in 0..a {
            jtj[a * n + b] = jtj[b * n + a];
        }
    }
    let singular = (f64::INFINITY, f64::INFINITY, [[f64::INFINITY; 2]; 2]);
    if !cholesky_factor(jtj, n) {
        return singular;
    }
    cov.clear();
    cov.resize(n * n, 0.0);
    e.clear();
    e.resize(n, 0.0);
    for col in 0..n {
        e.fill(0.0);
        e[col] = 1.0;
        cholesky_solve(jtj, n, e);
        if !(e[col].is_finite() && e[col] >= 0.0) {
            return singular;
        }
        cov[col * n..(col + 1) * n].copy_from_slice(e);
    }
    let position_cov = [[cov[0], cov[n]], [cov[1], cov[n + 1]]];
    let position_std = (cov[0] + cov[n + 1]).sqrt();
    let orientation_std = cov[2 * n + 2].sqrt();
    (position_std, orientation_std, position_cov)
}

/// Mean `kᵢ − 4π dᵢ(pos)/c` over antennas — the closed-form `k_t` seed for
/// a hypothesised position.
fn seed_kt(observations: &[AntennaObservation], pos: Vec2) -> f64 {
    let sum: f64 = observations
        .iter()
        .map(|o| {
            let d = o.pose.position().distance(pos.with_z(0.0));
            o.slope - propagation::slope_from_distance(d)
        })
        .sum();
    sum / observations.len() as f64
}

/// RSSI-consistency penalty of a candidate 2-D mode `(pos, α)`.
fn rssi_mode_penalty(
    observations: &[AntennaObservation],
    pos: Vec2,
    alpha: f64,
    sigma_db: f64,
) -> f64 {
    if !sigma_db.is_finite() || sigma_db <= 0.0 {
        return 0.0;
    }
    let w = planar_dipole(alpha);
    rssi_penalty_core(
        observations.iter().map(|o| {
            let d = o.pose.position().distance(pos.with_z(0.0));
            (o.mean_rssi_dbm, d, projection_magnitude(&o.pose, w))
        }),
        sigma_db,
    )
}

/// RSSI penalty over distances and projections already in hand.
fn rssi_penalty_precomputed(
    observations: &[AntennaObservation],
    dists: &[f64],
    projs: &[f64],
    sigma_db: f64,
) -> f64 {
    rssi_penalty_core(
        observations
            .iter()
            .zip(dists)
            .zip(projs)
            .map(|((o, &d), &proj)| (o.mean_rssi_dbm, d, proj)),
        sigma_db,
    )
}

/// The penalty kernel over `(rssi dBm, distance, projection)` triples.
fn rssi_penalty_core<I>(items: I, sigma_db: f64) -> f64
where
    I: Iterator<Item = (f64, f64, f64)>,
{
    if !sigma_db.is_finite() || sigma_db <= 0.0 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut n = 0usize;
    for (rssi, d, proj) in items {
        if !rssi.is_finite() {
            return 0.0;
        }
        if proj < 1e-3 || d <= 0.0 {
            return 1e6;
        }
        let m = rssi + 40.0 * d.log10() - 20.0 * proj.log10();
        sum += m;
        sum_sq += m * m;
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    let variance = (sum_sq - sum * sum / n as f64).max(0.0);
    variance / (sigma_db * sigma_db)
}

/// The 2N sigma-normalized residuals at `p = (x, y, α, k_t, b_t)` plus,
/// when `jac` is given, their row-major `2N × 5` analytic Jacobian — the
/// scalar pre-lane loop.
fn residuals_and_jacobian_2d(
    observations: &[AntennaObservation],
    p: &[f64],
    config: &SolverConfig,
    r: &mut Vec<f64>,
    jac: Option<&mut Vec<f64>>,
) {
    let pos = Vec2::new(p[0], p[1]).with_z(0.0);
    let alpha = p[2];
    let w = planar_dipole(alpha);
    let dw = Vec3::new(-alpha.sin(), 0.0, alpha.cos());
    let (kt, bt) = (p[3], p[4]);
    r.clear();
    let mut jac = jac;
    if let Some(j) = jac.as_deref_mut() {
        j.clear();
        j.resize(observations.len() * 2 * 5, 0.0);
    }
    let k1 = propagation::slope_from_distance(1.0); // 4π/c
    for (i, o) in observations.iter().enumerate() {
        let ap = o.pose.position();
        let d = ap.distance(pos);
        let k_model = propagation::slope_from_distance(d) + kt;
        r.push((o.slope - k_model) / config.slope_sigma);
        let uw = o.pose.u().dot(w);
        let vw = o.pose.v().dot(w);
        let denom = uw * uw + vw * vw;
        let theta = if denom < 1e-24 {
            0.0
        } else {
            (2.0 * uw * vw).atan2(uw * uw - vw * vw)
        };
        let b_model = theta + bt;
        r.push(angle::wrap_pi(o.intercept - b_model) / config.intercept_sigma);
        if let Some(j) = jac.as_deref_mut() {
            let rs = 2 * i * 5;
            let g = if d > 1e-12 { -k1 / (d * config.slope_sigma) } else { 0.0 };
            j[rs] = g * (pos.x - ap.x);
            j[rs + 1] = g * (pos.y - ap.y);
            j[rs + 3] = -1.0 / config.slope_sigma;
            let rb = rs + 5;
            let dtheta = if denom < 1e-24 {
                0.0
            } else {
                let uwp = o.pose.u().dot(dw);
                let vwp = o.pose.v().dot(dw);
                2.0 * (uw * vwp - vw * uwp) / denom
            };
            j[rb + 2] = -dtheta / config.intercept_sigma;
            j[rb + 4] = -1.0 / config.intercept_sigma;
        }
    }
}

/// The N sigma-normalized slope residuals at `p = (x, y, k_t)` and their
/// optional `N × 3` analytic Jacobian — the scalar pre-lane loop.
fn slope_residuals_and_jacobian_2d(
    observations: &[AntennaObservation],
    p: &[f64],
    config: &SolverConfig,
    r: &mut Vec<f64>,
    jac: Option<&mut Vec<f64>>,
) {
    let pos = Vec2::new(p[0], p[1]).with_z(0.0);
    let kt = p[2];
    r.clear();
    let mut jac = jac;
    if let Some(j) = jac.as_deref_mut() {
        j.clear();
        j.resize(observations.len() * 3, 0.0);
    }
    let k1 = propagation::slope_from_distance(1.0);
    for (i, o) in observations.iter().enumerate() {
        let ap = o.pose.position();
        let d = ap.distance(pos);
        r.push((o.slope - propagation::slope_from_distance(d) - kt) / config.slope_sigma);
        if let Some(j) = jac.as_deref_mut() {
            let g = if d > 1e-12 { -k1 / (d * config.slope_sigma) } else { 0.0 };
            j[i * 3] = g * (pos.x - ap.x);
            j[i * 3 + 1] = g * (pos.y - ap.y);
            j[i * 3 + 2] = -1.0 / config.slope_sigma;
        }
    }
}

/// In-place Cholesky factorization `A = LLᵀ` (frozen copy; see the solver
/// module's version for the contract).
#[allow(clippy::needless_range_loop)]
fn cholesky_factor(a: &mut [f64], n: usize) -> bool {
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[i * n + j];
            for k in 0..j {
                s -= a[i * n + k] * a[j * n + k];
            }
            if i == j {
                if !s.is_finite() || s < 1e-300 {
                    return false;
                }
                a[i * n + i] = s.sqrt();
            } else {
                a[i * n + j] = s / a[j * n + j];
            }
        }
    }
    true
}

/// Solves `LLᵀ x = b` in place against a [`cholesky_factor`] factor.
fn cholesky_solve(l: &[f64], n: usize, b: &mut [f64]) {
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[i * n + k] * b[k];
        }
        b[i] = s / l[i * n + i];
    }
    for i in (0..n).rev() {
        let mut s = b[i];
        for k in (i + 1)..n {
            s -= l[k * n + i] * b[k];
        }
        b[i] = s / l[i * n + i];
    }
}

// ---------------------------------------------------------------------------
// 3-D reference solver
// ---------------------------------------------------------------------------

/// Scratch buffers of the frozen 3-D solver — the pre-refactor
/// `Solver3DWorkspace` shape.
#[derive(Debug, Default)]
pub struct Reference3DWorkspace {
    lm: LmWorkspace,
    position_candidates: Vec<(Vec<f64>, f64, usize)>,
    coarse: Vec<(f64, usize, f64)>,
    dipole_ranked: Vec<(f64, f64, f64, f64)>,
    dists: Vec<f64>,
    orient_row: Vec<f64>,
    proj_row: Vec<f64>,
    refined: Vec<(Vec<f64>, f64)>,
}

/// True when the multi-start scan runs the legacy exhaustive loop.
fn is_exhaustive_3d(config: &Solver3DConfig) -> bool {
    config.refine_top_k.is_none() && config.early_exit_rel_tol <= 0.0
}

fn dipole_from_angles(theta: f64, phi: f64) -> Vec3 {
    let (st, ct) = theta.sin_cos();
    let (sp, cp) = phi.sin_cos();
    Vec3::new(st * cp, st * sp, ct)
}

/// The frozen pre-lane-core
/// [`solve_3d_seeded_warm`](crate::solver3d::solve_3d_seeded_warm):
/// bit-exact oracle of the facade for identical inputs.
///
/// # Errors
///
/// [`Solve3DError::TooFewAntennas`] with fewer than 4 observations.
pub fn solve_3d_reference(
    observations: &[AntennaObservation],
    seeds: &Solve3DSeeds,
    config: &Solver3DConfig,
    workspace: &mut Reference3DWorkspace,
    warm: Option<&WarmStart3D>,
) -> Result<TagEstimate3D, Solve3DError> {
    if observations.len() < 4 {
        return Err(Solve3DError::TooFewAntennas { provided: observations.len() });
    }
    let n_obs = observations.len();
    let geometry = seeds.geometry.as_ref().filter(|g| g.matches(observations));
    let Reference3DWorkspace {
        lm,
        position_candidates,
        coarse,
        dipole_ranked,
        dists,
        orient_row,
        proj_row,
        refined,
    } = workspace;

    let admissible_xy = seeds.admissible_xy;
    let (z_lo_adm, z_hi_adm) = seeds.z_bounds;
    let inside = |p: &[f64]| {
        admissible_xy.contains(Vec2::new(p[0], p[1]))
            && p[2] >= z_lo_adm
            && p[2] <= z_hi_adm
    };
    let mode_penalty = |pos: Vec3, w: Vec3| {
        if !config.rssi_sigma_db.is_finite() || config.rssi_sigma_db <= 0.0 {
            return 0.0;
        }
        rssi_penalty_core(
            observations.iter().map(|o| {
                (
                    o.mean_rssi_dbm,
                    o.pose.position().distance(pos),
                    projection_magnitude(&o.pose, w),
                )
            }),
            config.rssi_sigma_db,
        )
    };

    // Coarse ranking of every (x, y, z) seed by its unrefined slope cost.
    coarse.clear();
    if warm.is_some() || !is_exhaustive_3d(config) {
        for (s, &pos) in seeds.position_starts.iter().enumerate() {
            let (kt0, cost) = coarse_seed_cost_3d(observations, geometry, s, pos, config);
            coarse.push((cost, s, kt0));
        }
        coarse.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).expect("finite costs").then_with(|| a.1.cmp(&b.1))
        });
    }

    // Warm start: refine the prior first and gate against the coarse-scan
    // floor.
    if let Some(w) = warm {
        let wd = w.dipole.normalized();
        let theta = wd.z.clamp(-1.0, 1.0).acos();
        let phi = wd.y.atan2(wd.x);
        let wp0 =
            vec![w.position.x, w.position.y, w.position.z, theta, phi, w.kt, w.bt];
        let (p, cost) = refine_joint_3d(lm, observations, config, wp0);
        let key = cost
            + mode_penalty(Vec3::new(p[0], p[1], p[2]), dipole_from_angles(p[3], p[4]));
        let (_, best_seed, best_kt) = coarse[0];
        let pos = seeds.position_starts[best_seed];
        let (sp, _) = refine_slope_3d(
            lm,
            observations,
            config,
            vec![pos.x, pos.y, pos.z, best_kt],
        );
        scan_dipoles_3d(
            observations,
            geometry,
            config,
            seeds.rings,
            (sp[0], sp[1], sp[2], sp[3]),
            dists,
            orient_row,
            proj_row,
            dipole_ranked,
        );
        let floor = dipole_ranked.first().map_or(f64::INFINITY, |&(_, _, _, c)| c);
        if inside(&p) && key <= floor * (1.0 + config.warm_gate_rel_tol) + 1e-9 {
            return Ok(build_estimate_3d(observations, &p, cost));
        }
    }

    // Stage 1: slope-only position solve over (x, y, z, k_t).
    position_candidates.clear();
    if is_exhaustive_3d(config) {
        for (s, &pos) in seeds.position_starts.iter().enumerate() {
            let kt0 = match geometry {
                Some(g) => {
                    let base = s * n_obs;
                    observations
                        .iter()
                        .enumerate()
                        .map(|(i, o)| o.slope - g.seed_slopes[base + i])
                        .sum::<f64>()
                        / n_obs as f64
                }
                None => {
                    observations
                        .iter()
                        .map(|o| {
                            o.slope
                                - propagation::slope_from_distance(
                                    o.pose.position().distance(pos),
                                )
                        })
                        .sum::<f64>()
                        / n_obs as f64
                }
            };
            let (p, cost) =
                refine_slope_3d(lm, observations, config, vec![pos.x, pos.y, pos.z, kt0]);
            position_candidates.push((p, cost, s));
        }
        // Stable sort on cost alone: ties keep grid (push) order.
        position_candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"));
    } else {
        let beam = config.refine_top_k.unwrap_or(usize::MAX).max(1);
        let mut best_refined = f64::INFINITY;
        for (rank, &(coarse_cost, s, kt0)) in coarse.iter().enumerate() {
            if rank >= beam {
                break;
            }
            if config.early_exit_rel_tol > 0.0
                && rank >= 2
                && coarse_cost > best_refined * (1.0 + config.early_exit_rel_tol)
            {
                break;
            }
            let pos = seeds.position_starts[s];
            let (p, cost) =
                refine_slope_3d(lm, observations, config, vec![pos.x, pos.y, pos.z, kt0]);
            best_refined = best_refined.min(cost);
            position_candidates.push((p, cost, s));
        }
        position_candidates.sort_by(|a, b| {
            a.1.partial_cmp(&b.1).expect("finite costs").then_with(|| a.2.cmp(&b.2))
        });
    }
    // Keep every distinct in-volume candidate (deduplicated to 10 cm, by
    // index) and let the joint stage pick.
    let mut stage1 = [0usize; 6];
    let mut stage1_len = 0usize;
    for (i, (p, _, _)) in position_candidates.iter().enumerate() {
        if !inside(p) {
            continue;
        }
        let pos = Vec3::new(p[0], p[1], p[2]);
        let duplicate = stage1[..stage1_len].iter().any(|&j| {
            let q = &position_candidates[j].0;
            Vec3::new(q[0], q[1], q[2]).distance(pos) < 0.10
        });
        if !duplicate {
            stage1[stage1_len] = i;
            stage1_len += 1;
            if stage1_len == stage1.len() {
                break;
            }
        }
    }
    if stage1_len == 0 {
        stage1_len = 1;
    }

    // Stage 2: dipole scan with closed-form b_t, then stage 3: joint
    // 7-parameter refinement from the best seeds.
    refined.clear();
    let mut best_inside: Option<(usize, f64)> = None;
    let mut best_any: Option<(usize, f64)> = None;
    for &ci in &stage1[..stage1_len] {
        let (cx, cy, cz, ckt) = {
            let p = &position_candidates[ci].0;
            (p[0], p[1], p[2], p[3])
        };
        scan_dipoles_3d(
            observations,
            geometry,
            config,
            seeds.rings,
            (cx, cy, cz, ckt),
            dists,
            orient_row,
            proj_row,
            dipole_ranked,
        );
        for (rank, &(theta, phi, bt0, scan_cost)) in
            dipole_ranked.iter().take(3).enumerate()
        {
            if config.early_exit_rel_tol > 0.0 && rank >= 2 {
                if let Some((_, k)) = best_any {
                    if scan_cost > k * (1.0 + config.early_exit_rel_tol) {
                        break;
                    }
                }
            }
            let p0 = vec![cx, cy, cz, theta, phi, ckt, bt0];
            let (p, cost) = refine_joint_3d(lm, observations, config, p0);
            let key = cost
                + mode_penalty(
                    Vec3::new(p[0], p[1], p[2]),
                    dipole_from_angles(p[3], p[4]),
                );
            let idx = refined.len();
            if inside(&p) && best_inside.is_none_or(|(_, k)| key < k) {
                best_inside = Some((idx, key));
            }
            if best_any.is_none_or(|(_, k)| key < k) {
                best_any = Some((idx, key));
            }
            refined.push((p, cost));
        }
    }

    let (best_idx, _) = best_inside.or(best_any).expect("at least one start");
    let (p, cost) = refined.swap_remove(best_idx);
    Ok(build_estimate_3d(observations, &p, cost))
}

/// The cheap stage-1 score of one 3-D grid seed: closed-form `k_t` and the
/// unrefined slope cost.
fn coarse_seed_cost_3d(
    observations: &[AntennaObservation],
    geometry: Option<&SeedGeometry3D>,
    s: usize,
    pos: Vec3,
    config: &Solver3DConfig,
) -> (f64, f64) {
    let n_obs = observations.len();
    let mut cost = 0.0;
    let kt0 = match geometry {
        Some(g) => {
            let base = s * n_obs;
            let kt0 = observations
                .iter()
                .enumerate()
                .map(|(i, o)| o.slope - g.seed_slopes[base + i])
                .sum::<f64>()
                / n_obs as f64;
            for (i, o) in observations.iter().enumerate() {
                let rs = (o.slope - g.seed_slopes[base + i] - kt0) / config.slope_sigma;
                cost += rs * rs;
            }
            kt0
        }
        None => {
            let kt0 = observations
                .iter()
                .map(|o| {
                    o.slope
                        - propagation::slope_from_distance(o.pose.position().distance(pos))
                })
                .sum::<f64>()
                / n_obs as f64;
            for o in observations {
                let d = o.pose.position().distance(pos);
                let rs =
                    (o.slope - propagation::slope_from_distance(d) - kt0) / config.slope_sigma;
                cost += rs * rs;
            }
            kt0
        }
    };
    (kt0, cost)
}

/// Stage 2 at one position candidate `(x, y, z, k_t)`: ranks every
/// half-sphere scan direction by the full cost and leaves `dipole_ranked`
/// sorted best-first.
#[allow(clippy::too_many_arguments)]
fn scan_dipoles_3d(
    observations: &[AntennaObservation],
    geometry: Option<&SeedGeometry3D>,
    config: &Solver3DConfig,
    rings: usize,
    candidate: (f64, f64, f64, f64),
    dists: &mut Vec<f64>,
    orient_row: &mut Vec<f64>,
    proj_row: &mut Vec<f64>,
    dipole_ranked: &mut Vec<(f64, f64, f64, f64)>,
) {
    let n_obs = observations.len();
    let (cx, cy, cz, ckt) = candidate;
    let cand_pos = Vec3::new(cx, cy, cz);
    dists.clear();
    let mut slope_cost = 0.0;
    for o in observations {
        let d = o.pose.position().distance(cand_pos);
        let rs = (o.slope - propagation::slope_from_distance(d) - ckt) / config.slope_sigma;
        slope_cost += rs * rs;
        dists.push(d);
    }
    dipole_ranked.clear();
    for ti in 0..rings {
        // Polar rings from near-pole to equator.
        let theta = std::f64::consts::FRAC_PI_2 * (ti as f64 + 0.5) / rings as f64;
        for pi in 0..(2 * rings) {
            let phi = std::f64::consts::TAU * pi as f64 / (2 * rings) as f64;
            let dir = ti * 2 * rings + pi;
            let (orow, prow): (&[f64], &[f64]) = match geometry {
                Some(g) => (
                    &g.orient[dir * n_obs..(dir + 1) * n_obs],
                    &g.proj[dir * n_obs..(dir + 1) * n_obs],
                ),
                None => {
                    let w0 = dipole_from_angles(theta, phi);
                    orient_row.clear();
                    proj_row.clear();
                    for o in observations {
                        orient_row.push(orientation_phase(&o.pose, w0));
                        proj_row.push(projection_magnitude(&o.pose, w0));
                    }
                    (orient_row.as_slice(), proj_row.as_slice())
                }
            };
            let bt0 = angle::circular_mean(
                observations.iter().zip(orow).map(|(o, &th)| o.intercept - th),
            )
            .unwrap_or(0.0);
            let mut cost = slope_cost;
            for (o, &th) in observations.iter().zip(orow) {
                let rb = angle::wrap_pi(o.intercept - th - bt0) / config.intercept_sigma;
                cost += rb * rb;
            }
            cost += rssi_penalty_precomputed(observations, dists, prow, config.rssi_sigma_db);
            dipole_ranked.push((theta, phi, bt0, cost));
        }
    }
    dipole_ranked.sort_by(|a, b| a.3.partial_cmp(&b.3).expect("finite costs"));
}

/// Final-estimate assembly: dipole canonicalization (`z ≥ 0`) plus
/// wrapping of `b_t`.
fn build_estimate_3d(
    observations: &[AntennaObservation],
    p: &[f64],
    cost: f64,
) -> TagEstimate3D {
    let mut dipole = dipole_from_angles(p[3], p[4]);
    if dipole.z < 0.0 {
        dipole = -dipole;
    }
    let n_res = 2 * observations.len();
    TagEstimate3D {
        position: Vec3::new(p[0], p[1], p[2]),
        dipole,
        kt: p[5],
        bt: angle::wrap_tau(p[6]),
        cost,
        residual_rms: (cost / n_res as f64).sqrt(),
    }
}

/// Finite-difference steps of the numeric-fallback joint solve:
/// x, y, z (m), θ, φ (rad), k_t (rad/Hz), b_t (rad).
const JOINT_STEPS_3D: [f64; 7] = [1e-4, 1e-4, 1e-4, 1e-4, 1e-4, 1e-13, 1e-4];
/// Steps of the numeric-fallback slope-only (stage-1) solve: x, y, z, k_t.
const SLOPE_STEPS_3D: [f64; 4] = [1e-4, 1e-4, 1e-4, 1e-13];

/// Joint 7-parameter LM refinement, dispatched on the configured
/// [`JacobianMode`].
fn refine_joint_3d(
    lm: &mut LmWorkspace,
    observations: &[AntennaObservation],
    config: &Solver3DConfig,
    p0: Vec<f64>,
) -> (Vec<f64>, f64) {
    match config.jacobian {
        JacobianMode::Analytic => levenberg_marquardt_analytic_with(
            lm,
            &|p: &[f64], r: &mut Vec<f64>, jac: Option<&mut Vec<f64>>| {
                residuals_and_jacobian_3d(observations, p, config, r, jac)
            },
            p0,
            config.max_iterations,
            config.tolerance,
        ),
        JacobianMode::Numeric => levenberg_marquardt_with(
            lm,
            &|p: &[f64], out: &mut Vec<f64>| {
                residuals_and_jacobian_3d(observations, p, config, out, None)
            },
            p0,
            &JOINT_STEPS_3D,
            config.max_iterations,
            config.tolerance,
        ),
    }
}

/// Stage-1 slope-only LM refinement over `(x, y, z, k_t)`, dispatched on
/// the configured [`JacobianMode`].
fn refine_slope_3d(
    lm: &mut LmWorkspace,
    observations: &[AntennaObservation],
    config: &Solver3DConfig,
    p0: Vec<f64>,
) -> (Vec<f64>, f64) {
    match config.jacobian {
        JacobianMode::Analytic => levenberg_marquardt_analytic_with(
            lm,
            &|p: &[f64], r: &mut Vec<f64>, jac: Option<&mut Vec<f64>>| {
                slope_residuals_and_jacobian_3d(observations, p, config, r, jac)
            },
            p0,
            config.max_iterations,
            config.tolerance,
        ),
        JacobianMode::Numeric => levenberg_marquardt_with(
            lm,
            &|p: &[f64], out: &mut Vec<f64>| {
                slope_residuals_and_jacobian_3d(observations, p, config, out, None)
            },
            p0,
            &SLOPE_STEPS_3D,
            config.max_iterations,
            config.tolerance,
        ),
    }
}

/// The 2N sigma-normalized residuals at `p = (x, y, z, θ, φ, k_t, b_t)`
/// plus, when `jac` is given, their row-major `2N × 7` analytic Jacobian —
/// the scalar pre-lane loop.
fn residuals_and_jacobian_3d(
    observations: &[AntennaObservation],
    p: &[f64],
    config: &Solver3DConfig,
    r: &mut Vec<f64>,
    jac: Option<&mut Vec<f64>>,
) {
    let pos = Vec3::new(p[0], p[1], p[2]);
    let (st, ct) = p[3].sin_cos();
    let (sp, cp) = p[4].sin_cos();
    let w = Vec3::new(st * cp, st * sp, ct);
    let wt = Vec3::new(ct * cp, ct * sp, -st);
    let wp = Vec3::new(-st * sp, st * cp, 0.0);
    let (kt, bt) = (p[5], p[6]);
    r.clear();
    let mut jac = jac;
    if let Some(j) = jac.as_deref_mut() {
        j.clear();
        j.resize(observations.len() * 2 * 7, 0.0);
    }
    let k1 = propagation::slope_from_distance(1.0); // 4π/c
    for (i, o) in observations.iter().enumerate() {
        let ap = o.pose.position();
        let d = ap.distance(pos);
        r.push((o.slope - propagation::slope_from_distance(d) - kt) / config.slope_sigma);
        let uw = o.pose.u().dot(w);
        let vw = o.pose.v().dot(w);
        let denom = uw * uw + vw * vw;
        let theta = if denom < 1e-24 {
            0.0
        } else {
            (2.0 * uw * vw).atan2(uw * uw - vw * vw)
        };
        r.push(angle::wrap_pi(o.intercept - theta - bt) / config.intercept_sigma);
        if let Some(j) = jac.as_deref_mut() {
            let rs = 2 * i * 7;
            let g = if d > 1e-12 { -k1 / (d * config.slope_sigma) } else { 0.0 };
            j[rs] = g * (pos.x - ap.x);
            j[rs + 1] = g * (pos.y - ap.y);
            j[rs + 2] = g * (pos.z - ap.z);
            j[rs + 5] = -1.0 / config.slope_sigma;
            let rb = rs + 7;
            let (dtheta_t, dtheta_p) = if denom < 1e-24 {
                (0.0, 0.0)
            } else {
                let uwt = o.pose.u().dot(wt);
                let vwt = o.pose.v().dot(wt);
                let uwp = o.pose.u().dot(wp);
                let vwp = o.pose.v().dot(wp);
                (
                    2.0 * (uw * vwt - vw * uwt) / denom,
                    2.0 * (uw * vwp - vw * uwp) / denom,
                )
            };
            j[rb + 3] = -dtheta_t / config.intercept_sigma;
            j[rb + 4] = -dtheta_p / config.intercept_sigma;
            j[rb + 6] = -1.0 / config.intercept_sigma;
        }
    }
}

/// The N sigma-normalized slope residuals at `p = (x, y, z, k_t)` and
/// their optional `N × 4` analytic Jacobian — the scalar pre-lane loop.
fn slope_residuals_and_jacobian_3d(
    observations: &[AntennaObservation],
    p: &[f64],
    config: &Solver3DConfig,
    r: &mut Vec<f64>,
    jac: Option<&mut Vec<f64>>,
) {
    let pos = Vec3::new(p[0], p[1], p[2]);
    let kt = p[3];
    r.clear();
    let mut jac = jac;
    if let Some(j) = jac.as_deref_mut() {
        j.clear();
        j.resize(observations.len() * 4, 0.0);
    }
    let k1 = propagation::slope_from_distance(1.0);
    for (i, o) in observations.iter().enumerate() {
        let ap = o.pose.position();
        let d = ap.distance(pos);
        r.push((o.slope - propagation::slope_from_distance(d) - kt) / config.slope_sigma);
        if let Some(j) = jac.as_deref_mut() {
            let g = if d > 1e-12 { -k1 / (d * config.slope_sigma) } else { 0.0 };
            j[i * 4] = g * (pos.x - ap.x);
            j[i * 4 + 1] = g * (pos.y - ap.y);
            j[i * 4 + 2] = g * (pos.z - ap.z);
            j[i * 4 + 3] = -1.0 / config.slope_sigma;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{extract_observation, ExtractConfig};
    use rfp_geom::Region2;
    use rfp_sim::{Motion, Scene, SimTag};

    fn region() -> Region2 {
        Scene::standard_2d().region()
    }

    #[test]
    fn reference_2d_recovers_noisy_truth() {
        let scene = Scene::standard_2d();
        let truth = Vec2::new(0.6, 1.3);
        let tag = SimTag::with_seeded_diversity(3)
            .with_motion(Motion::planar_static(truth, 0.5));
        let survey = scene.survey(&tag, 11);
        let obs: Vec<AntennaObservation> = scene
            .antenna_poses()
            .iter()
            .zip(&survey.per_antenna)
            .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).unwrap())
            .collect();
        let config = SolverConfig::default();
        let seeds = SolveSeeds::for_scene(region(), &config, &scene.antenna_poses());
        let mut ws = Reference2DWorkspace::default();
        let est = solve_2d_reference(&obs, &seeds, &config, &mut ws, None).unwrap();
        let err_cm = est.position.distance(truth) * 100.0;
        assert!(err_cm < 30.0, "error {err_cm} cm");
    }

    #[test]
    fn reference_3d_recovers_noisy_truth() {
        let scene = Scene::six_antenna_3d();
        let truth = Vec3::new(0.7, 1.1, 0.5);
        let dipole = Vec3::new(0.4, 0.6, 0.9).normalized();
        let tag = SimTag::nominal(1)
            .with_motion(Motion::Static { position: truth, dipole });
        let survey = scene.survey(&tag, 7);
        let obs: Vec<AntennaObservation> = scene
            .antenna_poses()
            .iter()
            .zip(&survey.per_antenna)
            .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).unwrap())
            .collect();
        let config = Solver3DConfig::default();
        let seeds = Solve3DSeeds::for_scene(
            scene.region(),
            (0.0, 1.0),
            &config,
            &scene.antenna_poses(),
        );
        let mut ws = Reference3DWorkspace::default();
        let est = solve_3d_reference(&obs, &seeds, &config, &mut ws, None).unwrap();
        assert!(est.position.distance(truth) < 0.35, "pos {}", est.position);
    }
}
