//! Property-based equivalence contract of the incremental sliding-window
//! front end (`StreamingWindow`) against the batch pipeline it shadows:
//!
//! * an **append-only** window (no expiry yet) extracts **bit-identically**
//!   to `preprocess_reads_with` + `robust_line_fit_with` on the same reads;
//! * after arbitrary update/downdate schedules, per-channel phases agree
//!   with a batch recompute over the retained reads to ≤ 1e-9 and the
//!   robust inlier mask is **identical**;
//! * whenever the window takes its full-recompute fallback, the extract is
//!   again **bit-identical** to batch.
//!
//! Schedules (round sizes, expiry depths, noise, π jumps) are randomized
//! by proptest; the oracle is the production batch front end itself.

use proptest::prelude::*;
use rfp_dsp::linfit::LineFit;
use rfp_dsp::preprocess::{preprocess_reads_with, ChannelObservation, RawRead};
use rfp_dsp::robust::{robust_line_fit_with, RobustSummary};
use rfp_dsp::workspace::FrontEndWorkspace;
use rfp_dsp::{StreamingConfig, StreamingWindow};
use rfp_geom::angle;

/// Splitmix-style generator so schedules need only one proptest seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [-1, 1).
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }
}

/// One synthetic hop round: `per_chan` reads on each of `chans` channels,
/// phases on a noisy wrapped line with deterministic π jumps.
fn round_reads(
    rng: &mut Rng,
    round: usize,
    chans: usize,
    per_chan: usize,
    slope: f64,
    noise: f64,
) -> Vec<RawRead> {
    let mut reads = Vec::new();
    for c in 0..chans {
        let freq = 902.0e6 + c as f64 * 0.5e6;
        for k in 0..per_chan {
            let mut phase = slope * (freq - 902.0e6) + 1.3 + noise * rng.unit();
            if (round + c * 7 + k).is_multiple_of(3) {
                phase += std::f64::consts::PI;
            }
            reads.push(RawRead {
                channel: c,
                frequency_hz: freq,
                phase: angle::wrap_tau(phase),
                rssi_dbm: -55.0 - c as f64 * 0.25,
                timestamp_s: round as f64 + (c * per_chan + k) as f64 * 1e-3,
                phase_code: None,
            });
        }
    }
    reads
}

/// Batch oracle over the retained reads in arrival order: the production
/// front end plus the production robust fit.
fn batch_oracle(
    reads: &[RawRead],
    config: &StreamingConfig,
) -> (Vec<ChannelObservation>, LineFit, RobustSummary, Vec<bool>) {
    let mut ws = FrontEndWorkspace::default();
    let mut channels = Vec::new();
    preprocess_reads_with(&mut ws, reads, &config.preprocess, &mut channels)
        .expect("oracle preprocess");
    let raw_fit = ws.raw_fit().expect("oracle raw fit");
    let (xs, ys, fit_ws) = ws.fit_columns();
    let robust = robust_line_fit_with(fit_ws, xs, ys, &config.robust).expect("oracle robust fit");
    let mask = ws.fit.inlier_mask().to_vec();
    (channels, raw_fit, robust, mask)
}

fn assert_bitwise(
    streamed: &[ChannelObservation],
    extract: &rfp_dsp::StreamExtract,
    mask: &[bool],
    oracle: &(Vec<ChannelObservation>, LineFit, RobustSummary, Vec<bool>),
    ctx: &str,
) {
    let (o_channels, o_raw, o_robust, o_mask) = oracle;
    assert_eq!(streamed.len(), o_channels.len(), "{ctx}: channel count");
    for (s, o) in streamed.iter().zip(o_channels) {
        assert_eq!(s.phase.to_bits(), o.phase.to_bits(), "{ctx}: phase ch {}", s.channel);
        assert_eq!(
            s.phase_spread.to_bits(),
            o.phase_spread.to_bits(),
            "{ctx}: spread ch {}",
            s.channel
        );
        assert_eq!(s.read_count, o.read_count, "{ctx}: read count ch {}", s.channel);
        assert_eq!(s.rssi_dbm.to_bits(), o.rssi_dbm.to_bits(), "{ctx}: rssi ch {}", s.channel);
    }
    assert_eq!(extract.raw_fit.slope.to_bits(), o_raw.slope.to_bits(), "{ctx}: raw slope");
    let robust = extract.robust.as_ref().expect("robust on");
    assert_eq!(robust.fit.slope.to_bits(), o_robust.fit.slope.to_bits(), "{ctx}: slope");
    assert_eq!(
        robust.fit.intercept.to_bits(),
        o_robust.fit.intercept.to_bits(),
        "{ctx}: intercept"
    );
    assert_eq!(mask, o_mask.as_slice(), "{ctx}: mask");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random arrival/expiry schedules: slide a window over `rounds`
    /// synthetic hop rounds keeping a random depth of history, comparing
    /// every advance against a batch recompute of the retained reads.
    #[test]
    fn sliding_schedules_track_batch(
        seed in 0u64..u64::MAX,
        rounds in 3usize..6,
        chans in 8usize..13,
        per_chan in 2usize..5,
        depth in 1usize..3,
        slope_m in -40.0f64..40.0,
        noise in 0.0f64..0.08,
    ) {
        let slope = slope_m * 1e-8; // rad/Hz over the ~5 MHz band
        let mut rng = Rng(seed);
        let config = StreamingConfig::default();
        let mut window = StreamingWindow::new(config);
        let mut retained: Vec<RawRead> = Vec::new();
        let mut channels = Vec::new();
        let mut expired_any = false;

        for r in 0..rounds {
            let reads = round_reads(&mut rng, r, chans, per_chan, slope, noise);
            for read in &reads {
                window.push(read);
            }
            retained.extend_from_slice(&reads);
            // Keep the last `depth` rounds (round r cutoff expires
            // everything older than r - depth + 1).
            let cutoff = (r as f64) - (depth as f64) + 1.0;
            let dropped = window.expire_before(cutoff);
            retained.retain(|rd| rd.timestamp_s >= cutoff);
            expired_any |= dropped > 0;

            let extract = window.extract_into(&mut channels).expect("stream extract");
            let oracle = batch_oracle(&retained, &config);

            if !expired_any || extract.fallback {
                // Append-only prefix and fallback advances are bitwise.
                assert_bitwise(&channels, &extract, window.inlier_mask(), &oracle,
                    &format!("round {r} (fallback={})", extract.fallback));
            } else {
                let (o_channels, _, o_robust, o_mask) = &oracle;
                prop_assert_eq!(channels.len(), o_channels.len());
                for (s, o) in channels.iter().zip(o_channels) {
                    prop_assert!(
                        (s.phase - o.phase).abs() < 1e-9,
                        "round {} ch {}: phase {} vs {}", r, s.channel, s.phase, o.phase
                    );
                    prop_assert_eq!(s.read_count, o.read_count);
                }
                let robust = extract.robust.as_ref().expect("robust on");
                prop_assert!((robust.fit.slope - o_robust.fit.slope).abs()
                    < 1e-9 * (1.0 + o_robust.fit.slope.abs()));
                prop_assert_eq!(window.inlier_mask(), o_mask.as_slice());
            }
        }

        let stats = window.stats();
        prop_assert_eq!(stats.updates as usize, rounds * chans * per_chan);
        prop_assert_eq!(stats.downdates > 0, rounds > depth);
    }

    /// A window that only ever grows is always on the exact batch path —
    /// every extract bitwise, zero downdates, zero fallbacks.
    #[test]
    fn append_only_is_always_bitwise(
        seed in 0u64..u64::MAX,
        rounds in 1usize..4,
        chans in 8usize..13,
        noise in 0.0f64..0.08,
    ) {
        let mut rng = Rng(seed);
        let config = StreamingConfig::default();
        let mut window = StreamingWindow::new(config);
        let mut all: Vec<RawRead> = Vec::new();
        let mut channels = Vec::new();
        for r in 0..rounds {
            let reads = round_reads(&mut rng, r, chans, 3, 2.0e-7, noise);
            for read in &reads {
                window.push(read);
            }
            all.extend_from_slice(&reads);
            let extract = window.extract_into(&mut channels).expect("stream extract");
            prop_assert!(!extract.fallback);
            let oracle = batch_oracle(&all, &config);
            assert_bitwise(&channels, &extract, window.inlier_mask(), &oracle,
                &format!("append-only round {r}"));
        }
        prop_assert_eq!(window.stats().downdates, 0);
        prop_assert_eq!(window.stats().refit_fallbacks, 0);
    }
}
