//! Fig. 20: overall identification accuracy of RF-Prism vs Tagtag across
//! the three setups of Figs. 17–19 in one summary table.
//!
//! Paper: 88.1/85.0, 88.0/80.7, 87.9/80.5 (%) — RF-Prism flat, Tagtag
//! drops once the distance varies and does not drop further under
//! rotation.

use rfp_bench::compare::{tagtag_comparison, TagtagSetup};
use rfp_bench::report;
use rfp_sim::Scene;

fn main() {
    report::header("Fig. 20", "overall accuracy summary: RF-Prism vs Tagtag");
    let scene = Scene::standard_2d();
    let reps = 24;
    let paper = [("88.1 %", "85.0 %"), ("88.0 %", "80.7 %"), ("87.9 %", "80.5 %")];
    let mut prism_acc = Vec::new();
    let mut tagtag_acc = Vec::new();
    for (i, setup_kind) in
        [TagtagSetup::Fixed, TagtagSetup::VaryDistance, TagtagSetup::VaryBoth]
            .into_iter()
            .enumerate()
    {
        let cmp = tagtag_comparison(&scene, setup_kind, reps);
        println!();
        report::section(setup_kind.label());
        report::row("RF-Prism", paper[i].0, &report::pct(cmp.prism.accuracy()));
        report::row("Tagtag", paper[i].1, &report::pct(cmp.tagtag.accuracy()));
        prism_acc.push(cmp.prism.accuracy());
        tagtag_acc.push(cmp.tagtag.accuracy());
    }

    // Shape: RF-Prism roughly flat across setups; Tagtag drops between
    // setup 1 and setup 2 and the drop does not widen much with rotation.
    let prism_spread = prism_acc.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - prism_acc.iter().cloned().fold(f64::INFINITY, f64::min);
    println!();
    report::row("RF-Prism spread across setups", "≤ 0.2 %", &report::pct(prism_spread));
    assert!(prism_spread < 0.15, "RF-Prism must be insensitive to the setup");
    assert!(
        tagtag_acc[1] < tagtag_acc[0],
        "distance variation must cost Tagtag ({tagtag_acc:?})"
    );
    assert!(
        prism_acc[1] > tagtag_acc[1] && prism_acc[2] > tagtag_acc[2],
        "RF-Prism must win under varying factors"
    );
}
