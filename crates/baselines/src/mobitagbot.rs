//! MobiTagbot-style channel-hopping hologram localization.
//!
//! MobiTagbot localizes a tag by testing candidate positions against the
//! phases observed on every channel: at the true position the measured
//! phase minus the predicted propagation phase is constant across channels
//! and antennas, so the coherent sum `Σ cos(θ_meas − θ_pred)` peaks. Like
//! the original (and unlike RF-Prism) the hypothesis includes **only** the
//! propagation term plus the tag's one-time bare-tag device calibration:
//!
//! ```text
//! θ_pred(A_i, f_j) = 4π·dist(A_i, x)·f_j / c + θ_device0(f_j)
//! ```
//!
//! Orientation and attached-material terms are unmodelled; they shift the
//! measured phases per antenna / tilt them per channel, which drags the
//! hologram peak away from the truth — the effect the paper quantifies in
//! Figs. 14–16.

use rfp_core::model::{extract_observation, AntennaObservation, ExtractConfig, ExtractError};
use rfp_dsp::preprocess::RawRead;
use rfp_geom::{angle, AntennaPose, Region2, Vec2};
use rfp_phys::propagation;
use std::collections::BTreeMap;

/// Configuration of the hologram search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobiTagbotConfig {
    /// Coarse grid step, metres.
    pub coarse_step: f64,
    /// Number of refinement rounds (each shrinks the step 5×).
    pub refinement_rounds: usize,
}

impl Default for MobiTagbotConfig {
    fn default() -> Self {
        MobiTagbotConfig { coarse_step: 0.05, refinement_rounds: 2 }
    }
}

/// Errors from [`MobiTagbot::localize`].
#[derive(Debug, Clone, PartialEq)]
pub enum MobiTagbotError {
    /// Observation extraction failed on too many antennas.
    TooFewObservations {
        /// Usable antennas.
        usable: usize,
        /// First extraction failure, if any.
        first_error: Option<ExtractError>,
    },
}

impl std::fmt::Display for MobiTagbotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MobiTagbotError::TooFewObservations { usable, .. } => {
                write!(f, "only {usable} usable antennas; hologram needs at least 2")
            }
        }
    }
}

impl std::error::Error for MobiTagbotError {}

/// MobiTagbot's one-time in-situ calibration: the per-antenna, per-channel
/// phase offset left after removing propagation at a *known* reference
/// position. Crucially, this bakes in whatever orientation/device/material
/// state the tag had during calibration — MobiTagbot has no model to
/// separate them, which is exactly the limitation the paper exploits.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MobiTagbotCalibration {
    /// `offsets[antenna][channel] = wrapped residual phase`.
    offsets: Vec<BTreeMap<usize, f64>>,
}

/// The MobiTagbot baseline localizer.
#[derive(Debug, Clone)]
pub struct MobiTagbot {
    poses: Vec<AntennaPose>,
    region: Region2,
    calibration: Option<MobiTagbotCalibration>,
    config: MobiTagbotConfig,
}

impl MobiTagbot {
    /// Creates a hologram localizer for antennas at `poses` searching over
    /// `region`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 poses are supplied (the original system used
    /// two antennas).
    pub fn new(poses: Vec<AntennaPose>, region: Region2) -> Self {
        assert!(poses.len() >= 2, "MobiTagbot needs at least two antennas");
        MobiTagbot { poses, region, calibration: None, config: MobiTagbotConfig::default() }
    }

    /// Performs the one-time in-situ calibration from a hop round taken
    /// with the tag at `known_position` (in whatever orientation/material
    /// state it happens to have — MobiTagbot cannot tell).
    ///
    /// # Errors
    ///
    /// [`MobiTagbotError::TooFewObservations`] if fewer than 2 antennas
    /// yield observations.
    ///
    /// # Panics
    ///
    /// Panics if `reads_per_antenna.len()` differs from the pose count.
    pub fn calibrate(
        &self,
        reads_per_antenna: &[Vec<RawRead>],
        known_position: Vec2,
    ) -> Result<MobiTagbotCalibration, MobiTagbotError> {
        assert_eq!(
            reads_per_antenna.len(),
            self.poses.len(),
            "one read group per antenna"
        );
        let mut offsets = Vec::with_capacity(self.poses.len());
        let mut usable = 0usize;
        let mut first_error = None;
        for (pose, reads) in self.poses.iter().zip(reads_per_antenna) {
            let mut map = BTreeMap::new();
            match extract_observation(*pose, reads, &ExtractConfig::paper()) {
                Ok(obs) => {
                    usable += 1;
                    let d = pose.position().distance(known_position.with_z(0.0));
                    for c in &obs.channels {
                        let off = c.phase - propagation::phase(d, c.frequency_hz);
                        map.insert(c.channel, angle::wrap_tau(off));
                    }
                }
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
            offsets.push(map);
        }
        if usable < 2 {
            return Err(MobiTagbotError::TooFewObservations { usable, first_error });
        }
        Ok(MobiTagbotCalibration { offsets })
    }

    /// Supplies a previously collected calibration (standard practice;
    /// without it even the fixed-everything case is biased by the device
    /// and orientation terms).
    pub fn with_calibration(mut self, calibration: MobiTagbotCalibration) -> Self {
        self.calibration = Some(calibration);
        self
    }

    /// Overrides the search configuration.
    pub fn with_config(mut self, config: MobiTagbotConfig) -> Self {
        self.config = config;
        self
    }

    /// Localizes a tag from one hop round of raw reads.
    ///
    /// # Errors
    ///
    /// [`MobiTagbotError::TooFewObservations`] when fewer than 2 antennas
    /// yield usable observations.
    ///
    /// # Panics
    ///
    /// Panics if `reads_per_antenna.len()` differs from the pose count.
    pub fn localize(
        &self,
        reads_per_antenna: &[Vec<RawRead>],
    ) -> Result<Vec2, MobiTagbotError> {
        assert_eq!(
            reads_per_antenna.len(),
            self.poses.len(),
            "one read group per antenna"
        );
        let mut observations = Vec::new();
        let mut first_error = None;
        for (pose, reads) in self.poses.iter().zip(reads_per_antenna) {
            match extract_observation(*pose, reads, &ExtractConfig::paper()) {
                Ok(o) => observations.push(o),
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        if observations.len() < 2 {
            return Err(MobiTagbotError::TooFewObservations {
                usable: observations.len(),
                first_error,
            });
        }

        // Coarse-to-fine hologram search.
        let mut best = self.region.center();
        let mut step = self.config.coarse_step;
        let mut lo = self.region.min();
        let mut hi = self.region.max();
        for round in 0..=self.config.refinement_rounds {
            let nx = ((hi.x - lo.x) / step).ceil() as usize + 1;
            let ny = ((hi.y - lo.y) / step).ceil() as usize + 1;
            let mut best_score = f64::NEG_INFINITY;
            for iy in 0..ny {
                for ix in 0..nx {
                    let cand = Vec2::new(lo.x + ix as f64 * step, lo.y + iy as f64 * step);
                    let s = self.score(&observations, cand);
                    if s > best_score {
                        best_score = s;
                        best = cand;
                    }
                }
            }
            // Shrink the window around the winner for the next round.
            let half = step * 2.0;
            lo = Vec2::new(best.x - half, best.y - half);
            hi = Vec2::new(best.x + half, best.y + half);
            step /= 5.0;
            let _ = round;
        }
        Ok(best)
    }

    /// Hologram coherence of a candidate position.
    fn score(&self, observations: &[AntennaObservation], candidate: Vec2) -> f64 {
        let mut s = 0.0;
        for (ai, obs) in observations.iter().enumerate() {
            let d = obs.pose.position().distance(candidate.with_z(0.0));
            for (c, &inlier) in obs.channels.iter().zip(&obs.channel_inliers) {
                if !inlier {
                    continue;
                }
                let offset = self
                    .calibration
                    .as_ref()
                    .and_then(|cal| cal.offsets.get(ai))
                    .and_then(|m| m.get(&c.channel).copied())
                    .unwrap_or(0.0);
                let predicted = propagation::phase(d, c.frequency_hz) + offset;
                s += (c.phase - predicted).cos();
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_phys::Material;
    use rfp_sim::{Motion, NoiseModel, ReaderConfig, Scene, SimTag};

    fn calibration_for(
        scene: &Scene,
        tag: &SimTag,
        mtb: &MobiTagbot,
        seed: u64,
    ) -> MobiTagbotCalibration {
        let pos = Vec2::new(0.5, 1.0);
        let bare = tag.with_motion(Motion::planar_static(pos, 0.0));
        let survey = scene.survey(&bare, seed);
        mtb.calibrate(&survey.per_antenna, pos).unwrap()
    }

    #[test]
    fn localizes_fixed_everything_accurately() {
        // Fig. 14 regime: fixed orientation + plastic carrier — MobiTagbot
        // should be in RF-Prism's ballpark.
        let scene = Scene::standard_2d()
            .with_noise(NoiseModel::clean())
            .with_reader(ReaderConfig::ideal());
        let tag = SimTag::nominal(1);
        let mtb0 = MobiTagbot::new(scene.antenna_poses(), scene.region());
        let cal = calibration_for(&scene, &tag, &mtb0, 1);
        let truth = Vec2::new(0.6, 1.7);
        let placed = tag.with_motion(Motion::planar_static(truth, 0.0));
        let survey = scene.survey(&placed, 2);
        let mtb = mtb0.with_calibration(cal);
        let est = mtb.localize(&survey.per_antenna).unwrap();
        let err_cm = est.distance(truth) * 100.0;
        assert!(err_cm < 20.0, "error {err_cm} cm");
    }

    #[test]
    fn material_change_biases_hologram() {
        // Fig. 16 regime: attaching a strongly-loading material without
        // re-calibration must hurt MobiTagbot badly.
        let scene = Scene::standard_2d()
            .with_noise(NoiseModel::clean())
            .with_reader(ReaderConfig::ideal());
        // Calibrated in the same state the paper's main experiments use —
        // tag on its plastic carrier.
        let tag = SimTag::nominal(1).attached_to(Material::Plastic);
        let mtb0 = MobiTagbot::new(scene.antenna_poses(), scene.region());
        let cal = calibration_for(&scene, &tag, &mtb0, 3);
        let truth = Vec2::new(0.6, 1.7);
        let mtb = mtb0.with_calibration(cal);

        let plastic = tag.with_motion(Motion::planar_static(truth, 0.0));
        let water = tag
            .attached_to(Material::Water)
            .with_motion(Motion::planar_static(truth, 0.0));
        let err = |t: &SimTag, seed| {
            let survey = scene.survey(t, seed);
            mtb.localize(&survey.per_antenna).unwrap().distance(truth) * 100.0
        };
        let e_plastic = err(&plastic, 4);
        let e_water = err(&water, 5);
        assert!(
            e_water > e_plastic + 5.0,
            "water {e_water} cm should be much worse than plastic {e_plastic} cm"
        );
        assert!(e_water > 15.0, "water error {e_water} cm");
    }

    #[test]
    fn too_few_antennas_error() {
        let scene = Scene::standard_2d();
        let mtb = MobiTagbot::new(scene.antenna_poses(), scene.region());
        let err = mtb
            .localize(&[Vec::new(), Vec::new(), Vec::new()])
            .unwrap_err();
        assert!(matches!(err, MobiTagbotError::TooFewObservations { usable: 0, .. }));
    }

    #[test]
    #[should_panic]
    fn single_antenna_panics() {
        let scene = Scene::standard_2d();
        let _ = MobiTagbot::new(scene.antenna_poses()[..1].to_vec(), scene.region());
    }
}
