//! Steady-state allocation contract of the LM linear-algebra kernel
//! (DESIGN.md §6): once an [`LmWorkspace`]'s buffers have been sized by a
//! first solve, further solves against that workspace perform **zero**
//! heap allocations — the normal equations, factorization, step and trial
//! point all live in flat caller-owned buffers.
//!
//! Measured with a counting `#[global_allocator]`; this lives in an
//! integration test because the library itself forbids `unsafe` (tests
//! are a separate crate, so the crate-level `forbid` does not apply).

use rfp_core::model::{extract_observation, AntennaObservation, ExtractConfig};
use rfp_dsp::preprocess::{preprocess_reads_with, PreprocessConfig};
use rfp_dsp::{FrontEndWorkspace, TrigProvider};
use rfp_core::solver::{
    levenberg_marquardt_analytic_with, levenberg_marquardt_with, residuals_2d,
    residuals_and_jacobian_2d, LmWorkspace, SolverConfig,
};
use rfp_core::{RfPrism, SenseWorkspace, WarmStart};
use rfp_geom::Vec2;
use rfp_sim::{Motion, Scene, SimTag};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Pass-through allocator that counts alloc/realloc events while armed.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Counts heap allocations performed by `f`.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (R, u64) {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let out = f();
    ARMED.store(false, Ordering::SeqCst);
    (out, ALLOCATIONS.load(Ordering::SeqCst))
}

/// Real solver observations so the kernels run against the production
/// residual/Jacobian closures, not a toy model.
fn scene_observations() -> (Vec<AntennaObservation>, SolverConfig) {
    let scene = Scene::standard_2d();
    let tag = SimTag::with_seeded_diversity(9)
        .with_motion(Motion::planar_static(Vec2::new(0.5, 1.5), 0.8));
    let survey = scene.survey(&tag, 17);
    let obs = scene
        .antenna_poses()
        .iter()
        .zip(&survey.per_antenna)
        .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).expect("usable"))
        .collect();
    (obs, SolverConfig::default())
}

const P0: [f64; 5] = [0.4, 1.4, 0.6, 5.0e-9, 1.0];

#[test]
fn analytic_core_is_allocation_free_in_steady_state() {
    let (obs, config) = scene_observations();
    let resjac = |p: &[f64], r: &mut Vec<f64>, jac: Option<&mut Vec<f64>>| {
        residuals_and_jacobian_2d(&obs, p, &config, r, jac);
    };
    let mut ws = LmWorkspace::default();
    // First solve sizes every buffer.
    levenberg_marquardt_analytic_with(&mut ws, &resjac, P0.to_vec(), 60, 1e-12);
    // The parameter vector is handed in from outside the window; the core
    // itself must not touch the heap again.
    let p = P0.to_vec();
    let ((_, cost), allocs) = allocations_during(|| {
        levenberg_marquardt_analytic_with(&mut ws, &resjac, p, 60, 1e-12)
    });
    assert!(cost.is_finite());
    assert_eq!(allocs, 0, "analytic LM core allocated {allocs} times in steady state");
}

#[test]
fn numeric_core_is_allocation_free_in_steady_state() {
    let (obs, config) = scene_observations();
    let residual =
        |p: &[f64], out: &mut Vec<f64>| residuals_2d(&obs, p, &config, out);
    let steps = [1e-4, 1e-4, 1e-4, 1e-12, 1e-4];
    let mut ws = LmWorkspace::default();
    levenberg_marquardt_with(&mut ws, &residual, P0.to_vec(), &steps, 60, 1e-12);
    let p = P0.to_vec();
    let ((_, cost), allocs) = allocations_during(|| {
        levenberg_marquardt_with(&mut ws, &residual, p, &steps, 60, 1e-12)
    });
    assert!(cost.is_finite());
    assert_eq!(allocs, 0, "numeric LM core allocated {allocs} times in steady state");
}

/// The full `sense()` pipeline — preprocessing, line fits, mobility
/// assessment, the multi-start solve and uncertainty propagation — is
/// allocation-free in steady state when driven through
/// [`RfPrism::sense_reusing`] with results recycled back into the
/// [`SenseWorkspace`] pools.
#[test]
fn full_sense_is_allocation_free_in_steady_state() {
    let scene = Scene::standard_2d();
    let tag = SimTag::with_seeded_diversity(9)
        .with_motion(Motion::planar_static(Vec2::new(0.5, 1.5), 0.8));
    let survey = scene.survey(&tag, 17);
    let prism =
        RfPrism::new(scene.antenna_poses(), scene.reader().plan).with_region(scene.region());
    let cache = prism.batch_cache();
    let mut ws = SenseWorkspace::default();

    // Warm-up passes size every pool: front-end columns, observation
    // slots, solver candidate vectors, uncertainty scratch.
    for _ in 0..3 {
        let r = prism
            .sense_reusing(&cache, &survey.per_antenna, None, &mut ws)
            .expect("usable window");
        ws.recycle(r);
    }

    let (result, allocs) =
        allocations_during(|| prism.sense_reusing(&cache, &survey.per_antenna, None, &mut ws));
    let result = result.expect("usable window");
    assert!(result.estimate.position.distance(Vec2::new(0.5, 1.5)) < 0.5);
    assert_eq!(allocs, 0, "full sense() allocated {allocs} times in steady state");
    ws.recycle(result);

    // The warm-start fast path must hold the same contract (it is the
    // tracking loop's steady state).
    let warm = WarmStart {
        position: Vec2::new(0.5, 1.5),
        orientation: 0.8,
        kt: 0.0,
        bt: 0.0,
    };
    for _ in 0..3 {
        let r = prism
            .sense_reusing(&cache, &survey.per_antenna, Some(&warm), &mut ws)
            .expect("usable window");
        ws.recycle(r);
    }
    let (result, allocs) = allocations_during(|| {
        prism.sense_reusing(&cache, &survey.per_antenna, Some(&warm), &mut ws)
    });
    let result = result.expect("usable window");
    assert_eq!(allocs, 0, "warm sense() allocated {allocs} times in steady state");
    ws.recycle(result);
}

/// One full streaming advance — pushing a round of reads into the
/// per-antenna sliding windows, expiring the old round, the incremental
/// extracts, mobility assessment and the warm-started solve — allocates
/// nothing once the session pools are sized, as long as results are
/// recycled.
///
/// Clean noise keeps the per-round read counts constant so the steady
/// state is exact; with dropouts the per-channel FIFOs still amortize
/// (a reallocation only when a channel exceeds its high-water mark).
#[test]
fn streaming_advance_is_allocation_free_in_steady_state() {
    let scene = Scene::standard_2d().with_noise(rfp_sim::NoiseModel::clean());
    let tag = SimTag::with_seeded_diversity(9)
        .with_motion(Motion::planar_static(Vec2::new(0.5, 1.5), 0.8));
    let rounds = rfp_sim::stream_rounds(&scene, &tag, 6, 17);
    let prism =
        RfPrism::new(scene.antenna_poses(), scene.reader().plan).with_region(scene.region());
    let mut session = prism.sense_streaming(scene.reader().round_duration_s());

    // Warm-up advances size the window FIFOs (including the transient
    // two-rounds-deep state between push and expiry), observation slots
    // and solver pools.
    for round in &rounds[..5] {
        for (antenna, reads) in round.per_antenna.iter().enumerate() {
            for read in reads {
                session.push(antenna, read);
            }
        }
        let r = session.advance(round.end_time_s).expect("usable window");
        session.recycle(r);
    }

    let round = &rounds[5];
    let (result, allocs) = allocations_during(|| {
        for (antenna, reads) in round.per_antenna.iter().enumerate() {
            for read in reads {
                session.push(antenna, read);
            }
        }
        session.advance(round.end_time_s)
    });
    let result = result.expect("usable window");
    assert!(result.estimate.position.distance(Vec2::new(0.5, 1.5)) < 0.5);
    assert_eq!(allocs, 0, "streaming advance allocated {allocs} times in steady state");
    session.recycle(result);
}

/// The allocation contract survives instrumentation: with the `obs`
/// probes live — a recorder installed, latency histograms timing every
/// advance, counters draining per window, the journal ticking — the
/// steady-state streaming advance still touches the heap zero times.
/// This pins the "continuous telemetry is free" claim: histograms are
/// fixed-bucket arrays, the journal is a preallocated ring, and span
/// nodes are reused after the first pass.
#[test]
#[cfg(feature = "obs")]
fn streaming_advance_with_obs_is_allocation_free_in_steady_state() {
    let scene = Scene::standard_2d().with_noise(rfp_sim::NoiseModel::clean());
    let tag = SimTag::with_seeded_diversity(9)
        .with_motion(Motion::planar_static(Vec2::new(0.5, 1.5), 0.8));
    let rounds = rfp_sim::stream_rounds(&scene, &tag, 6, 17);
    let prism =
        RfPrism::new(scene.antenna_poses(), scene.reader().plan).with_region(scene.region());

    let ((), _rec) = rfp_obs::recorder::observe(rfp_core::obs::METRICS, || {
        let mut session = prism.sense_streaming(scene.reader().round_duration_s());
        for round in &rounds[..5] {
            for (antenna, reads) in round.per_antenna.iter().enumerate() {
                for read in reads {
                    session.push(antenna, read);
                }
            }
            let r = session.advance(round.end_time_s).expect("usable window");
            session.recycle(r);
        }

        let round = &rounds[5];
        let (result, allocs) = allocations_during(|| {
            for (antenna, reads) in round.per_antenna.iter().enumerate() {
                for read in reads {
                    session.push(antenna, read);
                }
            }
            session.advance(round.end_time_s)
        });
        let result = result.expect("usable window");
        assert_eq!(
            allocs, 0,
            "instrumented streaming advance allocated {allocs} times in steady state"
        );
        session.recycle(result);
    });
}

/// The lane-parallel facades hold the same contract as the old twin
/// solvers: once a [`rfp_core::solver::SolverWorkspace`]'s pools are
/// sized by a first pass, a full **cold** multi-seed solve — coarse
/// 4-wide seed ranking over the geometry tables, α scan, LM refinement
/// in 4-wide row lanes, uncertainty propagation — runs with zero heap
/// allocations, and so does the warm-start fast path.
#[test]
fn lane_solve_2d_is_allocation_free_cold_and_warm() {
    let scene = Scene::standard_2d();
    let tag = SimTag::with_seeded_diversity(9)
        .with_motion(Motion::planar_static(Vec2::new(0.5, 1.5), 0.8));
    let survey = scene.survey(&tag, 17);
    let obs: Vec<AntennaObservation> = scene
        .antenna_poses()
        .iter()
        .zip(&survey.per_antenna)
        .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).expect("usable"))
        .collect();
    let config = SolverConfig::default();
    let seeds =
        rfp_core::solver::SolveSeeds::for_scene(scene.region(), &config, &scene.antenna_poses());
    let mut ws = rfp_core::solver::SolverWorkspace::default();

    // Sizing pass.
    rfp_core::solver::solve_2d_seeded_warm(&obs, &seeds, &config, &mut ws, None)
        .expect("solvable");

    let (cold, allocs) = allocations_during(|| {
        rfp_core::solver::solve_2d_seeded_warm(&obs, &seeds, &config, &mut ws, None)
    });
    let cold = cold.expect("solvable");
    assert_eq!(allocs, 0, "cold 2-D lane solve allocated {allocs} times in steady state");

    let warm = WarmStart::from_estimate(&cold);
    rfp_core::solver::solve_2d_seeded_warm(&obs, &seeds, &config, &mut ws, Some(&warm))
        .expect("solvable");
    let (result, allocs) = allocations_during(|| {
        rfp_core::solver::solve_2d_seeded_warm(&obs, &seeds, &config, &mut ws, Some(&warm))
    });
    result.expect("solvable");
    assert_eq!(allocs, 0, "warm 2-D lane solve allocated {allocs} times in steady state");
}

/// The tuned backends hold the same contract: the cached step solver's
/// per-iteration factor lives in fixed-size arrays inside the core, and
/// the lane-padded eval gathers into stack arrays — so a `Cached` +
/// `Padded4` solve is zero-alloc cold and warm once the workspace pools
/// are sized, exactly like the bit-identity default.
#[test]
fn cached_padded_solve_2d_is_allocation_free_cold_and_warm() {
    let scene = Scene::standard_2d();
    let tag = SimTag::with_seeded_diversity(9)
        .with_motion(Motion::planar_static(Vec2::new(0.5, 1.5), 0.8));
    let survey = scene.survey(&tag, 17);
    let obs: Vec<AntennaObservation> = scene
        .antenna_poses()
        .iter()
        .zip(&survey.per_antenna)
        .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).expect("usable"))
        .collect();
    let config = SolverConfig {
        step_solver: rfp_core::StepSolver::Cached,
        lane_mode: rfp_core::LaneMode::Padded4,
        ..SolverConfig::default()
    };
    let seeds =
        rfp_core::solver::SolveSeeds::for_scene(scene.region(), &config, &scene.antenna_poses());
    let mut ws = rfp_core::solver::SolverWorkspace::default();

    // Sizing pass.
    rfp_core::solver::solve_2d_seeded_warm(&obs, &seeds, &config, &mut ws, None)
        .expect("solvable");

    let (cold, allocs) = allocations_during(|| {
        rfp_core::solver::solve_2d_seeded_warm(&obs, &seeds, &config, &mut ws, None)
    });
    let cold = cold.expect("solvable");
    assert_eq!(allocs, 0, "cold cached+padded solve allocated {allocs} times in steady state");

    let warm = WarmStart::from_estimate(&cold);
    rfp_core::solver::solve_2d_seeded_warm(&obs, &seeds, &config, &mut ws, Some(&warm))
        .expect("solvable");
    let (result, allocs) = allocations_during(|| {
        rfp_core::solver::solve_2d_seeded_warm(&obs, &seeds, &config, &mut ws, Some(&warm))
    });
    result.expect("solvable");
    assert_eq!(allocs, 0, "warm cached+padded solve allocated {allocs} times in steady state");
}

/// Same contract for the 7-parameter 3-D facade (`LmCore<7>`): cold
/// dipole-ranked scans and warm re-solves are zero-alloc once the
/// [`rfp_core::solver3d::Solver3DWorkspace`] pools are sized.
#[test]
fn lane_solve_3d_is_allocation_free_cold_and_warm() {
    use rfp_core::solver3d::{
        solve_3d_seeded_warm, Solve3DSeeds, Solver3DConfig, Solver3DWorkspace, WarmStart3D,
    };
    let scene = Scene::six_antenna_3d();
    let tag = SimTag::nominal(1).with_motion(Motion::Static {
        position: rfp_geom::Vec3::new(0.7, 1.1, 0.5),
        dipole: rfp_geom::Vec3::new(0.4, 0.6, 0.9).normalized(),
    });
    let survey = scene.survey(&tag, 21);
    let obs: Vec<AntennaObservation> = scene
        .antenna_poses()
        .iter()
        .zip(&survey.per_antenna)
        .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).expect("usable"))
        .collect();
    let config = Solver3DConfig::default();
    let seeds =
        Solve3DSeeds::for_scene(scene.region(), (0.0, 1.0), &config, &scene.antenna_poses());
    let mut ws = Solver3DWorkspace::default();

    solve_3d_seeded_warm(&obs, &seeds, &config, &mut ws, None).expect("solvable");
    let (cold, allocs) =
        allocations_during(|| solve_3d_seeded_warm(&obs, &seeds, &config, &mut ws, None));
    let cold = cold.expect("solvable");
    assert_eq!(allocs, 0, "cold 3-D lane solve allocated {allocs} times in steady state");

    let warm = WarmStart3D::from_estimate(&cold);
    solve_3d_seeded_warm(&obs, &seeds, &config, &mut ws, Some(&warm)).expect("solvable");
    let (result, allocs) = allocations_during(|| {
        solve_3d_seeded_warm(&obs, &seeds, &config, &mut ws, Some(&warm))
    });
    result.expect("solvable");
    assert_eq!(allocs, 0, "warm 3-D lane solve allocated {allocs} times in steady state");
}

/// The quantized-code trig tables live inline in a static (`OnceLock`
/// with in-place storage): building them touches the heap zero times, so
/// "construction is one-time" holds trivially — there is nothing to free
/// or grow afterwards either.
#[test]
fn trig_table_construction_never_allocates() {
    let ((), allocs) = allocations_during(rfp_dsp::trig::warm_tables);
    assert_eq!(allocs, 0, "table build allocated {allocs} times");
}

/// Steady-state allocation contract of the new trig backends: after a
/// sizing pass, `preprocess_reads_with` is zero-alloc through the table
/// path (quantized, code-carrying reads) exactly as it is through libm.
#[test]
fn table_preprocess_is_allocation_free_in_steady_state() {
    assert_preprocess_steady_state_zero_alloc(Scene::standard_2d(), TrigProvider::Table);
}

/// ... and through the polynomial path (continuous, codeless reads).
#[test]
fn polynomial_preprocess_is_allocation_free_in_steady_state() {
    let scene = Scene::standard_2d().with_reader(rfp_sim::ReaderConfig::ideal());
    assert_preprocess_steady_state_zero_alloc(scene, TrigProvider::Polynomial);
}

fn assert_preprocess_steady_state_zero_alloc(scene: Scene, trig: TrigProvider) {
    let tag = SimTag::with_seeded_diversity(9)
        .with_motion(Motion::planar_static(Vec2::new(0.5, 1.5), 0.8));
    let survey = scene.survey(&tag, 17);
    let reads = &survey.per_antenna[0];
    let config = PreprocessConfig { trig, ..Default::default() };
    let mut ws = FrontEndWorkspace::default();
    let mut out = Vec::new();
    // Sizing passes: workspace columns, output buffer, trig tables.
    for _ in 0..2 {
        preprocess_reads_with(&mut ws, reads, &config, &mut out).expect("usable window");
    }
    let (result, allocs) =
        allocations_during(|| preprocess_reads_with(&mut ws, reads, &config, &mut out));
    result.expect("usable window");
    assert!(!out.is_empty());
    assert_eq!(
        allocs, 0,
        "{trig:?} preprocess allocated {allocs} times in steady state"
    );
}
