//! Streaming sensing sessions: the incremental sliding-window pipeline.
//!
//! A [`StreamingSession`] couples one [`rfp_dsp::StreamingWindow`]
//! per antenna to the warm-started joint solver and the [`TagTracker`].
//! Reads are [`push`](StreamingSession::push)ed as they arrive; each
//! [`advance`](StreamingSession::advance) expires reads older than the
//! window span, re-extracts each antenna's line fit from the *incremental*
//! per-channel accumulators (O(new + expired reads) instead of a batch
//! recompute), and feeds the result through the mobility detector into
//! [`crate::solver::solve_2d_tracking_warm`] (an [`LmCore<5>`](crate::LmCore)
//! lane-core facade, so warm streaming solves stay allocation-free),
//! warm-started from the tracker's extrapolated position with a
//! periodically re-anchored warm-gate floor. Whenever a downdate would lose precision (decision-margin
//! hazard, inlier-mask flip) the window falls back to a full recompute that
//! is bit-identical to the batch path — so streaming never changes
//! results, only cost.
//!
//! ```
//! use rfp_geom::Vec2;
//! use rfp_sim::{Motion, Scene, SimTag};
//!
//! let scene = Scene::standard_2d();
//! let tag = SimTag::with_seeded_diversity(7)
//!     .with_motion(Motion::planar_static(Vec2::new(0.4, 1.3), 0.6));
//! let rounds = rfp_sim::stream_rounds(&scene, &tag, 3, 11);
//! let span = scene.reader().round_duration_s();
//!
//! let prism = rfp_core::RfPrism::new(scene.antenna_poses(), scene.reader().plan)
//!     .with_region(scene.region());
//! let mut session = prism.sense_streaming(span);
//! let mut last = None;
//! for round in &rounds {
//!     for (antenna, reads) in round.per_antenna.iter().enumerate() {
//!         for read in reads {
//!             session.push(antenna, read);
//!         }
//!     }
//!     let result = session.advance(round.end_time_s)?;
//!     last = Some(result.estimate.position);
//!     session.recycle(result);
//! }
//! let err_cm = last.unwrap().distance(Vec2::new(0.4, 1.3)) * 100.0;
//! assert!(err_cm < 40.0, "streaming localization error {err_cm} cm");
//! # Ok::<(), rfp_core::SenseError>(())
//! ```

use crate::detector::{assess, MobilityVerdict};
use crate::model::{finish_observation, AntennaObservation, ExtractError};
use crate::obs;
use crate::obs::id::{
    FRONTEND_CHANNELS, FRONTEND_READS, FRONTEND_TRIG_LIBM_READS, FRONTEND_TRIG_POLY_READS,
    FRONTEND_TRIG_RECURRENCE_READS, FRONTEND_TRIG_TABLE_READS, FRONTEND_WINDOWS,
    STREAMING_DOWNDATES, STREAMING_DRIFT_OPS, STREAMING_REBUILDS, STREAMING_REFIT_FALLBACKS,
    STREAMING_UPDATES,
};
use crate::pipeline::{RfPrism, SenseError, SenseWorkspace, SensingResult};
use crate::solver::{solve_2d_tracking_warm, SolveSeeds, WarmGate, WarmStart};
use crate::tracking::{TagTracker, TrackerConfig};
use rfp_dsp::preprocess::RawRead;
use rfp_dsp::streaming::{StreamingConfig, StreamingError, StreamingStats, StreamingWindow};
use rfp_geom::AntennaPose;

/// A long-lived incremental sensing session over one tag.
///
/// Created by [`RfPrism::sense_streaming`]; owns one sliding window per
/// antenna, the solver scratch space, the warm-start state and a
/// [`TagTracker`]. All steady-state allocations happen in the first few
/// advances; afterwards [`push`](Self::push)/[`advance`](Self::advance)
/// are allocation-free as long as results are returned via
/// [`recycle`](Self::recycle).
pub struct StreamingSession<'a> {
    prism: &'a RfPrism,
    seeds: SolveSeeds,
    windows: Vec<StreamingWindow>,
    workspace: SenseWorkspace,
    tracker: TagTracker,
    window_span_s: f64,
    warm_ttl_s: f64,
    warm: Option<WarmStart>,
    /// Cached warm-gate floor, re-anchored periodically (tracking solves
    /// of a slowly sliding window share one coarse-scan floor).
    gate: WarmGate,
    stats: StreamingStats,
    fallbacks_window: u64,
    /// Advances taken so far — the session's deterministic telemetry
    /// clock (journal events are stamped with it, not wall time).
    advances: u64,
}

impl RfPrism {
    /// Opens a streaming sensing session: reads pushed via
    /// [`StreamingSession::push`] slide through a window of `window_span_s`
    /// seconds per antenna, and every [`StreamingSession::advance`] pays
    /// only for the reads that arrived or expired since the previous one.
    ///
    /// The per-window front-end configuration (π-jump handling, robust fit,
    /// trig backend) mirrors this prism's [`ExtractConfig`]
    /// (`config().extract`), so a streaming extract agrees with the batch
    /// [`sense`](RfPrism::sense) on the same retained reads.
    ///
    /// [`ExtractConfig`]: crate::model::ExtractConfig
    pub fn sense_streaming(&self, window_span_s: f64) -> StreamingSession<'_> {
        let extract = &self.config().extract;
        let window_config = StreamingConfig {
            preprocess: extract.preprocess,
            robust: extract.robust,
            suppress_multipath: extract.suppress_multipath,
            ..StreamingConfig::default()
        };
        StreamingSession {
            seeds: self.solve_seeds(),
            windows: self
                .poses()
                .iter()
                .map(|_| StreamingWindow::new(window_config))
                .collect(),
            workspace: SenseWorkspace::default(),
            tracker: TagTracker::new(TrackerConfig::default()),
            window_span_s,
            // Hold the kinematic state over a few missed/rejected windows,
            // then re-acquire from scratch rather than extrapolate stale
            // velocity across a long gap.
            warm_ttl_s: 5.0 * window_span_s,
            warm: None,
            gate: WarmGate::default(),
            stats: StreamingStats::default(),
            fallbacks_window: 0,
            advances: 0,
            prism: self,
        }
    }
}

impl<'a> StreamingSession<'a> {
    /// Appends one read to `antenna`'s sliding window (O(1), no trig on
    /// later advances: phasors are computed once here).
    ///
    /// # Panics
    ///
    /// If `antenna` is out of range for the prism's pose list.
    pub fn push(&mut self, antenna: usize, read: &RawRead) {
        self.windows[antenna].push(read);
    }

    /// The sliding-window span in seconds; reads older than
    /// `now_s - window_span_s` expire on the next [`advance`](Self::advance).
    pub fn window_span_s(&self) -> f64 {
        self.window_span_s
    }

    /// Overrides how long the tracker's kinematic state survives without a
    /// successful advance before the warm start is dropped (default: five
    /// window spans).
    pub fn with_warm_ttl(mut self, ttl_s: f64) -> Self {
        self.warm_ttl_s = ttl_s;
        self
    }

    /// The tag tracker fed by successful advances.
    pub fn tracker(&self) -> &TagTracker {
        &self.tracker
    }

    /// Cumulative incremental-engine statistics over the session's
    /// lifetime (updates, downdates, refit fallbacks).
    pub fn stats(&self) -> StreamingStats {
        self.stats
    }

    /// Total reads currently retained across all antenna windows.
    pub fn retained_reads(&self) -> usize {
        self.windows.iter().map(StreamingWindow::read_count).sum()
    }

    /// Advances the session to `now_s`: expires reads older than the
    /// window span, incrementally re-extracts every antenna's line fit,
    /// and runs detection + the warm-started joint solve.
    ///
    /// Tracker coupling: the solver is warm-started from the previous
    /// estimate with the position replaced by the tracker's constant-
    /// velocity extrapolation to `now_s`; a successful solve feeds the
    /// tracker back. Stale tracker state (no success within the warm TTL)
    /// is evicted first, so a long outage re-acquires cold.
    ///
    /// # Errors
    ///
    /// As [`RfPrism::sense`]: fewer than 3 usable antennas, a moving tag
    /// (when rejection is enabled) or a solver failure.
    pub fn advance(&mut self, now_s: f64) -> Result<SensingResult, SenseError> {
        let _sense_span = obs::span("sense_streaming");
        let _sense_timer = obs::time_histogram(obs::id::SENSE_LATENCY_US);
        let _advance_timer = obs::time_histogram(obs::id::STREAMING_ADVANCE_LATENCY_US);
        self.advances += 1;
        obs::journal_tick(self.advances);
        obs::counter_add(obs::id::PIPELINE_WINDOWS_TOTAL, 1);
        let cutoff = now_s - self.window_span_s;

        let mut observations = self.workspace.take_observations();
        let mut first_error = None;
        {
            let _extract_span = obs::span("extract");
            for (pose, window) in self.prism.poses().iter().zip(&mut self.windows) {
                window.expire_before(cutoff);
                let mut slot = self.workspace.take_slot(*pose);
                let _extract_timer = obs::time_histogram(obs::id::STREAMING_EXTRACT_LATENCY_US);
                match extract_streaming(*pose, window, &mut slot) {
                    Ok(()) => observations.push(slot),
                    Err(e) => {
                        self.workspace.recycle_slot(slot);
                        obs::counter_add(obs::id::PIPELINE_EXTRACT_FAILURES, 1);
                        if first_error.is_none() {
                            first_error = Some(e);
                        }
                    }
                }
            }
        }
        self.drain_window_counters();

        if observations.len() < 3 {
            obs::counter_add(obs::id::PIPELINE_WINDOWS_TOO_FEW_OBS, 1);
            let usable = observations.len();
            self.workspace.recycle_observations(observations);
            return Err(SenseError::TooFewObservations { usable, first_error });
        }

        let verdict = assess(&observations, &self.prism.config().detector);
        obs::verdict(&verdict);
        if self.prism.config().reject_moving {
            if let MobilityVerdict::Moving { worst_residual_std } = verdict {
                obs::counter_add(obs::id::PIPELINE_WINDOWS_MOVING_REJECTED, 1);
                self.workspace.recycle_observations(observations);
                // Coast the tracker through the rejected window so the
                // next successful advance extrapolates from `now_s`.
                self.tracker.predict_to(now_s);
                return Err(SenseError::TagMoving { worst_residual_std });
            }
        }

        if self.tracker.evict_stale(now_s, self.warm_ttl_s) {
            self.warm = None;
        }
        let warm = match (self.warm, self.tracker.extrapolate(now_s)) {
            (Some(w), Some(position)) => Some(w.with_position(position)),
            (w, _) => w,
        };

        let estimate = match solve_2d_tracking_warm(
            &observations,
            &self.seeds,
            &self.prism.config().solver,
            &mut self.workspace.solver,
            warm.as_ref(),
            &mut self.gate,
        ) {
            Ok(e) => e,
            Err(e) => {
                self.workspace.recycle_observations(observations);
                return Err(e.into());
            }
        };
        self.tracker.observe(estimate.position, now_s);
        self.warm = Some(WarmStart::from_estimate(&estimate));
        obs::counter_add(obs::id::PIPELINE_WINDOWS_OK, 1);
        Ok(SensingResult { estimate, observations, verdict })
    }

    /// Returns a [`SensingResult`]'s buffers to the session pool so the
    /// next [`advance`](Self::advance) allocates nothing.
    pub fn recycle(&mut self, result: SensingResult) {
        self.workspace.recycle(result);
    }

    /// Refit fallbacks taken by the most recent [`advance`](Self::advance)
    /// (0 or 1 per antenna window).
    pub fn last_advance_fallbacks(&self) -> u64 {
        self.fallbacks_window
    }

    /// Publishes per-window counters accumulated since the last advance
    /// and folds them into the session totals. Anomalies — fallbacks and
    /// rebuilds — additionally land in the structured journal, keyed by
    /// antenna index and stamped with the advance tick, so a fallback
    /// storm can be reconstructed per antenna after the fact.
    fn drain_window_counters(&mut self) {
        self.fallbacks_window = 0;
        for (antenna, window) in self.windows.iter_mut().enumerate() {
            let StreamingStats { updates, downdates, refit_fallbacks, drift_ops, rebuilds } =
                window.take_stats();
            obs::counter_add(STREAMING_UPDATES, updates);
            obs::counter_add(STREAMING_DOWNDATES, downdates);
            obs::counter_add(STREAMING_REFIT_FALLBACKS, refit_fallbacks);
            obs::counter_add(STREAMING_DRIFT_OPS, drift_ops);
            obs::counter_add(STREAMING_REBUILDS, rebuilds);
            obs::counter_add(FRONTEND_READS, updates);
            if refit_fallbacks > 0 {
                obs::journal_record("refit_fallback", antenna as u64, refit_fallbacks);
            }
            if rebuilds > 0 {
                obs::journal_record("rebuild", antenna as u64, rebuilds);
            }
            self.stats.updates += updates;
            self.stats.downdates += downdates;
            self.stats.refit_fallbacks += refit_fallbacks;
            self.stats.drift_ops += drift_ops;
            self.stats.rebuilds += rebuilds;
            self.fallbacks_window += refit_fallbacks;
            let [table, poly, libm, recurrence] = window.take_trig_hits();
            obs::counter_add(FRONTEND_TRIG_TABLE_READS, table);
            obs::counter_add(FRONTEND_TRIG_POLY_READS, poly);
            obs::counter_add(FRONTEND_TRIG_LIBM_READS, libm);
            obs::counter_add(FRONTEND_TRIG_RECURRENCE_READS, recurrence);
        }
    }
}


/// The streaming analogue of `extract_observation_into`: pulls the line
/// fit out of the window's incremental accumulators instead of
/// re-preprocessing raw reads, then fills `out` through the same shared
/// tail as the batch path.
fn extract_streaming(
    pose: AntennaPose,
    window: &mut StreamingWindow,
    out: &mut AntennaObservation,
) -> Result<(), ExtractError> {
    obs::counter_add(FRONTEND_WINDOWS, 1);
    let extract = window.extract_into(&mut out.channels).map_err(|e| match e {
        StreamingError::Preprocess(e) => ExtractError::Preprocess(e),
        StreamingError::Fit(e) => ExtractError::Fit(e),
    })?;
    if out.channels.len() < 5 {
        return Err(ExtractError::TooFewChannels { available: out.channels.len() });
    }
    obs::counter_add(FRONTEND_CHANNELS, out.channels.len() as u64);

    out.channel_inliers.clear();
    let (fit, inlier_fraction) = match &extract.robust {
        Some(summary) => {
            out.channel_inliers.extend_from_slice(window.inlier_mask());
            (summary.fit, summary.inlier_fraction(out.channels.len()))
        }
        None => {
            out.channel_inliers.resize(out.channels.len(), true);
            (extract.raw_fit, 1.0)
        }
    };
    finish_observation(pose, &extract.raw_fit, &fit, inlier_fraction, out);
    Ok(())
}
