//! Integration tests of the comparison baselines against RF-Prism — the
//! qualitative claims behind the paper's Figs. 14–20, at test scale.

use rf_prism::baselines::{BackPos, MobiTagbot, Tagtag};
use rf_prism::core::RfPrism;
use rf_prism::prelude::*;

fn prism_for(scene: &Scene) -> RfPrism {
    RfPrism::new(scene.antenna_poses(), scene.reader().plan)
        .with_region(scene.region())
}

/// MobiTagbot collapses when the attached material changes after its
/// calibration; RF-Prism does not (Fig. 16's mechanism).
#[test]
fn material_change_breaks_mobitagbot_not_prism() {
    let scene = Scene::standard_2d()
        .with_environment(MultipathEnvironment::cluttered(3, 31));
    let prism = prism_for(&scene);
    let mtb = MobiTagbot::new(scene.antenna_poses(), scene.region());

    // Calibrate MobiTagbot with the tag on its plastic carrier.
    let calib_pos = Vec2::new(0.5, 1.0);
    let base = SimTag::with_seeded_diversity(1).attached_to(Material::Plastic);
    let calib_survey =
        scene.survey(&base.with_motion(Motion::planar_static(calib_pos, 0.0)), 1);
    let calibration = mtb.calibrate(&calib_survey.per_antenna, calib_pos).unwrap();
    let mtb = mtb.with_calibration(calibration);

    let truth = Vec2::new(0.9, 1.8);
    let mut prism_err = Vec::new();
    let mut mtb_err = Vec::new();
    for (i, m) in [Material::Metal, Material::Water, Material::Alcohol]
        .into_iter()
        .enumerate()
    {
        let tag = base.attached_to(m).with_motion(Motion::planar_static(truth, 0.4));
        let survey = scene.survey(&tag, 10 + i as u64);
        prism_err.push(
            prism
                .sense(&survey.per_antenna)
                .unwrap()
                .estimate
                .position
                .distance(truth),
        );
        mtb_err.push(mtb.localize(&survey.per_antenna).unwrap().distance(truth));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&mtb_err) > 2.0 * mean(&prism_err),
        "MobiTagbot {:.3} m should be ≫ RF-Prism {:.3} m",
        mean(&mtb_err),
        mean(&prism_err)
    );
}

/// BackPos (slope differences) is material-immune like RF-Prism but senses
/// nothing besides position.
#[test]
fn backpos_localizes_across_materials() {
    let scene = Scene::standard_2d();
    let bp = BackPos::new(scene.antenna_poses(), scene.region());
    let truth = Vec2::new(0.3, 1.2);
    for (i, m) in [Material::Plastic, Material::Metal].into_iter().enumerate() {
        let tag = SimTag::with_seeded_diversity(2)
            .attached_to(m)
            .with_motion(Motion::planar_static(truth, 0.8));
        let survey = scene.survey(&tag, 20 + i as u64);
        let est = bp.localize(&survey.per_antenna).unwrap();
        assert!(est.distance(truth) < 0.3, "{m}: error {}", est.distance(truth));
    }
}

/// Tagtag classifies correctly at its training position but degrades when
/// the lossy material biases its RSS ranging at a new distance
/// (Fig. 18's mechanism).
#[test]
fn tagtag_degrades_with_distance() {
    let scene = Scene::standard_2d();
    let mut tagtag = Tagtag::new(scene.antenna_poses(), 50);
    let train_pos = Vec2::new(0.5, 1.2);
    let classes = [Material::Wood, Material::Metal, Material::Water, Material::Alcohol];
    for (i, &m) in classes.iter().enumerate() {
        for rep in 0..4u64 {
            let tag = SimTag::with_seeded_diversity(3)
                .attached_to(m)
                .with_motion(Motion::planar_static(train_pos, 0.0));
            let survey = scene.survey(&tag, 40 + i as u64 * 10 + rep);
            let f = tagtag.features(&survey.per_antenna).unwrap();
            tagtag.add_example(f, m);
        }
    }

    let accuracy_at = |pos: Vec2, seed0: u64| {
        let mut hits = 0;
        let mut total = 0;
        for (i, &m) in classes.iter().enumerate() {
            for rep in 0..4u64 {
                let tag = SimTag::with_seeded_diversity(3)
                    .attached_to(m)
                    .with_motion(Motion::planar_static(pos, 0.0));
                let survey = scene.survey(&tag, seed0 + i as u64 * 10 + rep);
                let f = tagtag.features(&survey.per_antenna).unwrap();
                total += 1;
                if tagtag.identify(&f) == m {
                    hits += 1;
                }
            }
        }
        hits as f64 / total as f64
    };
    let same = accuracy_at(train_pos, 400);
    let far = accuracy_at(Vec2::new(1.3, 2.3), 500);
    assert!(same > 0.8, "same-position accuracy {same}");
    assert!(same >= far, "distance must not *help* Tagtag: {same} vs {far}");
}
