//! Front-end profile: what one antenna window's DSP front end costs,
//! stage by stage — pre-processing (group, circular-average, π-fold,
//! unwrap), the fused unwrap+OLS raw fit, and the robust
//! multipath-rejecting fit — comparing the workspace kernels against the
//! frozen pre-rework allocating implementations in [`rfp_dsp::reference`]
//! (DESIGN.md §6).
//!
//! The two paths compute the same observation (the property suite
//! `frontend_workspace` pins them together); the difference is purely
//! data layout and algorithmic discipline: flat SoA per-channel columns
//! reused across windows, raw-fit sums accumulated during the unwrap,
//! `select_nth_unstable` medians and an incrementally-downdated refit —
//! versus `BTreeMap` grouping, per-channel `Vec`s, sorting medians and a
//! full refit per rejection round.
//!
//! The `preprocess` stage used to be trig-floor-bound on both paths (four
//! libm calls per read, bit-identity pinning the exact same evaluations).
//! The [`rfp_dsp::TrigProvider`] rework breaks that bound: the default
//! `Table` backend replaces the per-read libm calls with quantized
//! phase-code lookups (still bit-identical on code-carrying reads —
//! exactly what the R420 windows here produce), and the `Polynomial`
//! backend evaluates a bounded-error kernel in 4-wide lanes. Each window
//! therefore also reports per-backend `preprocess` rows (Table /
//! Polynomial / Libm vs the frozen reference), and the standard window's
//! table-backend ratio is exported as `standard_preprocess_speedup_p50`
//! for the perf gate's ≥2× floor. The fit chain — the fused unwrap+OLS
//! fit plus the robust multipath rejection, the "front end" of Eq. 5 —
//! carries the earlier rework's algorithmic wins and keeps its own floor.
//!
//! Writes a `BENCH_frontend.json` snapshot at the repo root (override the
//! path with `FRONTEND_PROFILE_OUT`); `scripts/bench_gate` regenerates it
//! with `FRONTEND_PROFILE_QUICK=1` and enforces the fused fit chain's ≥2×
//! p50 speedup on the paper's standard window plus a no-regression check
//! on the end-to-end window latency.

use rfp_bench::report;
use rfp_dsp::preprocess::{preprocess_reads_with, PreprocessConfig, RawRead};
use rfp_dsp::robust::{robust_line_fit_with, RobustFitConfig};
use rfp_dsp::{reference, FrontEndWorkspace};
use rfp_geom::Vec2;
use rfp_obs::JsonValue;
use rfp_sim::{Motion, Scene, SimTag};
use std::hint::black_box;
use std::time::Instant;

/// `FRONTEND_PROFILE_QUICK=1` trims the repeats for the CI perf gate.
fn quick_mode() -> bool {
    std::env::var("FRONTEND_PROFILE_QUICK")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// (p50, p90) microseconds over `repeats` timed runs of `f`.
fn time_us<F: FnMut()>(mut f: F, warmup: usize, repeats: usize) -> (f64, f64) {
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<f64> = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite times"));
    (samples[samples.len() / 2], samples[samples.len() * 9 / 10])
}

/// One antenna's raw reads from the paper-like simulated survey, with the
/// window density controlled by the reader's reads-per-channel dwell.
fn window_reads(reads_per_channel: usize) -> Vec<RawRead> {
    let scene = Scene::standard_2d();
    let reader = scene.reader().with_reads_per_channel(reads_per_channel);
    let scene = scene.with_reader(reader);
    let tag = SimTag::with_seeded_diversity(3)
        .with_motion(Motion::planar_static(Vec2::new(0.4, 1.5), 0.9));
    let survey = scene.survey(&tag, 31);
    survey.per_antenna.into_iter().next().expect("antenna 0")
}

/// One measured stage: reference vs fused p50/p90 and the p50 ratio.
struct Stage {
    name: &'static str,
    ref_p50: f64,
    ref_p90: f64,
    fused_p50: f64,
    fused_p90: f64,
}

impl Stage {
    fn speedup(&self) -> f64 {
        self.ref_p50 / self.fused_p50
    }

    fn json(&self) -> JsonValue {
        let round2 = |x: f64| (x * 100.0).round() / 100.0;
        JsonValue::obj(vec![
            ("stage", JsonValue::Str(self.name.into())),
            ("reference_p50_us", JsonValue::Num(round2(self.ref_p50))),
            ("reference_p90_us", JsonValue::Num(round2(self.ref_p90))),
            ("fused_p50_us", JsonValue::Num(round2(self.fused_p50))),
            ("fused_p90_us", JsonValue::Num(round2(self.fused_p90))),
            ("speedup_p50", JsonValue::Num(round2(self.speedup()))),
        ])
    }
}

/// Times `preprocess_reads_with` under one trig backend.
fn time_preprocess_backend(
    trig: rfp_dsp::TrigProvider,
    reads: &[RawRead],
    ws: &mut FrontEndWorkspace,
    out: &mut Vec<rfp_dsp::preprocess::ChannelObservation>,
    warmup: usize,
    repeats: usize,
) -> (f64, f64) {
    let config = PreprocessConfig { trig, ..PreprocessConfig::default() };
    time_us(
        || {
            preprocess_reads_with(ws, black_box(reads), &config, out).expect("usable");
            black_box(&out);
        },
        warmup,
        repeats,
    )
}

/// Measures the three front-end stages plus the end-to-end window for one
/// read density. The second return value holds one `preprocess` row per
/// trig backend (p50/p90 and the p50 ratio against the frozen reference);
/// the `Table` row's ratio is also returned for the gate metric.
fn profile_window(
    reads: &[RawRead],
    warmup: usize,
    repeats: usize,
) -> (Vec<Stage>, Vec<JsonValue>, f64) {
    let pre = PreprocessConfig::default();
    let robust = RobustFitConfig::default();

    // Stage inputs shared by both paths.
    let channels = reference::preprocess_reads(reads, &pre).expect("usable window");
    let xs: Vec<f64> = channels.iter().map(|c| c.frequency_hz).collect();
    let ys: Vec<f64> = channels.iter().map(|c| c.phase).collect();
    let mut ws = FrontEndWorkspace::default();
    let mut out = Vec::new();
    preprocess_reads_with(&mut ws, reads, &pre, &mut out).expect("usable window");

    let mut stages = Vec::new();

    // Pre-processing: group + circular-average + π-fold + unwrap, once
    // per trig backend against the (libm-only) frozen reference. The
    // canonical "preprocess" stage row carries the default backend
    // (`Table`); the per-backend rows land next to it in the snapshot.
    rfp_dsp::trig::warm_tables();
    let (rp50, rp90) = time_us(
        || {
            black_box(reference::preprocess_reads(black_box(reads), &pre).expect("usable"));
        },
        warmup,
        repeats,
    );
    let mut backend_rows = Vec::new();
    let mut table_speedup = 0.0f64;
    for trig in
        [rfp_dsp::TrigProvider::Table, rfp_dsp::TrigProvider::Polynomial, rfp_dsp::TrigProvider::Libm]
    {
        let (fp50, fp90) =
            time_preprocess_backend(trig, reads, &mut ws, &mut out, warmup, repeats);
        let round2 = |x: f64| (x * 100.0).round() / 100.0;
        backend_rows.push(JsonValue::obj(vec![
            ("backend", JsonValue::Str(format!("{trig:?}").to_lowercase())),
            ("fused_p50_us", JsonValue::Num(round2(fp50))),
            ("fused_p90_us", JsonValue::Num(round2(fp90))),
            ("speedup_p50", JsonValue::Num(round2(rp50 / fp50))),
        ]));
        if trig == rfp_dsp::TrigProvider::Table {
            table_speedup = rp50 / fp50;
            stages.push(Stage {
                name: "preprocess",
                ref_p50: rp50,
                ref_p90: rp90,
                fused_p50: fp50,
                fused_p90: fp90,
            });
        }
    }

    // Raw fit: column materialization + OLS versus the sums already
    // accumulated during the unwrap.
    let (rp50, rp90) = time_us(
        || {
            let xs: Vec<f64> = channels.iter().map(|c| c.frequency_hz).collect();
            let ys: Vec<f64> = channels.iter().map(|c| c.phase).collect();
            black_box(reference::ols(&xs, &ys).expect("fittable"));
        },
        warmup,
        repeats,
    );
    let (fp50, fp90) = time_us(
        || {
            black_box(ws.raw_fit().expect("fittable"));
        },
        warmup,
        repeats,
    );
    stages.push(Stage {
        name: "unwrap_fit",
        ref_p50: rp50,
        ref_p90: rp90,
        fused_p50: fp50,
        fused_p90: fp90,
    });

    // Robust rejection: sorting medians + full refit per round versus
    // selection medians + downdated sums.
    let (rp50, rp90) = time_us(
        || {
            black_box(reference::robust_line_fit(&xs, &ys, &robust).expect("fittable"));
        },
        warmup,
        repeats,
    );
    let (fp50, fp90) = {
        let (wxs, wys, fit_ws) = ws.fit_columns();
        time_us(
            || {
                black_box(robust_line_fit_with(fit_ws, wxs, wys, &robust).expect("fittable"));
            },
            warmup,
            repeats,
        )
    };
    stages.push(Stage {
        name: "robust_reject",
        ref_p50: rp50,
        ref_p90: rp90,
        fused_p50: fp50,
        fused_p90: fp90,
    });

    // End-to-end window: everything an extraction's front end runs.
    let (rp50, rp90) = time_us(
        || {
            let channels =
                reference::preprocess_reads(black_box(reads), &pre).expect("usable");
            let xs: Vec<f64> = channels.iter().map(|c| c.frequency_hz).collect();
            let ys: Vec<f64> = channels.iter().map(|c| c.phase).collect();
            black_box(reference::ols(&xs, &ys).expect("fittable"));
            black_box(reference::robust_line_fit(&xs, &ys, &robust).expect("fittable"));
        },
        warmup,
        repeats,
    );
    let (fp50, fp90) = time_us(
        || {
            preprocess_reads_with(&mut ws, black_box(reads), &pre, &mut out).expect("usable");
            black_box(ws.raw_fit().expect("fittable"));
            let (wxs, wys, fit_ws) = ws.fit_columns();
            black_box(robust_line_fit_with(fit_ws, wxs, wys, &robust).expect("fittable"));
        },
        warmup,
        repeats,
    );
    stages.push(Stage {
        name: "window",
        ref_p50: rp50,
        ref_p90: rp90,
        fused_p50: fp50,
        fused_p90: fp90,
    });
    (stages, backend_rows, table_speedup)
}

fn main() {
    report::header(
        "frontend_profile",
        "per-window DSP front end: fused SoA workspace vs pre-rework allocating path",
    );
    if quick_mode() {
        println!("(quick mode: reduced repeats)");
    }
    let (warmup, repeats) = if quick_mode() { (30, 300) } else { (100, 2000) };

    // Three window densities: a sparse inventory pass, the paper's
    // standard survey and a dense tracking window.
    let mut windows: Vec<JsonValue> = Vec::new();
    let mut standard_window_speedup = 0.0f64;
    let mut standard_fit_speedup = 0.0f64;
    let mut standard_preprocess_speedup = 0.0f64;
    for (label, reads_per_channel) in [("sparse", 2usize), ("standard", 8), ("dense", 24)] {
        let reads = window_reads(reads_per_channel);
        report::section(&format!("{label} window ({} reads)", reads.len()));
        let (stages, backend_rows, table_speedup) = profile_window(&reads, warmup, repeats);
        for row in &backend_rows {
            println!(
                "  preprocess[{}] fused p50 {:>7.2} p90 {:>7.2}   speedup ×{:.2}",
                row.get("backend").and_then(JsonValue::as_str).unwrap_or("?"),
                row.get("fused_p50_us").and_then(JsonValue::as_f64).unwrap_or(f64::NAN),
                row.get("fused_p90_us").and_then(JsonValue::as_f64).unwrap_or(f64::NAN),
                row.get("speedup_p50").and_then(JsonValue::as_f64).unwrap_or(f64::NAN),
            );
        }
        for s in &stages {
            println!(
                "  {:<13} reference p50 {:>7.2} p90 {:>7.2}   fused p50 {:>7.2} p90 {:>7.2}   speedup ×{:.2}",
                s.name,
                s.ref_p50,
                s.ref_p90,
                s.fused_p50,
                s.fused_p90,
                s.speedup()
            );
        }
        // The fit chain (unwrap+OLS fit → robust reject) is the rework's
        // algorithmic target; preprocess is trig-floor-bound on both paths.
        let chain: Vec<&Stage> =
            stages.iter().filter(|s| s.name == "unwrap_fit" || s.name == "robust_reject").collect();
        let fit_speedup = chain.iter().map(|s| s.ref_p50).sum::<f64>()
            / chain.iter().map(|s| s.fused_p50).sum::<f64>();
        println!("  fit chain (unwrap_fit + robust_reject) speedup ×{fit_speedup:.2}");
        let window_stage = stages.last().expect("window stage");
        if label == "standard" {
            standard_window_speedup = window_stage.speedup();
            standard_fit_speedup = fit_speedup;
            standard_preprocess_speedup = table_speedup;
        }
        windows.push(JsonValue::obj(vec![
            ("window", JsonValue::Str(label.into())),
            ("reads", JsonValue::Num(reads.len() as f64)),
            ("fit_chain_speedup_p50", JsonValue::Num((fit_speedup * 100.0).round() / 100.0)),
            ("preprocess_backends", JsonValue::Arr(backend_rows)),
            ("stages", JsonValue::Arr(stages.iter().map(Stage::json).collect())),
        ]));
    }
    println!(
        "\n  standard window: preprocess (table) ×{standard_preprocess_speedup:.2}, \
         fit chain ×{standard_fit_speedup:.2}, end-to-end ×{standard_window_speedup:.2}"
    );

    let value = rfp_obs::report::snapshot(
        "frontend_profile",
        vec![
            (
                "units",
                JsonValue::obj(vec![(
                    "latency",
                    JsonValue::Str("microseconds per antenna window (p50/p90)".into()),
                )]),
            ),
            ("windows", JsonValue::Arr(windows)),
            // Gate metrics: the fit-chain and table-preprocess ratios are
            // floored at ≥2× by scripts/bench_gate; the end-to-end window
            // p50 is regression-checked against the committed snapshot.
            (
                "standard_fit_speedup_p50",
                JsonValue::Num((standard_fit_speedup * 100.0).round() / 100.0),
            ),
            (
                "standard_preprocess_speedup_p50",
                JsonValue::Num((standard_preprocess_speedup * 100.0).round() / 100.0),
            ),
            (
                "standard_window_speedup_p50",
                JsonValue::Num((standard_window_speedup * 100.0).round() / 100.0),
            ),
        ],
    );
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_frontend.json");
    let path =
        std::env::var("FRONTEND_PROFILE_OUT").unwrap_or_else(|_| default_path.to_string());
    match rfp_obs::report::write_json(std::path::Path::new(&path), &value) {
        Ok(()) => println!("\nsnapshot written to {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}
