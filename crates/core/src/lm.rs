//! Dimension-generic Levenberg–Marquardt core (DESIGN.md §6).
//!
//! The 2-D solver fits 5 parameters and the 3-D solver fits 7, but the LM
//! machinery between them — fused residual+Jacobian evaluation, normal
//! equations, Cholesky (analytic) or Gaussian elimination (numeric
//! fallback), the λ damping/retry policy — is byte-for-byte the same
//! algorithm. [`LmCore`] is that algorithm, const-generic over the
//! parameter count `P`, with the problem physics abstracted behind
//! [`ResidualModel`]. Both solvers are thin facades over it, and a new
//! P-parameter sensing head gets the whole refinement stack by
//! implementing one trait method.
//!
//! Compared with the dynamic [`LmWorkspace`](crate::solver::LmWorkspace)
//! cores (kept public, frozen — they are the oracle the facades are tested
//! against), the const-generic core keeps the parameter vector, the `P×P`
//! normal equations, the factorization scratch and the step/trial buffers
//! in fixed-size arrays: no bounds checks in the `P`-indexed kernels, no
//! `clear`/`resize` churn per refinement, and loop trip counts the
//! compiler can fully unroll. Every floating-point operation runs in the
//! same order as the dynamic cores, so results are **bit-identical**.
//!
//! # Lane accounting
//!
//! The residual models evaluate antenna rows in explicit 4-wide lanes
//! (each lane computes one independent row; rows are written in antenna
//! order, so the reduction order — and therefore every bit of the result —
//! matches the scalar loop). The core counts full 4-row blocks and
//! leftover scalar rows per evaluation into [`LaneStats`]; the solvers
//! surface the tallies through the `solver.lane_*` observability counters.
//! [`LaneMode::Scalar`] is the config escape hatch back to the plain loop.

use crate::solver::SolveStats;

/// How the residual models traverse their antenna/channel rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LaneMode {
    /// Process rows in explicit 4-wide unrolled lanes (independent rows,
    /// antenna-order writes — bit-identical to the scalar loop). The
    /// default.
    #[default]
    Wide4,
    /// The plain scalar loop — the escape hatch, and the reference the
    /// lane path is pinned against in the equivalence suite.
    Scalar,
}

/// Lane-utilization counters of the 4-wide hot paths, accumulated
/// monotonically (snapshot and diff with [`LaneStats::since`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Full 4-seed blocks evaluated by the coarse seed ranking.
    pub seed_blocks: u64,
    /// Full 4-row blocks evaluated by residual/Jacobian passes.
    pub row_blocks: u64,
    /// Rows (or seeds) processed outside a full 4-wide block — loop
    /// remainders, plus everything when [`LaneMode::Scalar`] is selected.
    pub scalar_rows: u64,
}

impl LaneStats {
    /// The tallies accumulated since `earlier` was snapshotted.
    #[must_use]
    pub fn since(self, earlier: LaneStats) -> LaneStats {
        LaneStats {
            seed_blocks: self.seed_blocks - earlier.seed_blocks,
            row_blocks: self.row_blocks - earlier.row_blocks,
            scalar_rows: self.scalar_rows - earlier.scalar_rows,
        }
    }

    /// Element-wise sum of two tallies (for aggregating a workspace's
    /// cores into one snapshot).
    #[must_use]
    pub fn merged(self, other: LaneStats) -> LaneStats {
        LaneStats {
            seed_blocks: self.seed_blocks + other.seed_blocks,
            row_blocks: self.row_blocks + other.row_blocks,
            scalar_rows: self.scalar_rows + other.scalar_rows,
        }
    }
}

/// A `P`-parameter nonlinear least-squares model: the problem physics the
/// dimension-generic [`LmCore`] refines against.
///
/// Implementations own (borrow) their observations and configuration; the
/// core owns the numerics. The solvers implement this for the 2-D joint
/// (`P = 5`), 2-D slope-only (`P = 3`), 3-D joint (`P = 7`) and 3-D
/// slope-only (`P = 4`) problems; a new sensing head needs exactly this
/// one method to inherit the refinement stack.
pub trait ResidualModel<const P: usize> {
    /// Fills `r` with the residuals at `p` and, when `jac` is given, the
    /// row-major `m × P` Jacobian `∂r/∂p` in the same fused pass.
    ///
    /// Must fully overwrite both buffers (`clear` + fill). When `jac` is
    /// `None` only the residuals are needed (trial-point evaluations and
    /// the numeric fallback's difference sweeps).
    fn eval(&self, p: &[f64; P], r: &mut Vec<f64>, jac: Option<&mut Vec<f64>>);

    /// The lane mode this model's row loops run under — used by the core's
    /// lane accounting. Defaults to [`LaneMode::Wide4`].
    fn lane_mode(&self) -> LaneMode {
        LaneMode::Wide4
    }
}

/// The dimension-generic LM engine: scratch buffers plus the analytic and
/// numeric refinement loops, const-generic over the parameter count.
///
/// The residual and Jacobian buffers grow to the model's row count on the
/// first refinement and are reused afterwards; everything `P`-sized lives
/// inline in the struct. A sized core performs **zero** heap allocations
/// per refinement — the property the counting-allocator suite pins.
#[derive(Debug, Clone)]
pub struct LmCore<const P: usize> {
    r: Vec<f64>,
    r_plus: Vec<f64>,
    r_minus: Vec<f64>,
    /// Row-major `m × P` Jacobian.
    jac: Vec<f64>,
    /// Normal matrix `JᵀJ` and its damped factorization scratch.
    jtj: [[f64; P]; P],
    chol: [[f64; P]; P],
    /// Gradient, step and trial-point buffers.
    jtr: [f64; P],
    delta: [f64; P],
    candidate: [f64; P],
    stats: SolveStats,
    lanes: LaneStats,
}

impl<const P: usize> Default for LmCore<P> {
    fn default() -> Self {
        LmCore {
            r: Vec::new(),
            r_plus: Vec::new(),
            r_minus: Vec::new(),
            jac: Vec::new(),
            jtj: [[0.0; P]; P],
            chol: [[0.0; P]; P],
            jtr: [0.0; P],
            delta: [0.0; P],
            candidate: [0.0; P],
            stats: SolveStats::default(),
            lanes: LaneStats::default(),
        }
    }
}

impl<const P: usize> LmCore<P> {
    /// Snapshot of the work counters accumulated by every refinement run
    /// against this core (diff with
    /// [`SolveStats::since`](crate::solver::SolveStats::since)).
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Snapshot of the lane-utilization counters (diff with
    /// [`LaneStats::since`]).
    pub fn lane_stats(&self) -> LaneStats {
        self.lanes
    }

    /// Charges one model evaluation of `rows` residual rows to the lane
    /// tallies under the model's lane mode.
    fn charge_lanes(&mut self, mode: LaneMode, rows: usize) {
        match mode {
            LaneMode::Wide4 => {
                self.lanes.row_blocks += (rows / 4) as u64;
                self.lanes.scalar_rows += (rows % 4) as u64;
            }
            LaneMode::Scalar => self.lanes.scalar_rows += rows as u64,
        }
    }

    /// Levenberg–Marquardt with the model's fused analytic
    /// residual+Jacobian — the hot path. The damping/retry policy and
    /// every floating-point operation match
    /// [`levenberg_marquardt_analytic_with`](crate::solver::levenberg_marquardt_analytic_with)
    /// exactly, so results are bit-identical to the dynamic core.
    #[allow(clippy::needless_range_loop)] // index loops mirror the frozen core verbatim
    pub fn refine<M: ResidualModel<P>>(
        &mut self,
        model: &M,
        mut p: [f64; P],
        max_iterations: usize,
        tolerance: f64,
    ) -> ([f64; P], f64) {
        let mode = model.lane_mode();
        model.eval(&p, &mut self.r, Some(&mut self.jac));
        self.stats.residual_evals += 1;
        self.stats.jacobian_evals += 1;
        let mut cost: f64 = self.r.iter().map(|v| v * v).sum();
        let m = self.r.len();
        self.charge_lanes(mode, m);
        debug_assert_eq!(self.jac.len(), m * P);

        let mut lambda = 1e-3;
        // The Jacobian from the initial fused evaluation is current; after
        // an accepted step it goes stale and the next iteration re-fuses.
        let mut jac_fresh = true;

        for _ in 0..max_iterations {
            self.stats.iterations += 1;
            if !jac_fresh {
                model.eval(&p, &mut self.r, Some(&mut self.jac));
                self.stats.residual_evals += 1;
                self.stats.jacobian_evals += 1;
                self.charge_lanes(mode, m);
                jac_fresh = true;
            }
            // Assemble the normal equations once; the λ retries below
            // reuse them and only re-damp the diagonal.
            self.jtj = [[0.0; P]; P];
            self.jtr = [0.0; P];
            for i in 0..m {
                let row = &self.jac[i * P..(i + 1) * P];
                let ri = self.r[i];
                for a in 0..P {
                    self.jtr[a] += row[a] * ri;
                    for b in a..P {
                        self.jtj[a][b] += row[a] * row[b];
                    }
                }
            }
            for a in 0..P {
                for b in 0..a {
                    self.jtj[a][b] = self.jtj[b][a];
                }
            }

            let mut improved = false;
            for _ in 0..8 {
                self.chol = self.jtj;
                for d in 0..P {
                    self.chol[d][d] += lambda * self.jtj[d][d].max(1e-12);
                }
                if !cholesky_factor(&mut self.chol) {
                    lambda *= 10.0;
                    continue;
                }
                for a in 0..P {
                    self.delta[a] = -self.jtr[a];
                }
                cholesky_solve(&self.chol, &mut self.delta);
                for a in 0..P {
                    self.candidate[a] = p[a] + self.delta[a];
                }
                model.eval(&self.candidate, &mut self.r_plus, None);
                self.stats.residual_evals += 1;
                self.charge_lanes(mode, m);
                let new_cost: f64 = self.r_plus.iter().map(|v| v * v).sum();
                if new_cost < cost {
                    let rel_drop = (cost - new_cost) / cost.max(1e-300);
                    p = self.candidate;
                    std::mem::swap(&mut self.r, &mut self.r_plus);
                    cost = new_cost;
                    lambda = (lambda / 3.0).max(1e-12);
                    improved = true;
                    jac_fresh = false;
                    if rel_drop < tolerance {
                        return (p, cost);
                    }
                    break;
                }
                lambda *= 4.0;
            }
            if !improved {
                break;
            }
        }
        (p, cost)
    }

    /// Levenberg–Marquardt with a central-difference Jacobian and
    /// per-parameter step scales — the numeric fallback. The policy and
    /// operation order match
    /// [`levenberg_marquardt_with`](crate::solver::levenberg_marquardt_with)
    /// exactly (bit-identical results); only residual evaluations
    /// (`jac: None`) are requested from the model.
    #[allow(clippy::needless_range_loop)] // index loops mirror the frozen core verbatim
    pub fn refine_numeric<M: ResidualModel<P>>(
        &mut self,
        model: &M,
        mut p: [f64; P],
        steps: &[f64; P],
        max_iterations: usize,
        tolerance: f64,
    ) -> ([f64; P], f64) {
        let mode = model.lane_mode();
        model.eval(&p, &mut self.r, None);
        self.stats.residual_evals += 1;
        let mut cost: f64 = self.r.iter().map(|v| v * v).sum();
        let m = self.r.len();
        self.charge_lanes(mode, m);

        let mut lambda = 1e-3;
        self.jac.clear();
        self.jac.resize(m * P, 0.0);

        for _ in 0..max_iterations {
            self.stats.iterations += 1;
            // Numeric Jacobian (central differences, per-parameter steps).
            for j in 0..P {
                let h = steps[j];
                let saved = p[j];
                p[j] = saved + h;
                model.eval(&p, &mut self.r_plus, None);
                p[j] = saved - h;
                model.eval(&p, &mut self.r_minus, None);
                p[j] = saved;
                for i in 0..m {
                    self.jac[i * P + j] = (self.r_plus[i] - self.r_minus[i]) / (2.0 * h);
                }
            }
            self.stats.residual_evals += 2 * P as u64;
            self.stats.jacobian_evals += 1;
            self.charge_lanes(mode, 2 * P * m);
            // Normal equations — same accumulation order as the dynamic
            // numeric core (bit-identical results).
            self.jtj = [[0.0; P]; P];
            self.jtr = [0.0; P];
            for i in 0..m {
                let row = &self.jac[i * P..(i + 1) * P];
                let ri = self.r[i];
                for a in 0..P {
                    self.jtr[a] += row[a] * ri;
                    for b in a..P {
                        self.jtj[a][b] += row[a] * row[b];
                    }
                }
            }
            for a in 0..P {
                for b in 0..a {
                    self.jtj[a][b] = self.jtj[b][a];
                }
            }

            // Damped solve with retry on cost increase.
            let mut improved = false;
            for _ in 0..8 {
                self.chol = self.jtj;
                for d in 0..P {
                    self.chol[d][d] += lambda * self.jtj[d][d].max(1e-12);
                }
                for a in 0..P {
                    self.delta[a] = -self.jtr[a];
                }
                if !gauss_solve(&mut self.chol, &mut self.delta) {
                    lambda *= 10.0;
                    continue;
                }
                for a in 0..P {
                    self.candidate[a] = p[a] + self.delta[a];
                }
                model.eval(&self.candidate, &mut self.r_plus, None);
                self.stats.residual_evals += 1;
                self.charge_lanes(mode, m);
                let new_cost: f64 = self.r_plus.iter().map(|v| v * v).sum();
                if new_cost < cost {
                    let rel_drop = (cost - new_cost) / cost.max(1e-300);
                    p = self.candidate;
                    std::mem::swap(&mut self.r, &mut self.r_plus);
                    cost = new_cost;
                    lambda = (lambda / 3.0).max(1e-12);
                    improved = true;
                    if rel_drop < tolerance {
                        return (p, cost);
                    }
                    break;
                }
                lambda *= 4.0;
            }
            if !improved {
                break;
            }
        }
        (p, cost)
    }
}

/// In-place Cholesky factorization `A = LLᵀ`; on success the lower
/// triangle holds `L`. Same expressions (and failure guard) as the
/// dynamic [`solver`](crate::solver) routine, over fixed-size storage —
/// bit-identical factors.
#[allow(clippy::needless_range_loop)] // index loops mirror the frozen core verbatim
fn cholesky_factor<const P: usize>(a: &mut [[f64; P]; P]) -> bool {
    for i in 0..P {
        for j in 0..=i {
            let mut s = a[i][j];
            for k in 0..j {
                s -= a[i][k] * a[j][k];
            }
            if i == j {
                if !s.is_finite() || s < 1e-300 {
                    return false;
                }
                a[i][i] = s.sqrt();
            } else {
                a[i][j] = s / a[j][j];
            }
        }
    }
    true
}

/// Solves `LLᵀ x = b` in place against a [`cholesky_factor`] factor.
fn cholesky_solve<const P: usize>(l: &[[f64; P]; P], b: &mut [f64; P]) {
    for i in 0..P {
        let mut s = b[i];
        for k in 0..i {
            s -= l[i][k] * b[k];
        }
        b[i] = s / l[i][i];
    }
    for i in (0..P).rev() {
        let mut s = b[i];
        for k in (i + 1)..P {
            s -= l[k][i] * b[k];
        }
        b[i] = s / l[i][i];
    }
}

/// In-place Gaussian elimination with partial pivoting; pivot selection,
/// elimination order and back-substitution match the dynamic
/// `solve_linear_in_place` exactly (the numeric core stays a bit-exact
/// oracle). Returns `false` when singular.
#[allow(clippy::needless_range_loop)] // index loops mirror the frozen core verbatim
fn gauss_solve<const P: usize>(a: &mut [[f64; P]; P], b: &mut [f64; P]) -> bool {
    for col in 0..P {
        let mut pivot = col;
        for row in (col + 1)..P {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-300 {
            return false;
        }
        if pivot != col {
            a.swap(col, pivot);
            b.swap(col, pivot);
        }
        for row in (col + 1)..P {
            let factor = a[row][col] / a[col][col];
            for k in col..P {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    for col in (0..P).rev() {
        let mut s = b[col];
        for k in (col + 1)..P {
            s -= a[col][k] * b[k];
        }
        b[col] = s / a[col][col];
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{
        levenberg_marquardt_analytic_with, levenberg_marquardt_with, LmWorkspace,
    };

    /// Fit y = a·x + b over 10 points — a tiny 2-parameter model whose
    /// analytic Jacobian is exact.
    struct Line {
        data: Vec<(f64, f64)>,
        mode: LaneMode,
    }

    impl ResidualModel<2> for Line {
        fn eval(&self, p: &[f64; 2], r: &mut Vec<f64>, jac: Option<&mut Vec<f64>>) {
            r.clear();
            let mut jac = jac;
            if let Some(j) = jac.as_deref_mut() {
                j.clear();
            }
            for &(x, y) in &self.data {
                r.push(y - (p[0] * x + p[1]));
                if let Some(j) = jac.as_deref_mut() {
                    j.push(-x);
                    j.push(-1.0);
                }
            }
        }

        fn lane_mode(&self) -> LaneMode {
            self.mode
        }
    }

    fn line_model(mode: LaneMode) -> Line {
        Line {
            data: (0..10).map(|i| (i as f64, 2.0 * i as f64 - 3.0)).collect(),
            mode,
        }
    }

    #[test]
    fn analytic_refine_matches_dynamic_core_bitwise() {
        let model = line_model(LaneMode::Wide4);
        let mut core = LmCore::<2>::default();
        let (p, cost) = core.refine(&model, [0.0, 0.0], 100, 1e-14);

        let mut ws = LmWorkspace::default();
        let resjac = |p: &[f64], r: &mut Vec<f64>, jac: Option<&mut Vec<f64>>| {
            let pa = [p[0], p[1]];
            model.eval(&pa, r, jac);
        };
        let (pd, costd) =
            levenberg_marquardt_analytic_with(&mut ws, &resjac, vec![0.0, 0.0], 100, 1e-14);
        assert_eq!(p[0].to_bits(), pd[0].to_bits());
        assert_eq!(p[1].to_bits(), pd[1].to_bits());
        assert_eq!(cost.to_bits(), costd.to_bits());
        assert!((p[0] - 2.0).abs() < 1e-8 && (p[1] + 3.0).abs() < 1e-8);
        // Identical work accounting, too.
        assert_eq!(core.stats(), ws.stats());
    }

    #[test]
    fn numeric_refine_matches_dynamic_core_bitwise() {
        let model = line_model(LaneMode::Scalar);
        let mut core = LmCore::<2>::default();
        let steps = [1e-5, 1e-5];
        let (p, cost) = core.refine_numeric(&model, [0.0, 0.0], &steps, 100, 1e-14);

        let mut ws = LmWorkspace::default();
        let residual = |p: &[f64], out: &mut Vec<f64>| {
            let pa = [p[0], p[1]];
            model.eval(&pa, out, None);
        };
        let (pd, costd) = levenberg_marquardt_with(
            &mut ws,
            &residual,
            vec![0.0, 0.0],
            &steps,
            100,
            1e-14,
        );
        assert_eq!(p[0].to_bits(), pd[0].to_bits());
        assert_eq!(p[1].to_bits(), pd[1].to_bits());
        assert_eq!(cost.to_bits(), costd.to_bits());
        assert_eq!(core.stats(), ws.stats());
    }

    #[test]
    fn lane_tallies_follow_the_mode() {
        let wide = line_model(LaneMode::Wide4);
        let mut core = LmCore::<2>::default();
        core.refine(&wide, [0.0, 0.0], 100, 1e-14);
        let lanes = core.lane_stats();
        // 10 rows per evaluation → 2 full blocks + 2 scalar rows each.
        assert!(lanes.row_blocks > 0);
        assert_eq!(lanes.scalar_rows, lanes.row_blocks);

        let scalar = line_model(LaneMode::Scalar);
        let mut core2 = LmCore::<2>::default();
        core2.refine(&scalar, [0.0, 0.0], 100, 1e-14);
        let lanes2 = core2.lane_stats();
        assert_eq!(lanes2.row_blocks, 0);
        assert!(lanes2.scalar_rows > 0);
        // Same evaluations either way: 4·blocks + scalar is conserved.
        assert_eq!(4 * lanes.row_blocks + lanes.scalar_rows, lanes2.scalar_rows);
    }

    #[test]
    fn fixed_size_cholesky_round_trip() {
        let a = [[4.0, 2.0, 0.6], [2.0, 5.0, 1.0], [0.6, 1.0, 3.0]];
        let b = [1.0, -2.0, 0.5];
        let mut l = a;
        assert!(cholesky_factor(&mut l));
        let mut x = b;
        cholesky_solve(&l, &mut x);
        for i in 0..3 {
            let ax: f64 = (0..3).map(|j| a[i][j] * x[j]).sum();
            assert!((ax - b[i]).abs() < 1e-12, "row {i}: {ax} vs {}", b[i]);
        }
        let mut indef = [[1.0, 2.0], [2.0, 1.0]];
        assert!(!cholesky_factor(&mut indef));
    }

    #[test]
    fn fixed_size_gauss_pivots_and_rejects_singular() {
        let a0 = [[0.0, 2.0, 1.0], [1.0, 1.0, 0.5], [3.0, 0.1, 2.0]];
        let b0 = [1.0, 2.0, 3.0];
        let mut a = a0;
        let mut x = b0;
        assert!(gauss_solve(&mut a, &mut x));
        for i in 0..3 {
            let ax: f64 = (0..3).map(|j| a0[i][j] * x[j]).sum();
            assert!((ax - b0[i]).abs() < 1e-10, "row {i}: {ax} vs {}", b0[i]);
        }
        let mut sing = [[1.0, 2.0], [2.0, 4.0]];
        let mut b = [1.0, 2.0];
        assert!(!gauss_solve(&mut sing, &mut b));
    }
}
