//! Fig. 13: material identification accuracy of KNN / SVM / Decision Tree.
fn main() {
    use rfp_bench::{matid, report};
    use rfp_core::material::ClassifierKind;
    use rfp_ml::svm::SvmConfig;
    use rfp_sim::Scene;

    report::header("Fig. 13", "classifier comparison on the 8-material task");
    let scene = Scene::standard_2d();
    let corpus = matid::build_corpus(&scene, 100, 50);
    println!(
        "corpus: {} training / {} validation samples",
        corpus.train.len(),
        corpus.validation.len()
    );
    use rfp_ml::svm::Kernel;
    let mut accuracies = Vec::new();
    for (name, paper, kind) in [
        ("KNN (k=9)", "75.6 %", ClassifierKind::Knn { k: 9 }),
        (
            "SVM (RBF)",
            "83.5 %",
            ClassifierKind::Svm(SvmConfig {
                c: 10.0,
                kernel: Kernel::Rbf { gamma: 0.005 },
                ..Default::default()
            }),
        ),
        ("Decision Tree", "87.9 %", ClassifierKind::paper_default()),
    ] {
        let cm = matid::evaluate_all(&corpus, &kind);
        report::row(name, paper, &report::pct(cm.accuracy()));
        accuracies.push(cm.accuracy());
    }
    println!();
    println!("paper's ordering: Decision Tree > SVM > KNN (KNN suffers most from the");
    println!("52-dimensional feature space; the tree finds the low-dimensional k_t /");
    println!("curvature splits). The ordering must hold here too:");
    assert!(accuracies[2] > accuracies[1] && accuracies[1] > accuracies[0]);
    assert!(accuracies[2] > 0.8, "decision tree accuracy {}", accuracies[2]);
}
