//! The error detector (paper §V-C) and multipath triage (§V-D).
//!
//! RF-Prism assumes the tag is static while the reader hops the whole band
//! (~10 s on an R420). If the tag moved or rotated mid-round, the samples
//! on different channels correspond to different distances/orientations
//! and the phase-vs-frequency relationship stops being a line *entirely* —
//! no subset of channels fits. Multipath is different: a strong LOS keeps
//! the majority of channels on the line and only a minority deviates.
//!
//! The verdict therefore looks at the **robust** (post-rejection) fit:
//!
//! * residual still large → nothing linear to salvage → `Moving`;
//! * residual fine but channels were rejected → `MultipathSuppressed`;
//! * everything kept → `Clean`.

use crate::model::AntennaObservation;

/// Thresholds for the error detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Max tolerable post-rejection residual std, radians. Above this the
    /// window is declared `Moving` and should be discarded.
    pub max_residual_std: f64,
    /// Minimum inlier fraction: rejecting more than this means the "line"
    /// was found in a minority of channels, also a mobility symptom.
    pub min_inlier_fraction: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig { max_residual_std: 0.25, min_inlier_fraction: 0.55 }
    }
}

/// The detector's verdict on one sensing window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MobilityVerdict {
    /// Phase lines are clean on every antenna.
    Clean,
    /// A linear fit exists but some channels were rejected as
    /// multipath-corrupted outliers.
    MultipathSuppressed {
        /// Total channels rejected across antennas.
        rejected_channels: usize,
    },
    /// No antenna-consistent linear relationship: the tag moved or rotated
    /// during the hop round. Discard this window (paper §V-C).
    Moving {
        /// Worst post-rejection residual std observed, radians.
        worst_residual_std: f64,
    },
}

impl MobilityVerdict {
    /// Whether the window is usable for sensing.
    pub fn is_usable(&self) -> bool {
        !matches!(self, MobilityVerdict::Moving { .. })
    }
}

/// Total channels the robust per-antenna fits dropped as multipath
/// outliers, summed across `observations` — the count surfaced by
/// [`MobilityVerdict::MultipathSuppressed`] and the
/// `detector.channels_rejected` metric.
pub fn rejected_channels(observations: &[AntennaObservation]) -> usize {
    observations
        .iter()
        .map(|o| o.channel_inliers.iter().filter(|&&k| !k).count())
        .sum()
}

/// Assesses one window's observations.
///
/// # Panics
///
/// Panics if `observations` is empty.
pub fn assess(observations: &[AntennaObservation], config: &DetectorConfig) -> MobilityVerdict {
    assert!(!observations.is_empty(), "need at least one observation");
    let worst_residual = observations
        .iter()
        .map(|o| o.residual_std)
        .fold(0.0f64, f64::max);
    let worst_inlier_fraction = observations
        .iter()
        .map(|o| o.inlier_fraction)
        .fold(1.0f64, f64::min);

    if worst_residual > config.max_residual_std
        || worst_inlier_fraction < config.min_inlier_fraction
    {
        return MobilityVerdict::Moving { worst_residual_std: worst_residual };
    }
    let rejected = rejected_channels(observations);
    if rejected > 0 {
        MobilityVerdict::MultipathSuppressed { rejected_channels: rejected }
    } else {
        MobilityVerdict::Clean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{extract_observation, ExtractConfig};
    use rfp_geom::Vec2;
    use rfp_sim::{Motion, MultipathEnvironment, Scene, SimTag};

    fn observations(scene: &Scene, tag: &SimTag, seed: u64) -> Vec<AntennaObservation> {
        let survey = scene.survey(tag, seed);
        scene
            .antenna_poses()
            .iter()
            .zip(&survey.per_antenna)
            .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).unwrap())
            .collect()
    }

    #[test]
    fn static_tag_is_clean() {
        let scene = Scene::standard_2d();
        let tag = SimTag::nominal(1)
            .with_motion(Motion::planar_static(Vec2::new(0.5, 1.5), 0.3));
        let obs = observations(&scene, &tag, 1);
        let v = assess(&obs, &DetectorConfig::default());
        assert!(v.is_usable());
    }

    #[test]
    fn moving_tag_is_flagged() {
        let scene = Scene::standard_2d();
        let tag = SimTag::nominal(1).with_motion(Motion::planar_linear(
            Vec2::new(0.2, 1.0),
            Vec2::new(0.06, 0.03),
            0.0,
        ));
        let obs = observations(&scene, &tag, 2);
        let v = assess(&obs, &DetectorConfig::default());
        assert!(matches!(v, MobilityVerdict::Moving { .. }), "verdict {v:?}");
        assert!(!v.is_usable());
    }

    #[test]
    fn rotating_tag_is_flagged() {
        let scene = Scene::standard_2d();
        // Rotating changes the intercept per channel → nonlinear samples.
        let tag = SimTag::nominal(1).with_motion(Motion::planar_rotating(
            Vec2::new(0.6, 1.2),
            0.0,
            0.35, // rad/s → ~3.5 rad over the 10 s round
        ));
        let obs = observations(&scene, &tag, 3);
        assert!(matches!(
            assess(&obs, &DetectorConfig::default()),
            MobilityVerdict::Moving { .. }
        ));
    }

    #[test]
    fn multipath_is_suppressed_not_discarded() {
        let scene = Scene::standard_2d()
            .with_environment(MultipathEnvironment::cluttered(3, 21));
        let tag = SimTag::nominal(1)
            .with_motion(Motion::planar_static(Vec2::new(0.8, 1.6), 0.5));
        let obs = observations(&scene, &tag, 4);
        let v = assess(&obs, &DetectorConfig::default());
        assert!(v.is_usable(), "verdict {v:?}");
    }

    #[test]
    fn slow_drift_below_threshold_passes() {
        // Sub-millimetre total drift is indistinguishable from noise; the
        // detector must not be trigger-happy.
        let scene = Scene::standard_2d();
        let tag = SimTag::nominal(1).with_motion(Motion::planar_linear(
            Vec2::new(0.5, 1.5),
            Vec2::new(5e-5, 0.0), // 0.5 mm over the whole round
            0.2,
        ));
        let obs = observations(&scene, &tag, 5);
        assert!(assess(&obs, &DetectorConfig::default()).is_usable());
    }

    #[test]
    #[should_panic]
    fn empty_observations_panic() {
        let _ = assess(&[], &DetectorConfig::default());
    }
}
