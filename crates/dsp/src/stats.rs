//! Small statistics helpers.
//!
//! Used by the robust fitting routines (median/MAD), by the solver's
//! diagnostics and by the experiment harness (means, percentiles, empirical
//! CDFs for the paper's Figures 14–16).

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population variance. Returns `None` for an empty slice.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation. Returns `None` for an empty slice.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Median (average of the two central order statistics for even length).
/// Returns `None` for an empty slice.
pub fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = v.len();
    Some(if n % 2 == 1 { v[n / 2] } else { (v[n / 2 - 1] + v[n / 2]) / 2.0 })
}

/// Median computed in place by order-statistic selection
/// (`select_nth_unstable`) — no allocation, O(n) expected time instead of
/// the O(n log n) sort in [`median`]. Returns the same value as [`median`]
/// (selection picks identical order statistics); the slice is left
/// partially reordered. Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics on `NaN` input, like [`median`].
pub fn median_in_place(xs: &mut [f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let n = xs.len();
    let cmp = |a: &f64, b: &f64| a.partial_cmp(b).expect("NaN in median input");
    let (below, mid, _) = xs.select_nth_unstable_by(n / 2, cmp);
    let mid = *mid;
    Some(if n % 2 == 1 {
        mid
    } else {
        // The lower central order statistic is the maximum of the left
        // partition.
        let lower = below.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (lower + mid) / 2.0
    })
}

/// Median absolute deviation from the median (raw MAD, not scaled to σ).
/// Returns `None` for an empty slice.
pub fn mad(xs: &[f64]) -> Option<f64> {
    let m = median(xs)?;
    let dev: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&dev)
}

/// MAD of `xs` computed without allocating, using `scratch` (cleared and
/// refilled; capacity reused). Identical value to [`mad`].
pub fn mad_with(xs: &[f64], scratch: &mut Vec<f64>) -> Option<f64> {
    scratch.clear();
    scratch.extend_from_slice(xs);
    let m = median_in_place(scratch)?;
    scratch.clear();
    scratch.extend(xs.iter().map(|x| (x - m).abs()));
    median_in_place(scratch)
}

/// Consistency factor that scales a Gaussian sample's MAD to its σ.
pub const MAD_TO_SIGMA: f64 = 1.4826;

/// Linear-interpolated percentile, `p ∈ [0, 100]`.
/// Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(v[lo] * (1.0 - frac) + v[hi] * frac)
}

/// Root mean square. Returns `None` for an empty slice.
pub fn rms(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some((xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt())
    }
}

/// Empirical CDF evaluated at `points.len()` equally spaced fractions: for
/// each sorted sample returns `(value, fraction ≤ value)`. Used to print the
/// paper's CDF figures.
pub fn empirical_cdf(xs: &[f64]) -> Vec<(f64, f64)> {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in CDF input"));
    let n = v.len();
    v.into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n as f64))
        .collect()
}

/// Fraction of samples ≤ `threshold`.
pub fn fraction_below(xs: &[f64], threshold: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|&&x| x <= threshold).count() as f64 / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), Some(2.5));
        assert_eq!(variance(&xs), Some(1.25));
        assert!((std_dev(&xs).unwrap() - 1.25f64.sqrt()).abs() < 1e-15);
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn median_in_place_matches_sorting_median() {
        let cases: [&[f64]; 6] = [
            &[],
            &[7.5],
            &[3.0, 1.0],
            &[3.0, 1.0, 2.0],
            &[4.0, 1.0, 2.0, 3.0],
            &[0.5, -1.0, 2.25, 2.25, -3.0, 0.5, 9.0],
        ];
        for xs in cases {
            let mut buf = xs.to_vec();
            assert_eq!(median_in_place(&mut buf), median(xs), "input {xs:?}");
        }
        // Pseudo-random larger case.
        let xs: Vec<f64> = (0..101).map(|i| ((i * 7919) % 251) as f64 - 125.0).collect();
        let mut buf = xs.clone();
        assert_eq!(median_in_place(&mut buf), median(&xs));
        let xs: Vec<f64> = (0..100).map(|i| ((i * 104729) % 509) as f64).collect();
        let mut buf = xs.clone();
        assert_eq!(median_in_place(&mut buf), median(&xs));
    }

    #[test]
    fn mad_with_matches_mad() {
        let xs = [1.0, 1.1, 0.9, 1.05, 100.0, -2.0];
        let mut scratch = Vec::new();
        assert_eq!(mad_with(&xs, &mut scratch), mad(&xs));
        assert_eq!(mad_with(&[], &mut scratch), None);
    }

    #[test]
    fn mad_robust_to_outlier() {
        let clean = [1.0, 1.1, 0.9, 1.05, 0.95];
        let dirty = [1.0, 1.1, 0.9, 1.05, 100.0];
        let m_clean = mad(&clean).unwrap();
        let m_dirty = mad(&dirty).unwrap();
        assert!(m_dirty < 0.5, "MAD must shrug off one outlier, got {m_dirty}");
        assert!(m_clean <= m_dirty + 0.2);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(0.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert_eq!(percentile(&xs, 50.0), Some(2.0));
        assert_eq!(percentile(&xs, 25.0), Some(1.0));
        assert_eq!(percentile(&xs, 12.5), Some(0.5));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    #[should_panic]
    fn percentile_out_of_range_panics() {
        let _ = percentile(&[1.0], 101.0);
    }

    #[test]
    fn rms_known_value() {
        assert!((rms(&[3.0, 4.0]).unwrap() - (12.5f64).sqrt()).abs() < 1e-15);
        assert_eq!(rms(&[]), None);
    }

    #[test]
    fn cdf_monotone_and_complete() {
        let xs = [3.0, 1.0, 2.0];
        let cdf = empirical_cdf(&xs);
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0], (1.0, 1.0 / 3.0));
        assert_eq!(cdf[2], (3.0, 1.0));
        assert!(cdf.windows(2).all(|w| w[1].0 >= w[0].0 && w[1].1 >= w[0].1));
    }

    #[test]
    fn fraction_below_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(fraction_below(&xs, 2.5), 0.5);
        assert_eq!(fraction_below(&xs, 0.0), 0.0);
        assert_eq!(fraction_below(&[], 1.0), 0.0);
    }
}
