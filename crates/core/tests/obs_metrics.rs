//! Instrumentation-layer integration tests (compiled only with the `obs`
//! feature): the observability contract is that (a) the probes never
//! change *what* the pipeline computes — pinned by running the ordinary
//! equivalence suites under `--features obs` — and (b) every count-type
//! metric recorded by the parallel batch engine merges to exactly the
//! value a sequential run records, at any worker count, because workers
//! are merged in index order and counter addition is commutative.

#![cfg(feature = "obs")]

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfp_core::obs;
use rfp_core::RfPrism;
use rfp_geom::Vec2;
use rfp_obs::{MetricKind, Recorder, RunReport};
use rfp_sim::{Motion, Scene, SimTag};

/// Raw reads for `n` seeded random tags (a few moving, so the rejection
/// counters are exercised too).
fn random_tag_reads(
    scene: &Scene,
    n: usize,
    seed: u64,
) -> Vec<Vec<Vec<rfp_dsp::preprocess::RawRead>>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let region = scene.region();
            let pos = Vec2::new(
                rng.gen_range(region.min().x..region.max().x),
                rng.gen_range(region.min().y..region.max().y),
            );
            let alpha = rng.gen_range(0.0..std::f64::consts::PI);
            let motion = if i % 5 == 3 {
                Motion::planar_linear(pos, Vec2::new(0.05, 0.04), alpha)
            } else {
                Motion::planar_static(pos, alpha)
            };
            let tag = SimTag::with_seeded_diversity(i as u64)
                .with_motion(motion);
            scene.survey(&tag, seed ^ (i as u64).wrapping_mul(0x9e37)).per_antenna
        })
        .collect()
}

fn standard_prism(scene: &Scene) -> RfPrism {
    RfPrism::new(scene.antenna_poses(), scene.reader().plan)
        .with_region(scene.region())
}

/// Every counter's `(name, value)`, in table order.
fn counters(rec: &Recorder) -> Vec<(&'static str, u64)> {
    rec.metrics
        .defs()
        .iter()
        .enumerate()
        .filter(|(_, d)| d.kind == MetricKind::Counter)
        .map(|(i, d)| (d.name, rec.metrics.counter(i)))
        .collect()
}

/// Every histogram's `(name, observation count)`: counts are deterministic
/// across worker counts even though the timed values are wall-clock.
fn histogram_counts(rec: &Recorder) -> Vec<(&'static str, u64)> {
    rec.metrics
        .defs()
        .iter()
        .enumerate()
        .filter(|(_, d)| d.kind == MetricKind::Histogram)
        .map(|(i, d)| (d.name, rec.metrics.histogram(i).unwrap().count()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Count-type metrics from a parallel batch equal the sequential
    /// (`jobs = 1`) run's, for any tag count and worker count.
    #[test]
    fn merged_batch_counters_equal_sequential(
        n in 1usize..6,
        seed in 0u64..512,
        jobs in 2usize..9,
    ) {
        let scene = Scene::standard_2d();
        let prism = standard_prism(&scene);
        let tags = random_tag_reads(&scene, n, seed);

        let (_, seq) = rfp_obs::recorder::observe(obs::METRICS, || {
            prism.sense_batch(&tags, 1)
        });
        let (_, par) = rfp_obs::recorder::observe(obs::METRICS, || {
            prism.sense_batch(&tags, jobs)
        });

        prop_assert_eq!(counters(&seq), counters(&par));
        prop_assert_eq!(histogram_counts(&seq), histogram_counts(&par));
    }

    /// Histogram merges are partition-invariant: round-robin the same
    /// observation stream across any number of worker registries, merge
    /// them back in index order, and the result is bucket-for-bucket the
    /// single-registry histogram. This is the property that makes the
    /// latency histograms in a merged run report independent of `--jobs`
    /// (the observed *values* are wall-clock, but for a fixed value
    /// stream the merged counts are a pure function of the stream; the
    /// float `sum` is exact only up to addition-order rounding).
    #[test]
    fn histogram_merges_are_partition_invariant(
        values in proptest::collection::vec(0.0f64..20_000.0, 1..120),
        workers in 1usize..8,
    ) {
        use rfp_obs::Registry;
        let idx = obs::id::STREAMING_ADVANCE_LATENCY_US;

        let mut single = Registry::new(obs::METRICS);
        for &v in &values {
            single.observe(idx, v);
        }

        let mut shards: Vec<Registry> =
            (0..workers).map(|_| Registry::new(obs::METRICS)).collect();
        for (i, &v) in values.iter().enumerate() {
            shards[i % workers].observe(idx, v);
        }
        let mut merged = Registry::new(obs::METRICS);
        for shard in &shards {
            merged.merge(shard);
        }

        let m = merged.histogram(idx).unwrap();
        let s = single.histogram(idx).unwrap();
        prop_assert_eq!(m.bucket_counts(), s.bucket_counts());
        prop_assert_eq!(m.count(), s.count());
        // The sum is a float fold, so partitioning may shuffle the
        // addition order; it must still agree to machine precision.
        prop_assert!((m.sum() - s.sum()).abs() <= 1e-9 * s.sum().abs().max(1.0));
    }
}

/// The span forest of an observed batch run has the documented taxonomy:
/// one `sense_batch` root with the per-tag `sense` → `solve_2d` stages
/// grafted beneath it, with per-tag counts.
#[test]
fn batch_span_tree_has_the_documented_shape() {
    let scene = Scene::standard_2d();
    let prism = standard_prism(&scene);
    let mut rng = StdRng::seed_from_u64(77);
    let tags: Vec<_> = (0..4)
        .map(|i| {
            let pos = Vec2::new(rng.gen_range(0.0..1.0), rng.gen_range(1.0..2.0));
            let tag = SimTag::with_seeded_diversity(40 + i)
                .with_motion(Motion::planar_static(pos, 0.4));
            scene.survey(&tag, 500 + i).per_antenna
        })
        .collect();

    let (results, rec) = rfp_obs::recorder::observe(obs::METRICS, || {
        prism.sense_batch(&tags, 2)
    });
    let solved = results.iter().filter(|r| r.is_ok()).count() as u64;
    assert!(solved > 0, "fixture must solve at least one tag");

    let report = RunReport::from_recorder("test", &rec);
    let count_of = |path: &str| {
        report
            .spans
            .iter()
            .find(|s| s.path == path)
            .map(|s| s.count)
            .unwrap_or(0)
    };
    assert_eq!(count_of("sense_batch"), 1);
    assert_eq!(count_of("sense_batch/sense"), tags.len() as u64);
    assert_eq!(count_of("sense_batch/sense/extract"), tags.len() as u64);
    assert_eq!(count_of("sense_batch/sense/solve_2d"), solved);
    assert!(count_of("sense_batch/sense/solve_2d/stage1_slope") >= solved);
    for s in &report.spans {
        assert!(s.total_ns > 0, "span {} recorded no time", s.path);
    }
}

/// Detector verdict counters partition the assessed windows, and the
/// solver counter matches the number of successful solves.
#[test]
fn counters_are_consistent_with_results() {
    let scene = Scene::standard_2d();
    let prism = standard_prism(&scene);
    let tags = random_tag_reads(&scene, 8, 3);

    let (results, rec) = rfp_obs::recorder::observe(obs::METRICS, || {
        prism.sense_batch(&tags, 4)
    });
    let ok = results.iter().filter(|r| r.is_ok()).count() as u64;

    let m = &rec.metrics;
    assert_eq!(m.counter(obs::id::PIPELINE_WINDOWS_TOTAL), tags.len() as u64);
    assert_eq!(m.counter(obs::id::PIPELINE_WINDOWS_OK), ok);
    assert_eq!(m.counter(obs::id::SOLVER2D_SOLVES), ok);
    assert_eq!(m.counter(obs::id::BATCH_TAGS), tags.len() as u64);
    // Clean + multipath + moving == every window that reached the detector.
    let assessed = m.counter(obs::id::DETECTOR_WINDOWS_CLEAN)
        + m.counter(obs::id::DETECTOR_WINDOWS_MULTIPATH)
        + m.counter(obs::id::DETECTOR_WINDOWS_MOVING);
    let rejected = m.counter(obs::id::PIPELINE_WINDOWS_MOVING_REJECTED);
    assert_eq!(assessed, ok + rejected);
    // Solver work counters are nonzero whenever anything solved.
    if ok > 0 {
        assert!(m.counter(obs::id::SOLVER2D_ITERATIONS) > 0);
        assert!(m.counter(obs::id::SOLVER2D_RESIDUAL_EVALS) > 0);
    }
}

/// A run report produced from a real observed run survives a JSON
/// round-trip byte-exactly (schema v1).
#[test]
fn run_report_round_trips_through_json() {
    let scene = Scene::standard_2d();
    let prism = standard_prism(&scene);
    let tags = random_tag_reads(&scene, 3, 9);
    let (_, rec) = rfp_obs::recorder::observe(obs::METRICS, || {
        prism.sense_batch(&tags, 2)
    });
    let report = RunReport::from_recorder("round-trip", &rec)
        .with_meta("jobs", "2");
    let text = report.to_json().to_pretty();
    let back = RunReport::from_json(&text).expect("valid schema v1 report");
    assert_eq!(back, report);
    assert_eq!(back.to_json().to_pretty(), text, "serialisation is canonical");
}
