//! Property tests: the survey-log format round-trips arbitrary read data.

use proptest::prelude::*;
use rfp_cli::log::{SurveyLog, TagTruth};
use rfp_dsp::preprocess::RawRead;
use rfp_geom::{AntennaPose, Vec2, Vec3};
use rfp_phys::{FrequencyPlan, Material};

fn poses() -> Vec<AntennaPose> {
    (0..3)
        .map(|i| {
            AntennaPose::looking_at(
                Vec3::new(0.5 * i as f64, 0.0, 0.4 + 0.3 * i as f64),
                Vec3::new(0.5, 1.5, 0.0),
                0.3 * i as f64,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn log_round_trips_arbitrary_reads(
        reads in proptest::collection::vec(
            (0usize..50, 0.0f64..std::f64::consts::TAU, -80.0f64..-40.0, 0.0f64..10.0),
            1..80,
        ),
        tag_id in 0u64..1000,
        truth_x in -0.5f64..1.5,
        truth_y in 0.5f64..2.5,
        alpha in 0.0f64..std::f64::consts::PI,
        material_idx in 0usize..8,
        with_truth in proptest::bool::ANY,
    ) {
        let plan = FrequencyPlan::fcc_us();
        let mut per_antenna = vec![Vec::new(), Vec::new(), Vec::new()];
        for (i, &(ch, phase, rssi, t)) in reads.iter().enumerate() {
            per_antenna[i % 3].push(RawRead {
                channel: ch,
                frequency_hz: plan.frequency_hz(ch),
                phase,
                rssi_dbm: rssi,
                timestamp_s: t,
                phase_code: rfp_dsp::trig::code_for_phase(phase),
            });
        }
        let truth = with_truth.then(|| TagTruth {
            position: Vec2::new(truth_x, truth_y),
            alpha,
            material: Material::from_class_index(material_idx),
        });
        let mut log = SurveyLog::new(plan, poses());
        log.add_tag(tag_id, per_antenna.clone(), truth);

        let parsed = SurveyLog::from_text(&log.to_text()).expect("own format");
        let record = &parsed.tags[&tag_id];
        prop_assert_eq!(&record.per_antenna, &per_antenna);
        match (record.truth, truth) {
            (Some(a), Some(b)) => {
                prop_assert!((a.position.x - b.position.x).abs() < 1e-12);
                prop_assert!((a.alpha - b.alpha).abs() < 1e-12);
                prop_assert_eq!(a.material, b.material);
            }
            (None, None) => {}
            other => prop_assert!(false, "truth mismatch {:?}", other),
        }
    }
}
