//! BackPos-style hyperbolic positioning (extra baseline).
//!
//! BackPos (Liu et al., IEEE TMC'15) positions a tag from *differences* of
//! phase observations between antenna pairs, which cancels every
//! tag-common term — including, in the multi-frequency form implemented
//! here, the material slope `k_t`. Each pair constrains the tag to a
//! hyperbola `d_i − d_j = Δ_ij`; the intersection is found by nonlinear
//! least squares.
//!
//! This makes BackPos immune to material/orientation by construction, but
//! it throws away the common-mode information RF-Prism keeps: it estimates
//! position only (no orientation, no material parameters), and each
//! difference carries √2 of the per-antenna ranging noise.

use rfp_core::model::{extract_observation, ExtractConfig, ExtractError};
use rfp_core::solver::levenberg_marquardt as lm;
use rfp_dsp::preprocess::RawRead;
use rfp_geom::{AntennaPose, Region2, Vec2};
use rfp_phys::propagation;

/// Errors from [`BackPos::localize`].
#[derive(Debug, Clone, PartialEq)]
pub enum BackPosError {
    /// Fewer than three antennas yielded observations (two hyperbolas are
    /// needed for a 2-D fix).
    TooFewObservations {
        /// Usable antennas.
        usable: usize,
        /// First extraction failure, if any.
        first_error: Option<ExtractError>,
    },
}

impl std::fmt::Display for BackPosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackPosError::TooFewObservations { usable, .. } => {
                write!(f, "only {usable} usable antennas; BackPos needs at least 3")
            }
        }
    }
}

impl std::error::Error for BackPosError {}

/// The BackPos baseline localizer.
#[derive(Debug, Clone)]
pub struct BackPos {
    poses: Vec<AntennaPose>,
    region: Region2,
}

impl BackPos {
    /// Creates a localizer for antennas at `poses`, seeding its search over
    /// `region`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 3 poses are supplied.
    pub fn new(poses: Vec<AntennaPose>, region: Region2) -> Self {
        assert!(poses.len() >= 3, "BackPos needs at least three antennas");
        BackPos { poses, region }
    }

    /// Localizes a tag from one hop round of raw reads.
    ///
    /// # Errors
    ///
    /// [`BackPosError::TooFewObservations`] when fewer than 3 antennas
    /// yield usable observations.
    ///
    /// # Panics
    ///
    /// Panics if `reads_per_antenna.len()` differs from the pose count.
    pub fn localize(&self, reads_per_antenna: &[Vec<RawRead>]) -> Result<Vec2, BackPosError> {
        assert_eq!(
            reads_per_antenna.len(),
            self.poses.len(),
            "one read group per antenna"
        );
        let mut observations = Vec::new();
        let mut first_error = None;
        for (pose, reads) in self.poses.iter().zip(reads_per_antenna) {
            match extract_observation(*pose, reads, &ExtractConfig::paper()) {
                Ok(o) => observations.push(o),
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        if observations.len() < 3 {
            return Err(BackPosError::TooFewObservations {
                usable: observations.len(),
                first_error,
            });
        }

        // Pairwise range differences from slope differences (k_t cancels).
        let mut pairs = Vec::new();
        for i in 0..observations.len() {
            for j in (i + 1)..observations.len() {
                let delta = propagation::distance_from_slope(
                    observations[i].slope - observations[j].slope,
                );
                pairs.push((i, j, delta));
            }
        }
        let obs = &observations;
        let residual = move |p: &[f64], out: &mut Vec<f64>| {
            out.clear();
            let pos = Vec2::new(p[0], p[1]).with_z(0.0);
            for &(i, j, delta) in &pairs {
                let di = obs[i].pose.position().distance(pos);
                let dj = obs[j].pose.position().distance(pos);
                out.push((di - dj - delta) / 0.01);
            }
        };

        let mut best: Option<(Vec<f64>, f64)> = None;
        for seed in self.region.grid(5, 5) {
            let (p, cost) = lm(&residual, vec![seed.x, seed.y], &[1e-4, 1e-4], 60, 1e-12);
            let inside = self.region.expanded(0.3).contains(Vec2::new(p[0], p[1]));
            if inside && best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((p, cost));
            }
        }
        let (p, _) = best.unwrap_or_else(|| {
            let c = self.region.center();
            (vec![c.x, c.y], f64::INFINITY)
        });
        Ok(Vec2::new(p[0], p[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_phys::Material;
    use rfp_sim::{Motion, NoiseModel, ReaderConfig, Scene, SimTag};

    #[test]
    fn localizes_and_ignores_material() {
        let scene = Scene::standard_2d()
            .with_noise(NoiseModel::clean())
            .with_reader(ReaderConfig::ideal());
        let truth = Vec2::new(0.8, 1.3);
        let bp = BackPos::new(scene.antenna_poses(), scene.region());
        for m in [Material::Plastic, Material::Metal, Material::Water] {
            let tag = SimTag::nominal(1)
                .attached_to(m)
                .with_motion(Motion::planar_static(truth, 0.4));
            let survey = scene.survey(&tag, 9);
            let est = bp.localize(&survey.per_antenna).unwrap();
            let err_cm = est.distance(truth) * 100.0;
            assert!(err_cm < 15.0, "{m}: error {err_cm} cm");
        }
    }

    #[test]
    fn noisy_localization_reasonable() {
        let scene = Scene::standard_2d();
        let truth = Vec2::new(0.2, 1.9);
        let tag = SimTag::with_seeded_diversity(4)
            .with_motion(Motion::planar_static(truth, 1.2));
        let survey = scene.survey(&tag, 10);
        let bp = BackPos::new(scene.antenna_poses(), scene.region());
        let est = bp.localize(&survey.per_antenna).unwrap();
        assert!(est.distance(truth) < 0.5, "error {}", est.distance(truth));
    }

    #[test]
    fn too_few_antennas() {
        let scene = Scene::standard_2d();
        let bp = BackPos::new(scene.antenna_poses(), scene.region());
        assert!(matches!(
            bp.localize(&[Vec::new(), Vec::new(), Vec::new()]),
            Err(BackPosError::TooFewObservations { usable: 0, .. })
        ));
    }
}
