//! Asset tracking across sensing rounds: a cart carries a tagged crate
//! through the working region, pausing briefly at each shelf bay. Every
//! pause yields one clean hop round; the Kalman tracker stitches the
//! per-round estimates into a trajectory and bridges the rounds the error
//! detector rejects while the cart rolls.
//!
//! ```text
//! cargo run --release --example asset_tracking
//! ```

use rf_prism::core::tracking::{TagTracker, TrackerConfig};
use rf_prism::core::SenseError;
use rf_prism::prelude::*;

fn main() {
    let scene = Scene::standard_2d();
    let prism = RfPrism::new(scene.antenna_poses(), scene.reader().plan)
        .with_region(scene.region());
    let mut tracker = TagTracker::new(TrackerConfig {
        acceleration_std: 0.002,
        measurement_std: 0.06,
    });

    // The cart's stop-and-go route: (bay position, rounds it stays there).
    let route = [
        (Vec2::new(-0.30, 0.90), 2usize),
        (Vec2::new(0.20, 1.30), 2),
        (Vec2::new(0.80, 1.70), 3),
        (Vec2::new(1.30, 2.20), 2),
    ];
    let round_duration = scene.reader().round_duration_s();
    let tag = SimTag::with_seeded_diversity(12).attached_to(Material::Wood);

    println!("tracking crate #12 through {} bays\n", route.len());
    let mut round_idx = 0u64;
    let mut time = 0.0;
    let mut previous: Option<Vec2> = None;
    for (bay, (position, dwell_rounds)) in route.iter().enumerate() {
        // Transit between bays: the tag moves during these rounds and the
        // detector rejects them.
        if let Some(prev) = previous {
            let transit = tag.with_motion(Motion::planar_linear(
                prev,
                (*position - prev) / round_duration,
                0.3,
            ));
            let survey = scene.survey(&transit, 1000 + round_idx);
            round_idx += 1;
            time += round_duration;
            match prism.sense(&survey.per_antenna) {
                Err(SenseError::TagMoving { .. }) => {
                    tracker.predict_to(time);
                    println!(
                        "round {round_idx:2}: in transit — window rejected, predicted \
                         position {}",
                        tracker
                            .position()
                            .map(|p| format!("({:+.2}, {:.2})", p.x, p.y))
                            .unwrap_or_else(|| "—".into())
                    );
                }
                other => println!("round {round_idx:2}: unexpected outcome {other:?}"),
            }
        }
        // Dwell at the bay: clean rounds feed the tracker.
        for _ in 0..*dwell_rounds {
            let parked = tag.with_motion(Motion::planar_static(*position, 0.3));
            let survey = scene.survey(&parked, 2000 + round_idx);
            round_idx += 1;
            time += round_duration;
            let result = prism.sense(&survey.per_antenna).expect("parked crate");
            let filtered = tracker.observe(result.estimate.position, time);
            println!(
                "round {round_idx:2}: bay {bay} — raw ({:+.2}, {:.2}), filtered \
                 ({:+.2}, {:.2}), err {:.1} cm",
                result.estimate.position.x,
                result.estimate.position.y,
                filtered.x,
                filtered.y,
                filtered.distance(*position) * 100.0
            );
        }
        previous = Some(*position);
    }

    let v = tracker.velocity().unwrap_or(Vec2::ZERO);
    println!();
    println!(
        "final state: position {}, residual velocity {:.1} mm/s",
        tracker
            .position()
            .map(|p| format!("({:+.2}, {:.2}) m", p.x, p.y))
            .unwrap_or_else(|| "—".into()),
        v.norm() * 1000.0
    );
}
