//! Polarization-induced phase (Eq. 4 of the paper).
//!
//! When a circularly-polarized reader antenna illuminates a linearly-
//! polarized tag dipole, the angle of the dipole within the antenna's
//! transverse `(u, v)` plane rotates the phase of the backscattered signal.
//! The paper (after [3D-OmniTrack, IPSN'19]) models this as
//!
//! ```text
//! tan(θ_orient) = 2 (u·w)(v·w) / ((u·w)² − (v·w)²)
//! ```
//!
//! where `w` is the tag's (unit) dipole direction. Writing `u·w = p cos ψ`,
//! `v·w = p sin ψ` with `ψ` the in-plane polarization angle shows that this
//! is exactly `θ_orient = 2ψ`: the round trip through a circular-to-linear
//! polarization conversion doubles the geometric rotation. Two consequences
//! the rest of the system relies on:
//!
//! * `θ_orient` is **frequency independent** — it moves the intercept of the
//!   phase-vs-frequency line, never the slope (paper Fig. 5);
//! * dipoles are π-symmetric, and because of the angle doubling `θ_orient`
//!   is 2π-periodic in ψ — orientation is recoverable modulo π.

use rfp_geom::{AntennaPose, Vec3};

/// Orientation phase `θ_orient` (radians, in `(-π, π]`) for a tag dipole
/// direction `w` observed by `antenna` (Eq. 4).
///
/// `w` need not be normalized; only its direction matters. If `w` is
/// (numerically) parallel to the antenna boresight the in-plane angle is
/// undefined and `0.0` is returned — the projection magnitude
/// ([`projection_magnitude`]) is 0 there, so the simulator reports no
/// usable signal in that configuration anyway.
///
/// # Example
///
/// ```
/// use rfp_geom::{AntennaPose, Vec3};
/// use rfp_phys::polarization::orientation_phase;
/// let a = AntennaPose::looking_at(Vec3::ZERO, Vec3::Y, 0.0);
/// // Dipole along the antenna's u axis: ψ = 0 → θ_orient = 0.
/// assert!(orientation_phase(&a, a.u()).abs() < 1e-12);
/// // Rotating the dipole by 45° in the transverse plane shifts phase by 90°.
/// let w = (a.u() + a.v()).normalized();
/// assert!((orientation_phase(&a, w) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
/// ```
pub fn orientation_phase(antenna: &AntennaPose, w: Vec3) -> f64 {
    let uw = antenna.u().dot(w);
    let vw = antenna.v().dot(w);
    if uw * uw + vw * vw < 1e-24 {
        return 0.0;
    }
    // atan2 of the double angle: tan(2ψ) = 2 uw·vw / (uw² − vw²).
    (2.0 * uw * vw).atan2(uw * uw - vw * vw)
}

/// In-plane polarization angle ψ (radians) of dipole `w` in the antenna's
/// `(u, v)` frame, in `(-π, π]`. `θ_orient = 2ψ` (mod 2π).
pub fn in_plane_angle(antenna: &AntennaPose, w: Vec3) -> f64 {
    antenna.v().dot(w).atan2(antenna.u().dot(w))
}

/// Magnitude of the dipole's projection onto the antenna's transverse plane,
/// for a unit `w`: 1 when the dipole is fully transverse, 0 when it points
/// along the boresight (no coupling; the tag cannot be read).
pub fn projection_magnitude(antenna: &AntennaPose, w: Vec3) -> f64 {
    let uw = antenna.u().dot(w);
    let vw = antenna.v().dot(w);
    (uw * uw + vw * vw).sqrt()
}

/// Unit dipole direction of a tag mounted on a surface *facing* the antenna
/// rack, rotated by `alpha` radians from horizontal — the `w` vector of the
/// 2-D experiments.
///
/// The rotation happens in the x–z plane (the plane transverse to the
/// antennas' roughly-+y boresights). This matches the paper's setup: tags
/// sit on the front faces of objects in the working region and are rotated
/// on those faces. A dipole rotating *within* the horizontal plane that
/// contains the boresights would barely rotate about any boresight axis and
/// its orientation would be nearly unobservable — a physical fact of Eq. 4,
/// not an implementation limit.
#[inline]
pub fn planar_dipole(alpha: f64) -> Vec3 {
    Vec3::new(alpha.cos(), 0.0, alpha.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_geom::angle;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn antenna() -> AntennaPose {
        AntennaPose::looking_at(Vec3::ZERO, Vec3::Y, 0.0)
    }

    #[test]
    fn doubles_in_plane_angle() {
        let a = antenna();
        for deg in [-80.0, -45.0, -10.0, 0.0, 15.0, 30.0, 60.0, 89.0] {
            let psi = f64::to_radians(deg);
            // Build a dipole at in-plane angle ψ.
            let w = a.u() * psi.cos() + a.v() * psi.sin();
            let th = orientation_phase(&a, w);
            assert!(
                angle::distance(th, 2.0 * psi) < 1e-12,
                "deg={deg} th={th} want {}",
                2.0 * psi
            );
        }
    }

    #[test]
    fn pi_symmetric_dipole_same_phase() {
        let a = antenna();
        let w = planar_dipole(0.7);
        let th1 = orientation_phase(&a, w);
        let th2 = orientation_phase(&a, -w);
        assert!(angle::distance(th1, th2) < 1e-12);
    }

    #[test]
    fn frequency_independent_by_construction() {
        // Nothing in Eq. 4 depends on f; this test documents the invariant
        // by checking the function signature uses geometry only.
        let a = antenna();
        let w = planar_dipole(1.0);
        let th = orientation_phase(&a, w);
        assert!(th.is_finite());
    }

    #[test]
    fn scale_invariant_in_w() {
        let a = antenna();
        let w = Vec3::new(0.3, 0.1, 0.2);
        assert!(
            (orientation_phase(&a, w) - orientation_phase(&a, w * 7.5)).abs() < 1e-12
        );
    }

    #[test]
    fn boresight_dipole_degenerate() {
        let a = antenna();
        assert_eq!(orientation_phase(&a, a.boresight()), 0.0);
        assert!(projection_magnitude(&a, a.boresight()) < 1e-12);
    }

    #[test]
    fn projection_magnitude_range() {
        let a = antenna();
        assert!((projection_magnitude(&a, a.u()) - 1.0).abs() < 1e-12);
        let tilted = (a.u() + a.boresight()).normalized();
        let p = projection_magnitude(&a, tilted);
        assert!((p - (0.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn roll_shifts_orientation_phase() {
        // Rolling the antenna by ρ shifts θ_orient by −2ρ: this is what makes
        // tag orientation observable from intercept differences between
        // antennas with distinct rolls.
        let a0 = antenna();
        let a45 = a0.with_roll(PI / 4.0);
        let w = planar_dipole(0.4);
        let d = angle::difference(orientation_phase(&a45, w), orientation_phase(&a0, w));
        assert!(angle::distance(d, -FRAC_PI_2) < 1e-12, "d={d}");
    }

    #[test]
    fn in_plane_angle_consistent() {
        let a = antenna();
        let w = planar_dipole(0.9);
        let psi = in_plane_angle(&a, w);
        let th = orientation_phase(&a, w);
        assert!(angle::distance(th, 2.0 * psi) < 1e-12);
    }
}
