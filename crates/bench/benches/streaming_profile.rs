//! Streaming-advance profile: what one sliding-window advance costs
//! through the incremental engine versus a full batch recompute of the
//! same window (DESIGN.md §8).
//!
//! A `StreamingSession` holds per-(antenna, channel) running accumulators
//! — circular-statistic phasor sums, fused unwrap+OLS moment sums and the
//! robust-refit state — that **update** as reads arrive and **downdate**
//! as reads expire, so advancing the window by one reader dwell (the
//! cadence at which new channel data lands) costs O(new + expired reads)
//! plus the warm solve, instead of re-running the whole front end over
//! every retained read. The baseline is the production batch path
//! (`RfPrism::sense_reusing`) over the same retained `DEPTH`-round
//! window, warm-started the same way — what a batch engine must pay to
//! emit an estimate at the same cadence — so the ratio isolates exactly
//! what the incremental accumulators save.
//!
//! Two scenario rows: the paper's standard quantized reader (`Table` trig
//! backend — phasors resolved by exact code lookups at push time) and an
//! ideal continuous-phase reader driven through the `Recurrence` backend
//! (phasors advanced by complex rotation with periodic renormalization).
//!
//! Writes a `BENCH_streaming.json` snapshot at the repo root (override
//! with `STREAMING_PROFILE_OUT`); `scripts/bench_gate` regenerates it
//! with `STREAMING_PROFILE_QUICK=1` and enforces the standard row's ≥4×
//! advance speedup and <5% refit-fallback rate.

use rfp_bench::report;
use rfp_core::{RfPrism, RfPrismConfig, SenseWorkspace, WarmStart};
use rfp_geom::Vec2;
use rfp_obs::JsonValue;
use rfp_sim::{stream_rounds, Motion, Scene, SimTag, StreamRound};
use std::hint::black_box;
use std::time::Instant;

/// `STREAMING_PROFILE_QUICK=1` trims the rounds for the CI perf gate.
fn quick_mode() -> bool {
    std::env::var("STREAMING_PROFILE_QUICK")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    sorted[((sorted.len() as f64 * q) as usize).min(sorted.len() - 1)]
}

/// One scenario row: a reader/trig-backend pairing measured over the same
/// replayed stream through both engines.
struct Row {
    backend: &'static str,
    advance_p50: f64,
    advance_p90: f64,
    batch_p50: f64,
    speedup: f64,
    fallback_rate: f64,
    retained_reads: usize,
}

impl Row {
    fn json(&self) -> JsonValue {
        let round2 = |x: f64| (x * 100.0).round() / 100.0;
        JsonValue::obj(vec![
            ("backend", JsonValue::Str(self.backend.into())),
            ("advance_p50_us", JsonValue::Num(round2(self.advance_p50))),
            ("advance_p90_us", JsonValue::Num(round2(self.advance_p90))),
            ("batch_recompute_p50_us", JsonValue::Num(round2(self.batch_p50))),
            ("advance_speedup_p50", JsonValue::Num(round2(self.speedup))),
            ("fallback_rate", JsonValue::Num((self.fallback_rate * 1e4).round() / 1e4)),
            ("retained_reads", JsonValue::Num(self.retained_reads as f64)),
        ])
    }
}

/// The standard-window scenario keeps this many hop rounds of history:
/// the window always spans `DEPTH` rounds of retained reads, which is
/// what the batch baseline must recompute on every advance (`O(window)`).
const DEPTH: usize = 4;

/// Streaming advances per hop round: one per reader dwell, the cadence
/// at which new channel data actually lands. Each advance pushes/expires
/// only that dwell's reads (`k ≈ reads-per-dwell × antennas`), so the
/// incremental engine pays `O(k)` where the batch engine pays the full
/// `DEPTH`-round recompute to emit an estimate at the same rate.
const ADVANCES_PER_ROUND: usize = 50;

/// Replays `rounds` through a streaming session (one timed sample per
/// dwell advance) and through the warm batch path on the same retained
/// windows, both in steady state after `warmup` rounds.
fn profile_stream(
    backend: &'static str,
    scene: &Scene,
    config: RfPrismConfig,
    rounds: &[StreamRound],
    warmup: usize,
) -> Row {
    let prism = RfPrism::new(scene.antenna_poses(), scene.reader().plan)
        .with_region(scene.region())
        .with_config(config);
    let antennas = scene.antenna_poses().len();
    let span = DEPTH as f64 * scene.reader().round_duration_s();

    // Streaming engine: after each dwell lands, push its reads, advance,
    // recycle. The push loop is part of the timed advance — it IS the
    // O(new reads) update work the incremental engine pays.
    let mut session = prism.sense_streaming(span);
    let mut advance_us: Vec<f64> = Vec::with_capacity(rounds.len() * ADVANCES_PER_ROUND);
    let mut fallbacks = 0u64;
    let mut measured = 0usize;
    let mut cursors = vec![0usize; antennas];
    for (i, round) in rounds.iter().enumerate() {
        let dwell_s =
            (round.end_time_s - round.start_time_s) / ADVANCES_PER_ROUND as f64;
        cursors.iter_mut().for_each(|c| *c = 0);
        for slice in 0..ADVANCES_PER_ROUND {
            let end_t = round.start_time_s + (slice + 1) as f64 * dwell_s;
            let t0 = Instant::now();
            for (antenna, reads) in round.per_antenna.iter().enumerate() {
                let cursor = &mut cursors[antenna];
                while *cursor < reads.len()
                    && (reads[*cursor].timestamp_s < end_t
                        || slice + 1 == ADVANCES_PER_ROUND)
                {
                    session.push(antenna, &reads[*cursor]);
                    *cursor += 1;
                }
            }
            let result = session.advance(black_box(end_t));
            let dt = t0.elapsed().as_secs_f64() * 1e6;
            match result {
                Ok(result) => {
                    black_box(&result.estimate);
                    session.recycle(result);
                }
                // The very first round starts from an empty window; until
                // enough channels have been dwelt on there is nothing to
                // fit yet.
                Err(e) => assert_eq!(i, 0, "unusable window: {e}"),
            }
            if i >= warmup {
                advance_us.push(dt);
                fallbacks += session.last_advance_fallbacks();
                measured += 1;
            }
        }
    }
    let retained = session.retained_reads();

    // Batch baseline: full front-end recompute over the same retained
    // `DEPTH`-round window, warm-started identically (the solve cost
    // cancels; the front end is the contrast). Assembling the window is
    // done outside the timer — the baseline is charged only for the
    // recompute itself, not for buffer management.
    let cache = prism.batch_cache();
    let mut ws = SenseWorkspace::default();
    let mut warm: Option<WarmStart> = None;
    let mut batch_us: Vec<f64> = Vec::with_capacity(rounds.len());
    let mut window: Vec<Vec<rfp_dsp::preprocess::RawRead>> = vec![Vec::new(); antennas];
    for (i, _) in rounds.iter().enumerate() {
        for (antenna, buf) in window.iter_mut().enumerate() {
            buf.clear();
            for round in &rounds[i.saturating_sub(DEPTH - 1)..=i] {
                buf.extend_from_slice(&round.per_antenna[antenna]);
            }
        }
        let t0 = Instant::now();
        let result = prism
            .sense_reusing(&cache, black_box(&window), warm.as_ref(), &mut ws)
            .expect("usable window");
        let dt = t0.elapsed().as_secs_f64() * 1e6;
        warm = Some(WarmStart::from_estimate(&result.estimate));
        ws.recycle(result);
        if i >= warmup {
            batch_us.push(dt);
        }
    }

    advance_us.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite times"));
    batch_us.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let advance_p50 = percentile(&advance_us, 0.5);
    let batch_p50 = percentile(&batch_us, 0.5);
    Row {
        backend,
        advance_p50,
        advance_p90: percentile(&advance_us, 0.9),
        batch_p50,
        speedup: batch_p50 / advance_p50,
        // Fallbacks are per antenna window, advances per dwell.
        fallback_rate: fallbacks as f64 / (measured * antennas) as f64,
        retained_reads: retained,
    }
}

fn main() {
    report::header(
        "streaming_profile",
        "incremental sliding-window advance vs full batch recompute per hop round",
    );
    if quick_mode() {
        println!("(quick mode: reduced rounds)");
    }
    let (warmup, measured) = if quick_mode() { (10, 120) } else { (25, 600) };
    let n_rounds = warmup + measured;
    let tag = SimTag::with_seeded_diversity(3)
        .with_motion(Motion::planar_static(Vec2::new(0.4, 1.5), 0.9));

    let mut rows: Vec<Row> = Vec::new();

    // Standard scenario: the paper's quantized R420 reader; push-time
    // phasors come from the exact phase-code tables.
    let scene = Scene::standard_2d();
    let rounds = stream_rounds(&scene, &tag, n_rounds, 31);
    rows.push(profile_stream("table", &scene, RfPrismConfig::paper(), &rounds, warmup));

    // Continuous-phase scenario: ideal reader, phasor-recurrence backend
    // (complex rotation with periodic renormalization, no per-read libm).
    let scene = Scene::standard_2d().with_reader(rfp_sim::ReaderConfig::ideal());
    let rounds = stream_rounds(&scene, &tag, n_rounds, 31);
    let config = RfPrismConfig::paper().with_trig(rfp_dsp::TrigProvider::Recurrence);
    rows.push(profile_stream("recurrence", &scene, config, &rounds, warmup));

    for row in &rows {
        println!(
            "  {:<10} advance p50 {:>7.2} p90 {:>7.2}   batch p50 {:>7.2}   speedup ×{:.2}   \
             fallback rate {:.2}%   ({} retained reads)",
            row.backend,
            row.advance_p50,
            row.advance_p90,
            row.batch_p50,
            row.speedup,
            row.fallback_rate * 100.0,
            row.retained_reads,
        );
    }

    let standard = &rows[0];
    let value = rfp_obs::report::snapshot(
        "streaming_profile",
        vec![
            (
                "units",
                JsonValue::obj(vec![(
                    "latency",
                    JsonValue::Str("microseconds per whole-tag window advance (p50/p90)".into()),
                )]),
            ),
            // Gate metrics: the standard (quantized-reader) row's
            // amortized advance must stay ≥4× under the batch recompute
            // and its refit-fallback rate under 5%.
            ("advance_speedup_p50", JsonValue::Num((standard.speedup * 100.0).round() / 100.0)),
            (
                "fallback_rate",
                JsonValue::Num((standard.fallback_rate * 1e4).round() / 1e4),
            ),
            ("rows", JsonValue::Arr(rows.iter().map(Row::json).collect())),
        ],
    );
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_streaming.json");
    let path =
        std::env::var("STREAMING_PROFILE_OUT").unwrap_or_else(|_| default_path.to_string());
    match rfp_obs::report::write_json(std::path::Path::new(&path), &value) {
        Ok(()) => println!("\nsnapshot written to {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}
