//! Raw-read pre-processing: π-jump correction, per-channel aggregation and
//! cross-channel unwrapping.
//!
//! A COTS reader reports, for every successful inventory of a tag, the
//! channel it was read on, a phase in `[0, 2π)` and an RSSI. Three artifacts
//! must be repaired before the readings can be fitted to a line
//! (the paper's *signal pre-processing module*):
//!
//! 1. **π jumps** — ImpinJ-class readers resolve the backscatter phase only
//!    up to π; a random half of the reads come back shifted by exactly π.
//!    Within one channel the true phase is constant, so the reads form two
//!    antipodal clusters. We recover the channel phase with the
//!    double-angle trick (doubling maps both clusters onto one), then pick
//!    the cluster that holds the **majority** of reads to resolve which of
//!    `θ` / `θ+π` is the true value. This keeps the *absolute* phase
//!    correct, which matters because the line intercept carries the
//!    orientation information.
//! 2. **Per-channel noise** — multiple reads per 200 ms dwell are averaged
//!    (circularly) to beat down thermal phase noise.
//! 3. **2π folding** — across channels the phase walks many turns; standard
//!    unwrapping restores a continuous line (channel spacing is 500 kHz, so
//!    the true inter-channel increment is ≪ π for any realistic geometry).
//!
//! All per-read trigonometry goes through a pluggable backend
//! ([`TrigProvider`], selected per call via [`PreprocessConfig::trig`]):
//! quantized phase-**code tables** when the reads carry their 12-bit
//! reader codes (bit-identical to libm by construction), a bounded-error
//! **polynomial** for continuous synthetic phases, or plain **libm**. The
//! per-read phasors are computed in flat lane columns (4-wide unrolled)
//! before a scalar in-order scatter into the per-channel accumulators, so
//! the trig work autovectorizes while every per-channel sum keeps the
//! reference summation order — and hence its bits.

use crate::trig::{self, hit, TrigProvider};
use crate::workspace::FrontEndWorkspace;
use rfp_geom::angle;

/// One raw read report from the reader.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawRead {
    /// Channel index into the session's frequency plan.
    pub channel: usize,
    /// Centre frequency of that channel, Hz.
    pub frequency_hz: f64,
    /// Reported phase, wrapped into `[0, 2π)` (may contain a π jump).
    pub phase: f64,
    /// Reported RSSI, dBm.
    pub rssi_dbm: f64,
    /// Read timestamp, seconds since the start of the hop sequence.
    pub timestamp_s: f64,
    /// The reader's 12-bit phase code when `phase` sits exactly on the
    /// LLRP quantization grid (`phase == code · 2π/4096` bitwise), `None`
    /// for continuous/synthetic phases. Attach via
    /// [`crate::trig::code_for_phase`]; codes ≥ 4096
    /// are treated modulo 4096 by the table backend. Carrying the code
    /// lets [`TrigProvider::Table`] replace every per-read libm call with
    /// an exact table lookup.
    pub phase_code: Option<u16>,
}

/// Aggregated, corrected observation for one channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelObservation {
    /// Channel index.
    pub channel: usize,
    /// Centre frequency, Hz.
    pub frequency_hz: f64,
    /// Unwrapped phase (continuous across channels), radians.
    pub phase: f64,
    /// Mean RSSI over the channel's reads, dBm.
    pub rssi_dbm: f64,
    /// Number of raw reads aggregated.
    pub read_count: usize,
    /// Circular spread of the (π-corrected) reads, radians — a per-channel
    /// quality indicator.
    pub phase_spread: f64,
}

/// Configuration for [`preprocess_reads`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreprocessConfig {
    /// Whether to run π-jump correction (on for COTS-reader data).
    pub correct_pi_jumps: bool,
    /// Channels with fewer reads than this are dropped.
    pub min_reads_per_channel: usize,
    /// Trigonometry backend for the per-read phasor computations. The
    /// default, [`TrigProvider::Table`], is bit-identical to
    /// [`TrigProvider::Libm`] on every input (table hits for reads with
    /// phase codes, libm otherwise) and fastest on quantized reader data.
    pub trig: TrigProvider,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            correct_pi_jumps: true,
            min_reads_per_channel: 1,
            trig: TrigProvider::default(),
        }
    }
}

/// Errors from [`preprocess_reads`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreprocessError {
    /// No channel had enough reads.
    NoUsableChannels,
}

impl std::fmt::Display for PreprocessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PreprocessError::NoUsableChannels => {
                write!(f, "no channel had enough reads to aggregate")
            }
        }
    }
}

impl std::error::Error for PreprocessError {}

/// Runs the full pre-processing pipeline on one antenna's raw reads and
/// returns per-channel observations sorted by frequency, with phases
/// unwrapped across channels.
///
/// # Errors
///
/// Returns [`PreprocessError::NoUsableChannels`] when every channel has
/// fewer than `config.min_reads_per_channel` reads.
///
/// # Example
///
/// ```
/// use rfp_dsp::preprocess::{preprocess_reads, PreprocessConfig, RawRead};
///
/// let reads = vec![
///     RawRead { channel: 0, frequency_hz: 902.75e6, phase: 1.0, rssi_dbm: -50.0, timestamp_s: 0.0, phase_code: None },
///     RawRead { channel: 0, frequency_hz: 902.75e6, phase: 1.0 + std::f64::consts::PI, rssi_dbm: -50.0, timestamp_s: 0.01, phase_code: None },
///     RawRead { channel: 0, frequency_hz: 902.75e6, phase: 1.02, rssi_dbm: -50.0, timestamp_s: 0.02, phase_code: None },
///     RawRead { channel: 1, frequency_hz: 903.25e6, phase: 1.06, rssi_dbm: -50.0, timestamp_s: 0.2, phase_code: None },
/// ];
/// let obs = preprocess_reads(&reads, &PreprocessConfig::default())?;
/// assert_eq!(obs.len(), 2);
/// // The π-jumped read was folded back onto the majority cluster:
/// assert!((obs[0].phase - 1.0).abs() < 0.05);
/// # Ok::<(), rfp_dsp::preprocess::PreprocessError>(())
/// ```
pub fn preprocess_reads(
    reads: &[RawRead],
    config: &PreprocessConfig,
) -> Result<Vec<ChannelObservation>, PreprocessError> {
    let mut ws = FrontEndWorkspace::default();
    let mut out = Vec::new();
    preprocess_reads_with(&mut ws, reads, config, &mut out)?;
    Ok(out)
}

/// [`preprocess_reads`] against caller-owned scratch: per-channel
/// aggregation runs over the workspace's flat SoA accumulator columns
/// (two passes over the raw reads — no per-channel `Vec`s, no map), the
/// unwrap operates in the workspace's phase column, and writing the final
/// observations simultaneously feeds the fused unwrap+OLS accumulator
/// ([`FrontEndWorkspace::raw_fit`]) and the fit columns
/// ([`FrontEndWorkspace::fit_columns`]). `out` is cleared and refilled;
/// in steady state (buffer capacities reached) the call performs **zero**
/// heap allocations.
///
/// Produces bit-identical observations to [`preprocess_reads`] (which
/// delegates here): the streamed per-channel circular statistics
/// accumulate in the same read order, and the order-statistic medians and
/// unstable index sorts reproduce the original stable orderings exactly.
///
/// # Errors
///
/// As [`preprocess_reads`].
pub fn preprocess_reads_with(
    ws: &mut FrontEndWorkspace,
    reads: &[RawRead],
    config: &PreprocessConfig,
    out: &mut Vec<ChannelObservation>,
) -> Result<(), PreprocessError> {
    use std::f64::consts::{FRAC_PI_2, PI};

    ws.reset_channels();
    out.clear();
    let min_reads = config.min_reads_per_channel.max(1);

    // Pass 1: per-channel counts, first read, RSSI, and the per-read
    // phasors — sin/cos of the doubled angle in π-jump mode (the
    // double-angle trick maps both antipodal clusters onto one) or of
    // the plain phase otherwise — accumulated into the per-channel
    // circular sums. Iterating the reads in input order keeps every
    // per-channel accumulation in that channel's read order — the same
    // summation order as the per-channel vectors of the reference
    // implementation, hence bit-identical sums. The slot of each read is
    // recorded so the fold and vote passes skip the branchy slot lookup.
    //
    // The table backend fuses lookup and scatter into this single pass
    // (a table hit is two loads — staging it through lane columns would
    // cost more memory traffic than it saves); the polynomial and libm
    // backends compute the phasors into the flat `read_sin`/`read_cos`
    // lane columns first (4-wide unrolled chunks the compiler can
    // autovectorize, and libm calls pipeline better without the
    // bookkeeping interleaved), then scatter in a scalar pass.
    if config.trig == TrigProvider::Table {
        let scale = if config.correct_pi_jumps { 2.0 } else { 1.0 };
        for r in reads.iter() {
            let s = ws.slot(r.channel);
            ws.read_slot.push(s as u32);
            if ws.count[s] == 0 {
                ws.first_freq[s] = r.frequency_hz;
                ws.first_phase[s] = r.phase;
            }
            ws.count[s] += 1;
            ws.sum_rssi[s] += r.rssi_dbm;
            let (sin, cos) = match r.phase_code {
                Some(code) => {
                    ws.trig_hits[hit::TABLE] += 1;
                    if config.correct_pi_jumps {
                        trig::table_double_sin_cos(code)
                    } else {
                        trig::table_sin_cos(code)
                    }
                }
                None => {
                    // `1.0 · p` is exactly `p`, so one scaled expression
                    // serves both modes without perturbing bit-identity.
                    ws.trig_hits[hit::LIBM] += 1;
                    let x = scale * r.phase;
                    (x.sin(), x.cos())
                }
            };
            ws.acc_sin[s] += sin;
            ws.acc_cos[s] += cos;
        }
    } else {
        fill_phasors(
            config.trig,
            reads,
            config.correct_pi_jumps,
            &mut ws.read_sin,
            &mut ws.read_cos,
            &mut ws.trig_hits,
        );
        // Explicit 4-wide lane unroll over the accumulator scatter: the
        // phasor lanes are loaded four at a time into named registers
        // before the per-read bookkeeping, matching the lane width of the
        // fill above. The four element bodies stay *sequential in index
        // order*, so per-slot sums accumulate in exactly the scalar
        // order — bit-identical even when a 4-block hits one slot twice.
        let n = reads.len();
        let mut i = 0;
        while i + 4 <= n {
            let (s0, s1, s2, s3) =
                (ws.read_sin[i], ws.read_sin[i + 1], ws.read_sin[i + 2], ws.read_sin[i + 3]);
            let (c0, c1, c2, c3) =
                (ws.read_cos[i], ws.read_cos[i + 1], ws.read_cos[i + 2], ws.read_cos[i + 3]);
            scatter_read(ws, &reads[i], s0, c0);
            scatter_read(ws, &reads[i + 1], s1, c1);
            scatter_read(ws, &reads[i + 2], s2, c2);
            scatter_read(ws, &reads[i + 3], s3, c3);
            i += 4;
        }
        while i < n {
            let (sin, cos) = (ws.read_sin[i], ws.read_cos[i]);
            scatter_read(ws, &reads[i], sin, cos);
            i += 1;
        }
    }

    // Per-slot axis (and, without π correction, the spread too — it comes
    // from the same resultant vector as the mean).
    let mut kept = 0usize;
    for s in 0..ws.slots() {
        let n = ws.count[s];
        ws.keep[s] = n >= min_reads;
        if !ws.keep[s] {
            continue;
        }
        kept += 1;
        let (sin, cos) = (ws.acc_sin[s], ws.acc_cos[s]);
        let r = (sin * sin + cos * cos).sqrt() / n as f64;
        if config.correct_pi_jumps {
            // circular_mean(2p).unwrap_or(2·p₀) / 2, streamed.
            let doubled_mean = if r < 1e-12 { 2.0 * ws.first_phase[s] } else { sin.atan2(cos) };
            ws.axis[s] = doubled_mean / 2.0;
        } else {
            ws.axis[s] = if r < 1e-12 { ws.first_phase[s] } else { sin.atan2(cos) };
            ws.spread[s] = (-2.0 * r.clamp(1e-300, 1.0).ln()).sqrt();
        }
    }
    if kept == 0 {
        return Err(PreprocessError::NoUsableChannels);
    }

    // Pass 2 (π-jump mode): fold every read onto its channel axis and
    // accumulate the folded resultant for the per-channel spread. Table
    // hits resolve to the base or π-shifted table by the fold decision,
    // fused into the scatter; the polynomial and libm backends compute
    // the folded phasors into the lane columns first, then scatter in
    // read order (reads of dropped channels contribute `(0, 0)` lanes
    // into slots whose fold sums are never read, keeping that scatter
    // branch-free).
    if config.correct_pi_jumps {
        if config.trig == TrigProvider::Table {
            // Fused fold for the table backend: decision, lookup and
            // accumulation in one pass, in input order (bit-identical
            // sums, as in pass 1).
            for (i, r) in reads.iter().enumerate() {
                let s = ws.read_slot[i] as usize;
                if !ws.keep[s] {
                    continue;
                }
                let p = r.phase;
                let shift = wrapped_distance(p, ws.axis[s]) > FRAC_PI_2;
                let (sin, cos) = match r.phase_code {
                    Some(code) => {
                        ws.trig_hits[hit::TABLE] += 1;
                        if shift {
                            trig::table_shift_sin_cos(code)
                        } else {
                            trig::table_sin_cos(code)
                        }
                    }
                    None => {
                        ws.trig_hits[hit::LIBM] += 1;
                        let folded = if shift { p + PI } else { p };
                        (folded.sin(), folded.cos())
                    }
                };
                ws.fold_sin[s] += sin;
                ws.fold_cos[s] += cos;
            }
        } else {
            fill_fold_phasors(
                config.trig,
                reads,
                &ws.read_slot,
                &ws.axis,
                &ws.keep,
                &mut ws.read_sin,
                &mut ws.read_cos,
                &mut ws.trig_hits,
            );
            // Same 4-wide lane unroll as the pass-1 scatter: load four
            // slot indices and four phasor lanes, then accumulate the
            // four element bodies sequentially in index order (bit-
            // identical per-slot sums under intra-block slot collisions).
            let FrontEndWorkspace {
                read_slot, read_sin, read_cos, fold_sin, fold_cos, ..
            } = &mut *ws;
            let n = reads.len();
            let mut i = 0;
            while i + 4 <= n {
                let (t0, t1, t2, t3) = (
                    read_slot[i] as usize,
                    read_slot[i + 1] as usize,
                    read_slot[i + 2] as usize,
                    read_slot[i + 3] as usize,
                );
                let (s0, s1, s2, s3) =
                    (read_sin[i], read_sin[i + 1], read_sin[i + 2], read_sin[i + 3]);
                let (c0, c1, c2, c3) =
                    (read_cos[i], read_cos[i + 1], read_cos[i + 2], read_cos[i + 3]);
                fold_sin[t0] += s0;
                fold_cos[t0] += c0;
                fold_sin[t1] += s1;
                fold_cos[t1] += c1;
                fold_sin[t2] += s2;
                fold_cos[t2] += c2;
                fold_sin[t3] += s3;
                fold_cos[t3] += c3;
                i += 4;
            }
            while i < n {
                let s = read_slot[i] as usize;
                fold_sin[s] += read_sin[i];
                fold_cos[s] += read_cos[i];
                i += 1;
            }
        }
        for s in 0..ws.slots() {
            if !ws.keep[s] {
                continue;
            }
            let (sin, cos) = (ws.fold_sin[s], ws.fold_cos[s]);
            let r = ((sin * sin + cos * cos).sqrt() / ws.count[s] as f64).min(1.0);
            ws.spread[s] = (-2.0 * r.max(1e-300).ln()).sqrt();
        }
    }

    // Sort the kept slots ascending in frequency. The reference
    // implementation stable-sorts channels that arrive in ascending
    // channel-id order (BTreeMap iteration), so (frequency, channel) as an
    // unstable total order reproduces its ordering exactly.
    ws.order.clear();
    ws.order.extend((0..ws.slots()).filter(|&s| ws.keep[s]));
    {
        let first_freq = &ws.first_freq;
        let chan = &ws.chan;
        ws.order.sort_unstable_by(|&a, &b| {
            first_freq[a]
                .partial_cmp(&first_freq[b])
                .expect("finite frequencies")
                .then_with(|| chan[a].cmp(&chan[b]))
        });
    }

    // Wrapped per-channel phases in sorted order, then cross-channel
    // unwrap in place.
    ws.phase_col.clear();
    for &s in &ws.order {
        ws.phase_col.push(angle::wrap_tau(ws.axis[s]));
    }
    if config.correct_pi_jumps {
        // The per-channel axes are only known modulo π: unwrap them with
        // period π into a continuous curve, then resolve the single global
        // π ambiguity by a majority vote over *every* raw read (far more
        // robust than voting channel by channel).
        angle::unwrap_in_place_period(&mut ws.phase_col, PI);
        for (k, &s) in ws.order.iter().enumerate() {
            ws.unwrapped[s] = ws.phase_col[k];
        }
        let mut votes_axis = 0usize;
        let mut votes_total = 0usize;
        for (i, r) in reads.iter().enumerate() {
            let s = ws.read_slot[i] as usize;
            debug_assert_eq!(ws.slot_if_seen(r.channel), Some(s), "stale read_slot");
            if !ws.keep[s] {
                continue;
            }
            votes_total += 1;
            if wrapped_distance(r.phase, ws.unwrapped[s]) <= FRAC_PI_2 {
                votes_axis += 1;
            }
        }
        if 2 * votes_axis < votes_total {
            for p in &mut ws.phase_col {
                *p += PI;
            }
        }
    } else {
        angle::unwrap_in_place(&mut ws.phase_col);
    }

    // Emit the final observations; the same loop feeds the fused
    // unwrap+OLS accumulator and the (freq, phase) fit columns, so the
    // raw line fit afterwards needs no further pass over the window.
    for k in 0..ws.order.len() {
        let s = ws.order[k];
        let freq = ws.first_freq[s];
        let phase = ws.phase_col[k];
        out.push(ChannelObservation {
            channel: ws.chan[s],
            frequency_hz: freq,
            phase,
            rssi_dbm: ws.sum_rssi[s] / ws.count[s] as f64,
            read_count: ws.count[s],
            phase_spread: ws.spread[s],
        });
        ws.emit(freq, phase);
    }
    Ok(())
}

/// `angle::distance(a, b)`, fast-pathed for the per-read hot loops.
///
/// `angle::distance` reaches `f64::rem_euclid`, whose `%` is a libm
/// `fmod` call — the single most expensive operation left in the fold and
/// vote passes once the trig is table-backed. For `|a - b| < τ` (every
/// real window: raw phases live in `[0, 2π)` and channel axes in
/// `(-π, π]`) the `rem_euclid` reduces to at most one add of `τ`, which
/// this helper replays branch by branch:
///
/// * `d ∈ [0, τ)`: `fmod(d, τ) = d` exactly, and `rem_euclid` returns it
///   unchanged — as does the fast path.
/// * `d ∈ (-τ, 0)`: `fmod(d, τ) = d` exactly (fmod is exact and keeps
///   the sign), then `rem_euclid` computes the *floating* add `d + τ` —
///   the identical expression the fast path evaluates, so even when that
///   add rounds (tiny `|d|` → exactly `τ`) both paths round the same way.
///
/// The subsequent `≥ τ` and `> π` adjustments are copied verbatim from
/// `wrap_tau`/`wrap_pi`, so the fast path is **bit-identical** to
/// `angle::distance` on its range; anything else (|d| ≥ τ, NaN) falls
/// back to the real thing. The frozen reference path keeps calling
/// `angle::distance`, and the bit-identity property suites compare the
/// two implementations on every window they generate.
#[inline(always)]
pub(crate) fn wrapped_distance(a: f64, b: f64) -> f64 {
    use std::f64::consts::{PI, TAU};
    let d = a - b;
    if d > -TAU && d < TAU {
        let w = if d < 0.0 { d + TAU } else { d };
        let w = if w >= TAU { w - TAU } else { w };
        let w = if w > PI { w - TAU } else { w };
        w.abs()
    } else {
        angle::distance(a, b)
    }
}

/// One element body of the pass-1 accumulator scatter: slot bookkeeping
/// plus the circular-sum accumulation of one read's phasor. Kept as a
/// named `#[inline(always)]` body so the 4-wide unrolled scatter and its
/// scalar remainder loop are the same code by construction (bit-identity
/// of the lane-unrolled pass is pinned against
/// [`crate::reference::preprocess_reads`]).
#[inline(always)]
fn scatter_read(ws: &mut FrontEndWorkspace, r: &RawRead, sin: f64, cos: f64) {
    let s = ws.slot(r.channel);
    ws.read_slot.push(s as u32);
    if ws.count[s] == 0 {
        ws.first_freq[s] = r.frequency_hz;
        ws.first_phase[s] = r.phase;
    }
    ws.count[s] += 1;
    ws.sum_rssi[s] += r.rssi_dbm;
    ws.acc_sin[s] += sin;
    ws.acc_cos[s] += cos;
}

/// Fills the per-read phasor lanes: `(sin_out[i], cos_out[i])` becomes
/// `sin/cos` of `reads[i].phase` (or of the doubled angle
/// `2.0 · phase` when `doubled`), computed by the selected backend.
/// `hits` tallies per-backend evaluations. [`TrigProvider::Table`] never
/// reaches here — its lookups are fused directly into the caller's
/// scatter pass (a table hit is two loads; staging it through the lanes
/// would cost more memory traffic than it saves).
fn fill_phasors(
    trig: TrigProvider,
    reads: &[RawRead],
    doubled: bool,
    sin_out: &mut Vec<f64>,
    cos_out: &mut Vec<f64>,
    hits: &mut [u64; 4],
) {
    let n = reads.len();
    sin_out.clear();
    sin_out.resize(n, 0.0);
    cos_out.clear();
    cos_out.resize(n, 0.0);
    // `1.0 · p` is exactly `p`, so one scaled expression serves both the
    // doubled and plain lanes without perturbing libm bit-identity.
    let scale = if doubled { 2.0 } else { 1.0 };
    match trig {
        TrigProvider::Table => unreachable!("table lookups are fused into the caller"),
        TrigProvider::Polynomial => {
            hits[hit::POLY] += n as u64;
            let mut rs = reads.chunks_exact(4);
            let mut ss = sin_out.chunks_exact_mut(4);
            let mut cs = cos_out.chunks_exact_mut(4);
            for ((r, s), c) in (&mut rs).zip(&mut ss).zip(&mut cs) {
                let (s0, c0) = trig::poly_sin_cos(scale * r[0].phase);
                let (s1, c1) = trig::poly_sin_cos(scale * r[1].phase);
                let (s2, c2) = trig::poly_sin_cos(scale * r[2].phase);
                let (s3, c3) = trig::poly_sin_cos(scale * r[3].phase);
                s[0] = s0;
                s[1] = s1;
                s[2] = s2;
                s[3] = s3;
                c[0] = c0;
                c[1] = c1;
                c[2] = c2;
                c[3] = c3;
            }
            let rem = rs.remainder();
            for ((r, s), c) in rem.iter().zip(ss.into_remainder()).zip(cs.into_remainder()) {
                let (ps, pc) = trig::poly_sin_cos(scale * r.phase);
                *s = ps;
                *c = pc;
            }
        }
        TrigProvider::Libm => {
            hits[hit::LIBM] += n as u64;
            for ((r, s), c) in reads.iter().zip(sin_out.iter_mut()).zip(cos_out.iter_mut()) {
                let x = scale * r.phase;
                *s = x.sin();
                *c = x.cos();
            }
        }
        TrigProvider::Recurrence => {
            // Sequential by construction: each phasor rotates from the
            // previous read's angle (reads inside one dwell are near-
            // constant in phase, so most advances are one complex
            // rotation; dwell hops re-anchor through the polynomial).
            hits[hit::RECURRENCE] += n as u64;
            let mut rec = trig::PhasorRecurrence::new();
            for ((r, s), c) in reads.iter().zip(sin_out.iter_mut()).zip(cos_out.iter_mut()) {
                let (rs, rc) = rec.advance(scale * r.phase);
                *s = rs;
                *c = rc;
            }
        }
    }
}

/// Fills the fold-pass phasor lanes: for each read of a kept channel,
/// `(sin_out[i], cos_out[i])` becomes `sin/cos` of the phase folded onto
/// its channel axis (`p` when within π/2 of the axis, `p + π`
/// otherwise). Reads of dropped channels get inert `(0, 0)` lanes (their
/// slots' fold sums are never read). The polynomial and libm backends
/// stage the folded angles in the cos lane, then transform it;
/// [`TrigProvider::Table`] never reaches here (fused into the caller's
/// fold scatter, as in pass 1).
#[allow(clippy::too_many_arguments)]
fn fill_fold_phasors(
    trig: TrigProvider,
    reads: &[RawRead],
    read_slot: &[u32],
    axis: &[f64],
    keep: &[bool],
    sin_out: &mut Vec<f64>,
    cos_out: &mut Vec<f64>,
    hits: &mut [u64; 4],
) {
    use std::f64::consts::{FRAC_PI_2, PI};

    let n = reads.len();
    sin_out.clear();
    sin_out.resize(n, 0.0);
    cos_out.clear();
    cos_out.resize(n, 0.0);
    match trig {
        TrigProvider::Table => unreachable!("table lookups are fused into the caller"),
        TrigProvider::Recurrence => {
            // The recurrence tracks the *base* phase trajectory and
            // resolves a fold by negation — `sin/cos(p + π) = −sin/cos p`
            // exactly — so a π-jumped read costs a sign flip instead of
            // breaking the rotation chain with a π-sized re-anchor.
            hits[hit::RECURRENCE] += n as u64;
            let mut rec = trig::PhasorRecurrence::new();
            for i in 0..n {
                let s = read_slot[i] as usize;
                let p = reads[i].phase;
                let (bs, bc) = rec.advance(p);
                if !keep[s] {
                    continue;
                }
                if wrapped_distance(p, axis[s]) <= FRAC_PI_2 {
                    sin_out[i] = bs;
                    cos_out[i] = bc;
                } else {
                    sin_out[i] = -bs;
                    cos_out[i] = -bc;
                }
            }
        }
        TrigProvider::Polynomial | TrigProvider::Libm => {
            for i in 0..n {
                let s = read_slot[i] as usize;
                let p = reads[i].phase;
                cos_out[i] = if !keep[s] {
                    0.0
                } else if wrapped_distance(p, axis[s]) <= FRAC_PI_2 {
                    p
                } else {
                    p + PI
                };
            }
            if trig == TrigProvider::Polynomial {
                hits[hit::POLY] += n as u64;
                let mut i = 0;
                while i + 4 <= n {
                    let (s0, c0) = trig::poly_sin_cos(cos_out[i]);
                    let (s1, c1) = trig::poly_sin_cos(cos_out[i + 1]);
                    let (s2, c2) = trig::poly_sin_cos(cos_out[i + 2]);
                    let (s3, c3) = trig::poly_sin_cos(cos_out[i + 3]);
                    sin_out[i] = s0;
                    sin_out[i + 1] = s1;
                    sin_out[i + 2] = s2;
                    sin_out[i + 3] = s3;
                    cos_out[i] = c0;
                    cos_out[i + 1] = c1;
                    cos_out[i + 2] = c2;
                    cos_out[i + 3] = c3;
                    i += 4;
                }
                while i < n {
                    let (ps, pc) = trig::poly_sin_cos(cos_out[i]);
                    sin_out[i] = ps;
                    cos_out[i] = pc;
                    i += 1;
                }
            } else {
                hits[hit::LIBM] += n as u64;
                for i in 0..n {
                    let x = cos_out[i];
                    sin_out[i] = x.sin();
                    cos_out[i] = x.cos();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn read(channel: usize, phase: f64) -> RawRead {
        RawRead {
            channel,
            frequency_hz: 902.75e6 + channel as f64 * 0.5e6,
            phase: angle::wrap_tau(phase),
            rssi_dbm: -55.0,
            timestamp_s: channel as f64 * 0.2,
            phase_code: None,
        }
    }

    /// A read whose phase is snapped to the reader grid, carrying its code.
    fn quantized_read(channel: usize, phase: f64) -> RawRead {
        let lsb = crate::trig::PHASE_LSB_RAD;
        let snapped = angle::wrap_tau((angle::wrap_tau(phase) / lsb).round() * lsb);
        RawRead {
            phase: snapped,
            phase_code: crate::trig::code_for_phase(snapped),
            ..read(channel, 0.0)
        }
    }

    #[test]
    fn aggregates_per_channel() {
        let reads = vec![read(0, 1.0), read(0, 1.1), read(1, 1.2), read(1, 1.3)];
        let obs = preprocess_reads(&reads, &PreprocessConfig::default()).unwrap();
        assert_eq!(obs.len(), 2);
        assert_eq!(obs[0].read_count, 2);
        assert!((obs[0].phase - 1.05).abs() < 1e-9);
        assert_eq!(obs[0].channel, 0);
        assert!((obs[0].rssi_dbm + 55.0).abs() < 1e-12);
    }

    #[test]
    fn pi_jump_minority_is_folded_back() {
        // 5 reads, 2 jumped by π: the majority cluster must win.
        let reads = vec![
            read(0, 0.5),
            read(0, 0.52),
            read(0, 0.5 + PI),
            read(0, 0.48),
            read(0, 0.51 + PI),
        ];
        let obs = preprocess_reads(&reads, &PreprocessConfig::default()).unwrap();
        assert!((obs[0].phase - 0.5).abs() < 0.05, "phase={}", obs[0].phase);
        assert!(obs[0].phase_spread < 0.1);
    }

    #[test]
    fn pi_jump_near_wrap_boundary() {
        // True phase near 0; jumped reads near π. Wrapping must not confuse
        // the vote.
        let reads = vec![read(0, 0.02), read(0, -0.03), read(0, 0.01 + PI)];
        let obs = preprocess_reads(&reads, &PreprocessConfig::default()).unwrap();
        assert!(
            angle::distance(obs[0].phase, 0.0) < 0.05,
            "phase={}",
            obs[0].phase
        );
    }

    #[test]
    fn unwraps_across_channels() {
        // Steep line: 1.1 rad per channel, wraps several times over 20 channels.
        let true_line = |c: usize| 0.3 + 1.1 * c as f64;
        let reads: Vec<RawRead> = (0..20).map(|c| read(c, true_line(c))).collect();
        let obs = preprocess_reads(&reads, &PreprocessConfig::default()).unwrap();
        for w in obs.windows(2) {
            assert!(
                ((w[1].phase - w[0].phase) - 1.1).abs() < 1e-6,
                "increment {}",
                w[1].phase - w[0].phase
            );
        }
    }

    #[test]
    fn min_reads_filter_drops_thin_channels() {
        let reads = vec![read(0, 1.0), read(0, 1.0), read(1, 2.0)];
        let cfg = PreprocessConfig { min_reads_per_channel: 2, ..Default::default() };
        let obs = preprocess_reads(&reads, &cfg).unwrap();
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].channel, 0);
    }

    #[test]
    fn empty_input_errors() {
        assert_eq!(
            preprocess_reads(&[], &PreprocessConfig::default()).unwrap_err(),
            PreprocessError::NoUsableChannels
        );
    }

    #[test]
    fn correction_can_be_disabled() {
        let reads = vec![read(0, 0.5), read(0, 0.5 + PI)];
        let cfg = PreprocessConfig { correct_pi_jumps: false, ..Default::default() };
        // With correction off the two antipodal reads average to something
        // near the midpoint (circular mean undefined-ish); just check we get
        // an observation and do not crash.
        let obs = preprocess_reads(&reads, &cfg).unwrap();
        assert_eq!(obs[0].read_count, 2);
    }

    #[test]
    fn channels_sorted_by_frequency() {
        let reads = vec![read(5, 1.0), read(1, 0.5), read(3, 0.7)];
        let obs = preprocess_reads(&reads, &PreprocessConfig::default()).unwrap();
        let freqs: Vec<f64> = obs.iter().map(|o| o.frequency_hz).collect();
        assert!(freqs.windows(2).all(|w| w[1] > w[0]));
    }

    /// Window mixing quantized (coded) and continuous reads across both
    /// π-jump modes: the table backend must be bit-identical to libm.
    #[test]
    fn table_backend_is_bit_identical_to_libm() {
        let mut reads = Vec::new();
        for c in 0..12usize {
            for k in 0..5usize {
                let p = 0.3 + 1.7 * c as f64 + 0.21 * k as f64
                    + if k % 2 == 1 { PI } else { 0.0 };
                reads.push(quantized_read(c, p));
                reads.push(read(c, p + 0.005));
            }
        }
        for &pi_jumps in &[true, false] {
            let libm_cfg = PreprocessConfig {
                correct_pi_jumps: pi_jumps,
                trig: crate::trig::TrigProvider::Libm,
                ..Default::default()
            };
            let table_cfg = PreprocessConfig {
                trig: crate::trig::TrigProvider::Table,
                ..libm_cfg
            };
            let libm_obs = preprocess_reads(&reads, &libm_cfg).unwrap();
            let table_obs = preprocess_reads(&reads, &table_cfg).unwrap();
            assert_eq!(libm_obs, table_obs, "pi_jumps={pi_jumps}");
        }
    }

    /// The workspace tallies which backend served each per-read phasor.
    #[test]
    fn trig_hit_counters_split_table_and_libm_fallback() {
        // 3 coded + 2 continuous reads on one channel, π-jump mode: two
        // phasor passes (double-angle + fold) over every read.
        let reads = vec![
            quantized_read(0, 0.4),
            quantized_read(0, 0.41),
            quantized_read(0, 0.4 + PI),
            read(0, 0.42),
            read(0, 0.43),
        ];
        let mut ws = FrontEndWorkspace::default();
        let mut out = Vec::new();
        preprocess_reads_with(&mut ws, &reads, &PreprocessConfig::default(), &mut out)
            .unwrap();
        assert_eq!(ws.trig_hits(), [6, 0, 4, 0]);

        let poly_cfg = PreprocessConfig {
            trig: crate::trig::TrigProvider::Polynomial,
            ..Default::default()
        };
        preprocess_reads_with(&mut ws, &reads, &poly_cfg, &mut out).unwrap();
        assert_eq!(ws.trig_hits(), [0, 10, 0, 0]);

        let rec_cfg = PreprocessConfig {
            trig: crate::trig::TrigProvider::Recurrence,
            ..Default::default()
        };
        preprocess_reads_with(&mut ws, &reads, &rec_cfg, &mut out).unwrap();
        assert_eq!(ws.trig_hits(), [0, 0, 0, 10]);
    }

    /// Polynomial backend stays within its documented error bound end to
    /// end (continuous phases, steep line, π jumps).
    #[test]
    fn polynomial_backend_tracks_libm_closely() {
        let reads: Vec<RawRead> = (0..20)
            .flat_map(|c| {
                (0..4).map(move |k| {
                    read(c, 0.3 + 1.1 * c as f64 + if k % 2 == 0 { 0.0 } else { PI })
                })
            })
            .collect();
        let libm_obs = preprocess_reads(
            &reads,
            &PreprocessConfig { trig: crate::trig::TrigProvider::Libm, ..Default::default() },
        )
        .unwrap();
        let poly_obs = preprocess_reads(
            &reads,
            &PreprocessConfig {
                trig: crate::trig::TrigProvider::Polynomial,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(libm_obs.len(), poly_obs.len());
        for (l, p) in libm_obs.iter().zip(&poly_obs) {
            assert_eq!(l.channel, p.channel);
            assert!((l.phase - p.phase).abs() < 1e-9, "{} vs {}", l.phase, p.phase);
            // spread = √(−2 ln r) has unbounded derivative at r → 1, so a
            // ~1e-14 phasor error can move a near-zero spread by ~1e-7.
            assert!((l.phase_spread - p.phase_spread).abs() < 1e-6);
        }
    }

    /// The stateful phasor-recurrence backend stays within its documented
    /// error bound end to end on a dwell-like stream (near-constant phase
    /// within a channel, hops between channels, random π jumps).
    #[test]
    fn recurrence_backend_tracks_libm_closely() {
        let reads: Vec<RawRead> = (0..20)
            .flat_map(|c| {
                (0..8).map(move |k| {
                    read(
                        c,
                        0.3 + 1.1 * c as f64
                            + 0.004 * k as f64
                            + if (c * 7 + k) % 3 == 0 { PI } else { 0.0 },
                    )
                })
            })
            .collect();
        let libm_obs = preprocess_reads(
            &reads,
            &PreprocessConfig { trig: crate::trig::TrigProvider::Libm, ..Default::default() },
        )
        .unwrap();
        let rec_obs = preprocess_reads(
            &reads,
            &PreprocessConfig {
                trig: crate::trig::TrigProvider::Recurrence,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(libm_obs.len(), rec_obs.len());
        for (l, r) in libm_obs.iter().zip(&rec_obs) {
            assert_eq!(l.channel, r.channel);
            assert!((l.phase - r.phase).abs() < 1e-9, "{} vs {}", l.phase, r.phase);
            assert!((l.phase_spread - r.phase_spread).abs() < 1e-6);
        }
    }

    /// The 4-wide lane-unrolled scatter passes are bit-identical to the
    /// frozen reference: odd read counts (remainder loop) and repeated
    /// same-channel reads *inside* one 4-block (intra-block slot
    /// collisions) must not perturb a single bit.
    #[test]
    fn lane_unrolled_scatter_is_bit_identical_to_reference() {
        // 3 channels × 7 reads interleaved so most 4-blocks hit the same
        // slot at least twice; 21 reads total exercises the remainder.
        let mut reads = Vec::new();
        for k in 0..7usize {
            for c in 0..3usize {
                reads.push(read(c, 0.4 + 1.3 * c as f64 + 0.01 * k as f64
                    + if (k + c) % 2 == 0 { PI } else { 0.0 }));
            }
        }
        for &pi_jumps in &[true, false] {
            let cfg = PreprocessConfig {
                correct_pi_jumps: pi_jumps,
                trig: crate::trig::TrigProvider::Libm,
                ..Default::default()
            };
            let fused = preprocess_reads(&reads, &cfg).unwrap();
            let reference = crate::reference::preprocess_reads(&reads, &cfg).unwrap();
            assert_eq!(fused.len(), reference.len(), "pi_jumps={pi_jumps}");
            for (f, r) in fused.iter().zip(&reference) {
                assert_eq!(f.channel, r.channel);
                assert_eq!(f.phase.to_bits(), r.phase.to_bits(), "pi_jumps={pi_jumps}");
                assert_eq!(f.phase_spread.to_bits(), r.phase_spread.to_bits());
                assert_eq!(f.rssi_dbm.to_bits(), r.rssi_dbm.to_bits());
            }
        }
    }
}
