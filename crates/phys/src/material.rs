//! Material database for the paper's eight-class identification task.
//!
//! Attaching a tag to a target changes the tag antenna's impedance: the
//! target's permittivity loads the antenna and detunes its resonance, and
//! the target's conductivity adds loss. The paper observes (Fig. 6) that the
//! resulting device phase is close to linear in frequency with a
//! material-specific slope and intercept, and identifies the material from
//! those parameters.
//!
//! Each material here carries three dielectric parameters:
//!
//! * `permittivity` — relative permittivity ε_r of the bulk material at
//!   ~915 MHz (standard literature values);
//! * `coupling` — dimensionless near-field coupling coefficient κ ∈ [0, 1]:
//!   how much of the tag antenna's fringing field actually passes through
//!   the material (solids touch the tag; liquids sit behind a bottle wall,
//!   so their effective κ is smaller). The effective loading permittivity is
//!   `ε_eff = 1 + κ (ε_r − 1)`;
//! * `loss` — aggregate dissipation factor that divides the resonator's Q
//!   (`Q_eff = Q / (1 + loss)`) and attenuates the backscatter amplitude.
//!
//! The values are tuned so that the *pattern* of the paper holds: water and
//! skim milk are near-neighbours (the paper's dominant confusion, Fig. 11),
//! metal detunes hardest and reflects most, oil behaves almost like a dry
//! solid, and wood/plastic sit close together among the solids.

use std::fmt;

/// One of the eight target materials of the paper's evaluation, or the bare
/// (unattached) tag used for device calibration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Material {
    /// Bare tag in free space (calibration reference; not a class).
    FreeSpace,
    /// Solid wood block.
    Wood,
    /// Solid plastic (the paper's "does not affect the signal" carrier).
    Plastic,
    /// Glass.
    Glass,
    /// Metal box (tag separated by two sheets of paper, as in the paper).
    Metal,
    /// Tap water in a glass bottle.
    Water,
    /// Skim milk in a glass bottle.
    SkimMilk,
    /// Edible oil in a glass bottle.
    EdibleOil,
    /// 75 % medical alcohol in a glass bottle.
    Alcohol,
}

impl Material {
    /// The eight classification targets, in the paper's presentation order
    /// (four solids, then four liquids). Excludes [`Material::FreeSpace`].
    pub const CLASSES: [Material; 8] = [
        Material::Wood,
        Material::Plastic,
        Material::Glass,
        Material::Metal,
        Material::Water,
        Material::SkimMilk,
        Material::EdibleOil,
        Material::Alcohol,
    ];

    /// Class index in [`Material::CLASSES`], or `None` for
    /// [`Material::FreeSpace`].
    pub fn class_index(self) -> Option<usize> {
        Material::CLASSES.iter().position(|&m| m == self)
    }

    /// Inverse of [`Material::class_index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    pub fn from_class_index(index: usize) -> Material {
        Material::CLASSES[index]
    }

    /// Relative permittivity ε_r at ~915 MHz.
    pub fn permittivity(self) -> f64 {
        match self {
            Material::FreeSpace => 1.0,
            Material::Wood => 2.0,
            Material::Plastic => 2.3,
            Material::Glass => 5.5,
            // Not a dielectric constant in the usual sense: stands in for the
            // strong reactive loading of a conductor behind a thin spacer.
            Material::Metal => 15.0,
            Material::Water => 78.0,
            Material::SkimMilk => 70.0,
            Material::EdibleOil => 3.0,
            Material::Alcohol => 30.0,
        }
    }

    /// Near-field coupling coefficient κ (see module docs).
    pub fn coupling(self) -> f64 {
        match self {
            Material::FreeSpace => 0.0,
            Material::Wood => 0.100,
            Material::Plastic => 0.031,
            Material::Glass => 0.056,
            Material::Metal => 0.064,
            Material::Water => 0.0078,
            Material::SkimMilk => 0.0080,
            Material::EdibleOil => 0.085,
            Material::Alcohol => 0.0145,
        }
    }

    /// Effective loading permittivity `ε_eff = 1 + κ (ε_r − 1)` seen by the
    /// tag antenna's fringing field.
    pub fn effective_permittivity(self) -> f64 {
        1.0 + self.coupling() * (self.permittivity() - 1.0)
    }

    /// Aggregate dissipation factor (divides the resonator Q).
    pub fn loss(self) -> f64 {
        match self {
            Material::FreeSpace => 0.0,
            Material::Wood => 0.10,
            Material::Plastic => 0.02,
            Material::Glass => 0.05,
            Material::Metal => 2.0,
            Material::Water => 1.5,
            Material::SkimMilk => 1.6,
            Material::EdibleOil => 0.10,
            Material::Alcohol => 2.5,
        }
    }

    /// Whether the material is electrically conductive enough to visibly
    /// disturb localization (the paper's Fig. 8/9 discussion: metal and the
    /// conductive liquids fare slightly worse).
    pub fn is_conductive(self) -> bool {
        self.loss() >= 1.0
    }

    /// Whether this is one of the four liquid classes.
    pub fn is_liquid(self) -> bool {
        matches!(
            self,
            Material::Water | Material::SkimMilk | Material::EdibleOil | Material::Alcohol
        )
    }

    /// Short lowercase label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Material::FreeSpace => "free-space",
            Material::Wood => "wood",
            Material::Plastic => "plastic",
            Material::Glass => "glass",
            Material::Metal => "metal",
            Material::Water => "water",
            Material::SkimMilk => "milk",
            Material::EdibleOil => "oil",
            Material::Alcohol => "alcohol",
        }
    }
}

impl fmt::Display for Material {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_classes_in_paper_order() {
        assert_eq!(Material::CLASSES.len(), 8);
        assert_eq!(Material::CLASSES[0], Material::Wood);
        assert_eq!(Material::CLASSES[7], Material::Alcohol);
    }

    #[test]
    fn class_index_round_trip() {
        for (i, &m) in Material::CLASSES.iter().enumerate() {
            assert_eq!(m.class_index(), Some(i));
            assert_eq!(Material::from_class_index(i), m);
        }
        assert_eq!(Material::FreeSpace.class_index(), None);
    }

    #[test]
    fn free_space_is_neutral() {
        assert_eq!(Material::FreeSpace.effective_permittivity(), 1.0);
        assert_eq!(Material::FreeSpace.loss(), 0.0);
    }

    #[test]
    fn effective_permittivity_ordering_matches_design() {
        // Metal detunes hardest, then the conductive liquids, then glass/oil,
        // then wood, then plastic.
        let e = |m: Material| m.effective_permittivity();
        assert!(e(Material::Metal) > e(Material::Water));
        assert!(e(Material::Water) > e(Material::Glass));
        assert!(e(Material::Glass) > e(Material::Wood));
        assert!(e(Material::Wood) > e(Material::Plastic));
        assert!(e(Material::Plastic) > 1.0);
    }

    #[test]
    fn water_and_milk_are_near_neighbours() {
        // The paper's dominant confusion pair must be close in loading.
        let d = (Material::Water.effective_permittivity()
            - Material::SkimMilk.effective_permittivity())
        .abs();
        assert!(d < 0.06, "water/milk loading gap {d} too large");
    }

    #[test]
    fn conductive_set_matches_paper_discussion() {
        assert!(Material::Metal.is_conductive());
        assert!(Material::Water.is_conductive());
        assert!(Material::SkimMilk.is_conductive());
        assert!(Material::Alcohol.is_conductive());
        assert!(!Material::Wood.is_conductive());
        assert!(!Material::EdibleOil.is_conductive());
    }

    #[test]
    fn liquids() {
        let liquids: Vec<_> =
            Material::CLASSES.iter().filter(|m| m.is_liquid()).collect();
        assert_eq!(liquids.len(), 4);
    }

    #[test]
    fn labels_unique_and_nonempty() {
        let mut labels: Vec<_> = Material::CLASSES.iter().map(|m| m.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 8);
        assert_eq!(format!("{}", Material::SkimMilk), "milk");
    }
}
