//! # RF-Prism — versatile RFID-based sensing through phase disentangling
//!
//! A from-scratch Rust reproduction of *RF-Prism: Versatile RFID-based
//! Sensing through Phase Disentangling* (Yang, Jin, He, Liu — ICDCS 2021).
//!
//! The phase a UHF RFID reader reports is the entangled sum of the
//! propagation distance, the tag's polarization orientation and the
//! device/material response. RF-Prism disentangles these by fitting the
//! phase across the reader's 50 hopping channels into a line per antenna
//! and jointly solving the resulting slope/intercept equations over three
//! or more antennas — recovering **location, orientation and material
//! simultaneously** from one hop round.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Crate | Role |
//! |---|---|
//! | [`geom`] | vectors, angles, poses, regions |
//! | [`phys`] | shared forward models (Eqs. 1–7 of the paper) |
//! | [`sim`]  | the COTS testbed simulator (reader, antennas, tags, noise, multipath, mobility) |
//! | [`dsp`]  | π-jump correction, unwrapping, line fitting, multipath suppression |
//! | [`ml`]   | KNN / SVM / decision tree / DTW / MLP, from scratch |
//! | [`core`] | the RF-Prism pipeline: disentangling solver, calibration, material ID, error detector |
//! | [`baselines`] | MobiTagbot, Tagtag and BackPos comparison systems |
//!
//! # Quick start
//!
//! ```
//! use rf_prism::prelude::*;
//!
//! // A simulated stand-in for the paper's testbed (3 antennas, R420).
//! let scene = Scene::standard_2d();
//! let tag = SimTag::with_seeded_diversity(42)
//!     .attached_to(Material::Glass)
//!     .with_motion(Motion::planar_static(Vec2::new(0.4, 1.3), 0.8));
//! let survey = scene.survey(&tag, 7);
//!
//! // Sense: position + orientation + material parameters in one shot.
//! let prism = RfPrism::new(scene.antenna_poses(), scene.reader().plan)
//!     .with_region(scene.region());
//! let result = prism.sense(&survey.per_antenna)?;
//! assert!(result.estimate.position.distance(Vec2::new(0.4, 1.3)) < 0.4);
//! # Ok::<(), rf_prism::core::SenseError>(())
//! ```
//!
//! See `examples/` for complete scenarios (chemical-lab inventory, a
//! conveyor line with the mobility error detector, the calibration
//! workflow) and `crates/bench` for the harness that regenerates every
//! figure of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rfp_baselines as baselines;
pub use rfp_core as core;
pub use rfp_dsp as dsp;
pub use rfp_geom as geom;
pub use rfp_ml as ml;
pub use rfp_phys as phys;
pub use rfp_sim as sim;

/// One-line import for the common API surface.
pub mod prelude {
    pub use rfp_core::{
        BatchCache, BatchCache3D, CalibrationDb, DeviceCalibration, JacobianMode, LaneMode,
        MaterialFeatures, MaterialIdentifier, MobilityVerdict, PruneStats, RfPrism,
        RfPrismConfig, SenseError, SenseWorkspace, SensingResult, SolveStats, SolverConfig,
        StepSolver, StreamingSession, TagEstimate2D, TagReads, TagRounds, WarmStart, WarmStart3D,
    };
    pub use rfp_geom::{AntennaPose, Region2, Vec2, Vec3};
    pub use rfp_phys::{FrequencyPlan, Material, TagElectrical};
    pub use rfp_sim::{
        stream_rounds, Antenna, HopSurvey, Motion, MultipathEnvironment, NoiseModel,
        ReaderConfig, Scene, SimTag, StreamRound,
    };
}
