//! Localization/orientation trial runner (Figs. 8, 9, 12, 14–16).

use crate::setup;
use rfp_core::SenseError;
use rfp_geom::{angle, Vec2};
use rfp_phys::Material;
use rfp_sim::Scene;

/// Specification of one sensing trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialSpec {
    /// Tag identity seed (manufacturing diversity).
    pub tag_seed: u64,
    /// Attached material.
    pub material: Material,
    /// True position.
    pub position: Vec2,
    /// True orientation, radians.
    pub alpha: f64,
    /// Measurement-noise seed.
    pub survey_seed: u64,
}

/// Outcome of one trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialOutcome {
    /// The spec that produced it.
    pub spec: TrialSpec,
    /// Localization error, metres.
    pub position_error_m: f64,
    /// Orientation error, radians (dipole distance, `[0, π/2]`).
    pub orientation_error_rad: f64,
    /// Estimated material slope `k_t`, rad/Hz.
    pub kt: f64,
    /// Distance region index of the true position.
    pub region: usize,
}

/// Runs RF-Prism on every spec against `scene`; specs whose window the
/// error detector rejects are skipped (the paper filters them out too).
///
/// # Panics
///
/// Panics on pipeline errors other than `TagMoving` — experiment harness
/// code fails loudly.
pub fn run_trials(scene: &Scene, specs: &[TrialSpec]) -> Vec<TrialOutcome> {
    let prism = setup::prism_for(scene);
    let mut outcomes = Vec::with_capacity(specs.len());
    for spec in specs {
        let tag = setup::place_tag(spec.tag_seed, spec.material, spec.position, spec.alpha);
        let survey = scene.survey(&tag, spec.survey_seed);
        match prism.sense(&survey.per_antenna) {
            Ok(result) => outcomes.push(TrialOutcome {
                spec: *spec,
                position_error_m: result.estimate.position.distance(spec.position),
                orientation_error_rad: angle::dipole_distance(
                    result.estimate.orientation,
                    spec.alpha,
                ),
                kt: result.estimate.kt,
                region: setup::distance_region(scene, spec.position),
            }),
            Err(SenseError::TagMoving { .. }) => continue,
            Err(e) => panic!("trial {spec:?} failed: {e}"),
        }
    }
    outcomes
}

/// The paper's Fig. 8 trial set: 25 positions × 6 orientations × `reps`
/// repetitions, tag on the plastic carrier.
pub fn grid_orientation_specs(scene: &Scene, reps: u64) -> Vec<TrialSpec> {
    let mut specs = Vec::new();
    let mut seed = 0u64;
    for position in setup::evaluation_grid(scene) {
        for alpha in setup::evaluation_orientations() {
            for rep in 0..reps {
                seed += 1;
                specs.push(TrialSpec {
                    tag_seed: 1 + (seed % 5),
                    material: Material::Plastic,
                    position,
                    alpha,
                    survey_seed: 1000 + seed * 7 + rep,
                });
            }
        }
    }
    specs
}

/// The paper's material sweep: 25 positions × 8 materials, fixed 0°
/// orientation, `reps` repetitions.
pub fn grid_material_specs(scene: &Scene, reps: u64) -> Vec<TrialSpec> {
    let mut specs = Vec::new();
    let mut seed = 0u64;
    for position in setup::evaluation_grid(scene) {
        for material in Material::CLASSES {
            for rep in 0..reps {
                seed += 1;
                specs.push(TrialSpec {
                    tag_seed: 1 + (seed % 5),
                    material,
                    position,
                    alpha: 0.0,
                    survey_seed: 50_000 + seed * 11 + rep,
                });
            }
        }
    }
    specs
}

/// Mean localization error in centimetres.
pub fn mean_position_error_cm(outcomes: &[TrialOutcome]) -> f64 {
    let sum: f64 = outcomes.iter().map(|o| o.position_error_m).sum();
    sum / outcomes.len().max(1) as f64 * 100.0
}

/// Mean orientation error in degrees.
pub fn mean_orientation_error_deg(outcomes: &[TrialOutcome]) -> f64 {
    let sum: f64 = outcomes.iter().map(|o| o.orientation_error_rad).sum();
    (sum / outcomes.len().max(1) as f64).to_degrees()
}

/// Filters outcomes by a predicate on the spec.
pub fn filter<'a>(
    outcomes: &'a [TrialOutcome],
    mut pred: impl FnMut(&TrialSpec) -> bool + 'a,
) -> Vec<TrialOutcome> {
    outcomes.iter().copied().filter(|o| pred(&o.spec)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builders_have_paper_counts() {
        let scene = Scene::standard_2d();
        assert_eq!(grid_orientation_specs(&scene, 5).len(), 25 * 6 * 5);
        assert_eq!(grid_material_specs(&scene, 2).len(), 25 * 8 * 2);
    }

    #[test]
    fn trials_produce_reasonable_errors() {
        let scene = Scene::standard_2d();
        // A small slice of the grid for test speed.
        let specs: Vec<TrialSpec> =
            grid_orientation_specs(&scene, 1).into_iter().step_by(30).collect();
        let outcomes = run_trials(&scene, &specs);
        assert!(!outcomes.is_empty());
        let mean_cm = mean_position_error_cm(&outcomes);
        assert!(mean_cm < 40.0, "mean error {mean_cm} cm");
        let mean_deg = mean_orientation_error_deg(&outcomes);
        assert!(mean_deg < 40.0, "mean orientation error {mean_deg}°");
    }

    #[test]
    fn filter_selects_by_spec() {
        let scene = Scene::standard_2d();
        let specs = grid_material_specs(&scene, 1);
        let outcomes = run_trials(&scene, &specs[..16]);
        let metal = filter(&outcomes, |s| s.material == Material::Metal);
        assert!(metal.iter().all(|o| o.spec.material == Material::Metal));
    }
}
