//! Property-based integration tests: invariants of the forward model and
//! the disentangler over randomized physical configurations.

use proptest::prelude::*;
use rf_prism::core::model::{extract_observation, ExtractConfig};
use rf_prism::core::solver::{solve_2d, SolverConfig};
use rf_prism::geom::angle;
use rf_prism::prelude::*;

fn clean_scene() -> Scene {
    Scene::standard_2d()
        .with_noise(NoiseModel::clean())
        .with_reader(ReaderConfig::ideal())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Noise-free forward → inverse round trip: for any tag placement,
    /// orientation and material, the solver recovers the position to
    /// centimetres (only the arctangent curvature of the device phase is
    /// unmodelled) and the orientation modulo π.
    #[test]
    fn forward_inverse_round_trip(
        x in -0.45f64..1.45,
        y in 0.55f64..2.45,
        alpha in 0.0f64..std::f64::consts::PI,
        material_idx in 0usize..8,
        tag_seed in 0u64..50,
    ) {
        let scene = clean_scene();
        let material = Material::from_class_index(material_idx);
        let tag = SimTag::with_seeded_diversity(tag_seed)
            .attached_to(material)
            .with_motion(Motion::planar_static(Vec2::new(x, y), alpha));
        let survey = scene.survey(&tag, 1);
        let observations: Vec<_> = scene
            .antenna_poses()
            .iter()
            .zip(&survey.per_antenna)
            .filter_map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).ok())
            .collect();
        // Heavy loading at the region's far corners can push the RSSI below
        // the reader's sensitivity floor — a physically unreadable
        // configuration, not a solver failure. Skip those draws.
        prop_assume!(observations.len() >= 3);
        let est = solve_2d(&observations, scene.region(), &SolverConfig::default()).unwrap();
        let pos_err = est.position.distance(Vec2::new(x, y));
        prop_assert!(pos_err < 0.10, "position error {pos_err} m at ({x},{y}) on {material}");
        let orient_err = angle::dipole_distance(est.orientation, alpha);
        // The only unmodelled term in a noise-free scene is the device
        // phase's arctangent curvature; the robust fit may reject slightly
        // different channel subsets per antenna, which perturbs the
        // intercept differences by up to ~0.15 rad for the heavy-loading
        // materials.
        prop_assert!(
            orient_err < 0.16,
            "orientation error {}° at alpha {}°",
            orient_err.to_degrees(),
            alpha.to_degrees()
        );
    }

    /// Eq. (1) round trip at full depth: entangle a random pose in the
    /// simulator, disentangle, and recover *all five* unknowns —
    /// `(x, y, α, k_t, b_t)` — not just the pose. Ground truth for the
    /// device-phase line is the least-squares linearization of
    /// `θ_tag(f)` over the hop plan's channels
    /// ([`TagElectrical::linearized`]), which is exactly the `(k_t, b_t)`
    /// of Eq. (5) the solver models. In a noise-free scene the recovery
    /// is limited only by floating point (observed errors are
    /// ~1e-20 rad/Hz in `k_t`, ~1e-12 rad in `b_t`); the tolerances
    /// below leave several orders of magnitude of slack.
    #[test]
    fn eq1_round_trip_recovers_all_five_parameters(
        x in -0.45f64..1.45,
        y in 0.55f64..2.45,
        alpha in 0.0f64..std::f64::consts::PI,
        material_idx in 0usize..8,
        tag_seed in 0u64..50,
    ) {
        let scene = clean_scene();
        let material = Material::from_class_index(material_idx);
        let tag = SimTag::with_seeded_diversity(tag_seed)
            .attached_to(material)
            .with_motion(Motion::planar_static(Vec2::new(x, y), alpha));
        let survey = scene.survey(&tag, tag_seed.wrapping_mul(41));
        let observations: Vec<_> = scene
            .antenna_poses()
            .iter()
            .zip(&survey.per_antenna)
            .filter_map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).ok())
            .collect();
        prop_assume!(observations.len() >= 3);
        let est = solve_2d(&observations, scene.region(), &SolverConfig::default()).unwrap();
        let truth = tag.electrical().linearized(&scene.reader().plan);

        let pos_err = est.position.distance(Vec2::new(x, y));
        prop_assert!(pos_err < 1e-5, "position error {pos_err} m");
        let orient_err = angle::dipole_distance(est.orientation, alpha);
        prop_assert!(orient_err < 1e-5, "orientation error {orient_err} rad");
        let kt_err = (est.kt - truth.kt).abs();
        prop_assert!(
            kt_err < 1e-14,
            "k_t error {kt_err} rad/Hz (est {}, truth {})",
            est.kt,
            truth.kt
        );
        let bt_err = angle::distance(est.bt, angle::wrap_tau(truth.bt));
        prop_assert!(
            bt_err < 1e-5,
            "b_t error {bt_err} rad (est {}, truth {})",
            est.bt,
            truth.bt
        );
    }

    /// The measured phase of every read is the forward model exactly
    /// (mod 2π) in a noise-free scene — the simulator adds nothing else.
    #[test]
    fn simulator_is_the_forward_model(
        x in -0.4f64..1.4,
        y in 0.6f64..2.4,
        alpha in 0.0f64..std::f64::consts::PI,
    ) {
        use rf_prism::phys::{polarization, propagation};
        let scene = clean_scene();
        let tag = SimTag::nominal(1).with_motion(Motion::planar_static(Vec2::new(x, y), alpha));
        let survey = scene.survey(&tag, 2);
        let pos = Vec2::new(x, y).with_z(0.0);
        let dip = polarization::planar_dipole(alpha);
        for (pose, reads) in scene.antenna_poses().iter().zip(&survey.per_antenna) {
            for read in reads.iter().step_by(37) {
                let expect = propagation::phase(pose.distance_to(pos), read.frequency_hz)
                    + polarization::orientation_phase(pose, dip)
                    + tag.electrical().device_phase(read.frequency_hz);
                prop_assert!(angle::distance(read.phase, angle::wrap_tau(expect)) < 1e-9);
            }
        }
    }

    /// π-jump injection never changes the extracted line parameters
    /// (pre-processing must remove the jumps entirely).
    #[test]
    fn pi_jumps_are_invisible_after_preprocessing(
        x in -0.4f64..1.4,
        y in 0.6f64..2.4,
        jump_p in 0.05f64..0.35,
    ) {
        let base = clean_scene();
        let jumpy = clean_scene().with_noise(NoiseModel {
            pi_jump_probability: jump_p,
            ..NoiseModel::clean()
        });
        let tag = SimTag::nominal(1).with_motion(Motion::planar_static(Vec2::new(x, y), 0.3));
        let survey_a = base.survey(&tag, 3);
        let survey_b = jumpy.survey(&tag, 3);
        for ((pose, ra), rb) in base
            .antenna_poses()
            .iter()
            .zip(&survey_a.per_antenna)
            .zip(&survey_b.per_antenna)
        {
            let oa = extract_observation(*pose, ra, &ExtractConfig::paper()).unwrap();
            let ob = extract_observation(*pose, rb, &ExtractConfig::paper()).unwrap();
            prop_assert!((oa.slope - ob.slope).abs() < 1e-12, "slope changed");
            prop_assert!(
                angle::distance(oa.intercept, ob.intercept) < 1e-9,
                "intercept changed"
            );
        }
    }

    /// The estimate is invariant to the hop order (a different reader
    /// schedule must not change what a static tag looks like).
    #[test]
    fn hop_order_is_irrelevant_for_static_tags(seed in 0u64..200) {
        let ascending = clean_scene();
        let random_order = clean_scene().with_reader(ReaderConfig {
            randomize_hop_order: true,
            ..ReaderConfig::ideal()
        });
        let tag = SimTag::nominal(1)
            .with_motion(Motion::planar_static(Vec2::new(0.5, 1.5), 0.7));
        let sa = ascending.survey(&tag, seed);
        let sb = random_order.survey(&tag, seed);
        let pose = ascending.antenna_poses()[0];
        let oa = extract_observation(pose, &sa.per_antenna[0], &ExtractConfig::paper()).unwrap();
        let ob = extract_observation(pose, &sb.per_antenna[0], &ExtractConfig::paper()).unwrap();
        prop_assert!((oa.slope - ob.slope).abs() < 1e-12);
        prop_assert!(angle::distance(oa.intercept, ob.intercept) < 1e-9);
    }
}

/// Pinned regression (see `properties.proptest-regressions`): this exact
/// draw used to fail `forward_inverse_round_trip` by locking onto a
/// spurious twin-α mode whose phase residuals beat the truth's. The RSSI
/// mode penalty (DESIGN.md §4) now rules the impostor out; this keeps the
/// case running deterministically on every build.
#[test]
fn pinned_regression_twin_alpha_mode() {
    let (x, y, alpha) = (0.0, 2.386_972_515_964_244_3, 1.677_101_627_970_423_2);
    let scene = clean_scene();
    let tag = SimTag::with_seeded_diversity(0)
        .attached_to(Material::from_class_index(3))
        .with_motion(Motion::planar_static(Vec2::new(x, y), alpha));
    let survey = scene.survey(&tag, 1);
    let observations: Vec<_> = scene
        .antenna_poses()
        .iter()
        .zip(&survey.per_antenna)
        .filter_map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).ok())
        .collect();
    assert!(observations.len() >= 3, "regression scene must stay readable");
    let est = solve_2d(&observations, scene.region(), &SolverConfig::default()).unwrap();
    let pos_err = est.position.distance(Vec2::new(x, y));
    assert!(pos_err < 0.10, "position error {pos_err} m");
    let orient_err = angle::dipole_distance(est.orientation, alpha);
    assert!(
        orient_err < 0.16,
        "orientation error {}° — twin-α mode resurfaced?",
        orient_err.to_degrees()
    );
}
