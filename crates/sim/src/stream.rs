//! Stream replay: multi-round read sequences for the incremental
//! sliding-window pipeline.
//!
//! The batch pipeline consumes one hop round at a time; the streaming
//! pipeline (`rfp_core::StreamingSession`) instead watches reads arrive
//! continuously and slides its window forward. This module replays a
//! scene as a contiguous sequence of rounds on a shared clock: round `r`
//! is an independent [`Scene::survey`] (distinct RNG seed, so noise and
//! π-jump draws differ round to round) whose read timestamps are offset
//! by `r` × the reader's round duration. Each antenna's reads stay in
//! time order, exactly as a reader would report them.

use crate::scene::Scene;
use crate::tag::SimTag;
use rfp_dsp::preprocess::RawRead;

/// One round of a streamed replay: a hop round's reads on the global
/// stream clock.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRound {
    /// `per_antenna[i]` holds antenna *i*'s reads in time order, with
    /// timestamps offset onto the stream clock.
    pub per_antenna: Vec<Vec<RawRead>>,
    /// Stream time at which this round starts, seconds.
    pub start_time_s: f64,
    /// Stream time at which this round ends (= the next round's start).
    pub end_time_s: f64,
}

impl StreamRound {
    /// Total number of reads across antennas.
    pub fn total_reads(&self) -> usize {
        self.per_antenna.iter().map(Vec::len).sum()
    }
}

/// Replays `rounds` consecutive hop rounds of `scene` over `tag` on a
/// shared stream clock. Deterministic for a given
/// `(scene, tag, rounds, seed)`; each round draws from a distinct RNG
/// stream derived from `seed`.
pub fn stream_rounds(scene: &Scene, tag: &SimTag, rounds: usize, seed: u64) -> Vec<StreamRound> {
    let round_s = scene.reader().round_duration_s();
    (0..rounds)
        .map(|r| {
            // SplitMix64-style odd-constant stride decorrelates the
            // per-round StdRng seeds far better than `seed + r`.
            let round_seed = seed.wrapping_add((r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut survey = scene.survey(tag, round_seed);
            let start = r as f64 * round_s;
            for reads in &mut survey.per_antenna {
                for read in reads {
                    read.timestamp_s += start;
                }
            }
            StreamRound {
                per_antenna: survey.per_antenna,
                start_time_s: start,
                end_time_s: start + round_s,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_share_a_monotone_clock() {
        let scene = Scene::standard_2d();
        let tag = SimTag::with_seeded_diversity(2);
        let rounds = stream_rounds(&scene, &tag, 3, 9);
        assert_eq!(rounds.len(), 3);
        let round_s = scene.reader().round_duration_s();
        for (r, round) in rounds.iter().enumerate() {
            assert!((round.start_time_s - r as f64 * round_s).abs() < 1e-12);
            assert!((round.end_time_s - round.start_time_s - round_s).abs() < 1e-12);
            assert!(round.total_reads() > 0);
            for reads in &round.per_antenna {
                // In-round timestamps are ordered and inside the slot.
                for pair in reads.windows(2) {
                    assert!(pair[0].timestamp_s <= pair[1].timestamp_s);
                }
                for read in reads {
                    assert!(read.timestamp_s >= round.start_time_s);
                    assert!(read.timestamp_s < round.end_time_s);
                }
            }
        }
    }

    #[test]
    fn rounds_draw_distinct_noise() {
        let scene = Scene::standard_2d();
        let tag = SimTag::with_seeded_diversity(2);
        let rounds = stream_rounds(&scene, &tag, 2, 9);
        // Same geometry, different RNG stream: phases must differ.
        let a = &rounds[0].per_antenna[0];
        let b = &rounds[1].per_antenna[0];
        assert!(a.iter().zip(b).any(|(x, y)| x.phase != y.phase));
        // Deterministic replay.
        assert_eq!(rounds, stream_rounds(&scene, &tag, 2, 9));
    }
}
