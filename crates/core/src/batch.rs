//! Parallel batched sensing.
//!
//! Dense deployments read hundreds of tags per hop round, and every tag's
//! disentangling solve is independent of every other's — an embarrassingly
//! parallel workload. [`RfPrism::sense_batch`] fans the per-tag solves
//! across a scoped worker pool (`std::thread::scope`, no dependencies, no
//! unsafe) and returns one result per input, in input order.
//!
//! Three kinds of state are involved, with different lifetimes:
//!
//! * **Per scene** — antenna poses, the frequency plan and the multi-start
//!   solver seeds ([`SolveSeeds`]), including the precomputed per-seed
//!   per-antenna geometry tables (grid-point distances, α-seed trig — see
//!   [`SolveSeeds::for_scene`]). Built once, shared *read-only* by all
//!   workers; this is the [`BatchCache`]. The pipeline itself (`&RfPrism`)
//!   is part of this tier — workers borrow it, nothing is cloned.
//! * **Per worker** — the full sensing scratch ([`SenseWorkspace`]: DSP
//!   front-end columns, the solver facade's [`LmCore`](crate::LmCore)
//!   engines and scratch, recycled observation pools), reused across
//!   every solve a worker performs. Reuse only avoids reallocation; it
//!   never changes results.
//! * **Per tag** — the raw reads in and the [`SensingResult`] out.
//!
//! Work is claimed in chunks from a shared atomic cursor, so the
//! *assignment* of tags to workers is scheduling-dependent — but each
//! tag's solve reads only shared immutable state plus its own inputs, so
//! every output is **bit-identical** to the sequential [`RfPrism::sense`]
//! result for the same reads, at any worker count (the equivalence test
//! suite in `tests/batch_equivalence.rs` pins this down to
//! `f64::to_bits`).
//!
//! The front-end trig backend (`RfPrismConfig::with_trig`) is part of the
//! shared read-only pipeline state, so every worker uses the same
//! provider. The quantized-code tables behind `TrigProvider::Table` live
//! in a process-wide inline static (`OnceLock`): the first worker to need
//! them publishes them once, with no heap traffic and no per-worker copy,
//! and table-backed batches stay bit-identical to sequential libm runs
//! (also pinned in `tests/batch_equivalence.rs`).

use crate::obs;
use crate::pipeline::{RfPrism, SenseError, SenseWorkspace, SensingResult};
use crate::pipeline3d::{RfPrism3D, Sense3DError, Sense3DWorkspace, Sensing3DResult};
use crate::solver::{SolveSeeds, WarmStart};
use crate::solver3d::{Solve3DSeeds, WarmStart3D};
use rfp_dsp::preprocess::RawRead;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Raw reads for one tag: `reads[i]` is antenna *i*'s reads, exactly as
/// [`RfPrism::sense`] takes them.
pub type TagReads = Vec<Vec<RawRead>>;

/// Multi-round raw reads for one tag, as [`RfPrism::sense_rounds`] takes
/// them: `rounds[r][i]` is antenna *i*'s reads during round *r*.
pub type TagRounds = Vec<Vec<Vec<RawRead>>>;

/// Per-scene precomputation for batched 2-D sensing: the multi-start
/// solver seeds with their per-antenna geometry tables, built once from
/// the pipeline's `(region, solver config, poses)` and shared read-only
/// by every worker. Reusable across any number of
/// [`RfPrism::sense_batch_with`] calls as long as the pipeline's region
/// and configuration are unchanged.
#[derive(Debug, Clone)]
pub struct BatchCache {
    seeds: SolveSeeds,
}

impl BatchCache {
    pub(crate) fn seeds(&self) -> &SolveSeeds {
        &self.seeds
    }
}

/// Per-scene precomputation for batched 3-D sensing (see [`BatchCache`]).
#[derive(Debug, Clone)]
pub struct BatchCache3D {
    seeds: Solve3DSeeds,
}

impl BatchCache3D {
    pub(crate) fn seeds(&self) -> &Solve3DSeeds {
        &self.seeds
    }
}

impl RfPrism {
    /// Builds the per-scene cache for [`RfPrism::sense_batch_with`].
    pub fn batch_cache(&self) -> BatchCache {
        BatchCache { seeds: self.solve_seeds() }
    }

    /// Senses many tags' hop rounds in parallel: `tags[t]` holds tag *t*'s
    /// per-antenna reads, and the returned vector holds tag *t*'s result at
    /// index *t* — exactly what [`RfPrism::sense`] would return for the
    /// same reads, bit-for-bit, at any `jobs`.
    ///
    /// `jobs` is the worker-thread count; `0` means one worker per
    /// available CPU, `1` runs inline on the calling thread. More workers
    /// than tags are never spawned.
    pub fn sense_batch<T>(
        &self,
        tags: &[T],
        jobs: usize,
    ) -> Vec<Result<SensingResult, SenseError>>
    where
        T: AsRef<[Vec<RawRead>]> + Sync,
    {
        self.sense_batch_with(&self.batch_cache(), tags, jobs)
    }

    /// [`RfPrism::sense_batch`] against a prebuilt [`BatchCache`] — use
    /// when sensing repeatedly against the same scene to skip rebuilding
    /// the seed grid each call.
    pub fn sense_batch_with<T>(
        &self,
        cache: &BatchCache,
        tags: &[T],
        jobs: usize,
    ) -> Vec<Result<SensingResult, SenseError>>
    where
        T: AsRef<[Vec<RawRead>]> + Sync,
    {
        let _batch_span = obs::span("sense_batch");
        obs::counter_add(obs::id::BATCH_TAGS, tags.len() as u64);
        obs::gauge_set(obs::id::BATCH_WORKERS, effective_jobs(jobs, tags.len()) as f64);
        fan_out(tags, jobs, SenseWorkspace::default, |reads, workspace| {
            self.sense_with(reads.as_ref(), &cache.seeds, workspace, None)
        })
    }

    /// [`RfPrism::sense_batch_with`] with one optional warm-start prior
    /// per tag (`warms[t]` seeds tag *t*; see [`RfPrism::sense_warm`]).
    /// Input order is preserved and every output is bit-identical at any
    /// `jobs`, because each tag's solve depends only on its own reads and
    /// its own prior.
    ///
    /// # Panics
    ///
    /// Panics if `tags.len() != warms.len()`.
    pub fn sense_batch_warm<T>(
        &self,
        cache: &BatchCache,
        tags: &[T],
        warms: &[Option<WarmStart>],
        jobs: usize,
    ) -> Vec<Result<SensingResult, SenseError>>
    where
        T: AsRef<[Vec<RawRead>]> + Sync,
    {
        assert_eq!(
            tags.len(),
            warms.len(),
            "sense_batch_warm needs one (possibly None) warm start per tag"
        );
        let _batch_span = obs::span("sense_batch");
        obs::counter_add(obs::id::BATCH_TAGS, tags.len() as u64);
        obs::gauge_set(obs::id::BATCH_WORKERS, effective_jobs(jobs, tags.len()) as f64);
        let items: Vec<(&T, Option<&WarmStart>)> =
            tags.iter().zip(warms.iter().map(Option::as_ref)).collect();
        fan_out(&items, jobs, SenseWorkspace::default, |(reads, warm), workspace| {
            self.sense_with(reads.as_ref(), &cache.seeds, workspace, *warm)
        })
    }

    /// Senses many tags from multiple hop rounds each, in parallel:
    /// `tags[t]` holds tag *t*'s rounds, and index *t* of the result is
    /// exactly what [`RfPrism::sense_rounds`] would return for them,
    /// bit-for-bit, at any `jobs` (same semantics as
    /// [`RfPrism::sense_batch`]).
    pub fn sense_rounds_batch<T>(
        &self,
        tags: &[T],
        jobs: usize,
    ) -> Vec<Result<SensingResult, SenseError>>
    where
        T: AsRef<[Vec<Vec<RawRead>>]> + Sync,
    {
        let cache = self.batch_cache();
        let _batch_span = obs::span("sense_rounds_batch");
        obs::counter_add(obs::id::BATCH_TAGS, tags.len() as u64);
        obs::gauge_set(obs::id::BATCH_WORKERS, effective_jobs(jobs, tags.len()) as f64);
        fan_out(tags, jobs, SenseWorkspace::default, |rounds, workspace| {
            self.sense_rounds_with(rounds.as_ref(), &cache.seeds, workspace, None)
        })
    }

    /// [`RfPrism::sense_rounds_batch`] with one optional warm-start prior
    /// per tag (see [`RfPrism::sense_batch_warm`] for the contract).
    ///
    /// # Panics
    ///
    /// Panics if `tags.len() != warms.len()`.
    pub fn sense_rounds_batch_warm<T>(
        &self,
        cache: &BatchCache,
        tags: &[T],
        warms: &[Option<WarmStart>],
        jobs: usize,
    ) -> Vec<Result<SensingResult, SenseError>>
    where
        T: AsRef<[Vec<Vec<RawRead>>]> + Sync,
    {
        assert_eq!(
            tags.len(),
            warms.len(),
            "sense_rounds_batch_warm needs one (possibly None) warm start per tag"
        );
        let _batch_span = obs::span("sense_rounds_batch");
        obs::counter_add(obs::id::BATCH_TAGS, tags.len() as u64);
        obs::gauge_set(obs::id::BATCH_WORKERS, effective_jobs(jobs, tags.len()) as f64);
        let items: Vec<(&T, Option<&WarmStart>)> =
            tags.iter().zip(warms.iter().map(Option::as_ref)).collect();
        fan_out(&items, jobs, SenseWorkspace::default, |(rounds, warm), workspace| {
            self.sense_rounds_with(rounds.as_ref(), &cache.seeds, workspace, *warm)
        })
    }
}

impl RfPrism3D {
    /// Builds the per-scene cache for [`RfPrism3D::sense_batch_with`].
    pub fn batch_cache(&self) -> BatchCache3D {
        BatchCache3D { seeds: self.solve_seeds() }
    }

    /// Senses many tags in parallel in 3-D; same contract as
    /// [`RfPrism::sense_batch`] (input order preserved, results
    /// bit-identical to sequential [`RfPrism3D::sense`] at any `jobs`).
    pub fn sense_batch<T>(
        &self,
        tags: &[T],
        jobs: usize,
    ) -> Vec<Result<Sensing3DResult, Sense3DError>>
    where
        T: AsRef<[Vec<RawRead>]> + Sync,
    {
        self.sense_batch_with(&self.batch_cache(), tags, jobs)
    }

    /// [`RfPrism3D::sense_batch`] against a prebuilt [`BatchCache3D`].
    pub fn sense_batch_with<T>(
        &self,
        cache: &BatchCache3D,
        tags: &[T],
        jobs: usize,
    ) -> Vec<Result<Sensing3DResult, Sense3DError>>
    where
        T: AsRef<[Vec<RawRead>]> + Sync,
    {
        let _batch_span = obs::span("sense_batch_3d");
        obs::counter_add(obs::id::BATCH_TAGS, tags.len() as u64);
        obs::gauge_set(obs::id::BATCH_WORKERS, effective_jobs(jobs, tags.len()) as f64);
        fan_out(tags, jobs, Sense3DWorkspace::default, |reads, workspace| {
            self.sense_with(reads.as_ref(), &cache.seeds, workspace, None)
        })
    }

    /// [`RfPrism3D::sense_batch_with`] with one optional warm-start prior
    /// per tag (see [`RfPrism::sense_batch_warm`] for the contract).
    ///
    /// # Panics
    ///
    /// Panics if `tags.len() != warms.len()`.
    pub fn sense_batch_warm<T>(
        &self,
        cache: &BatchCache3D,
        tags: &[T],
        warms: &[Option<WarmStart3D>],
        jobs: usize,
    ) -> Vec<Result<Sensing3DResult, Sense3DError>>
    where
        T: AsRef<[Vec<RawRead>]> + Sync,
    {
        assert_eq!(
            tags.len(),
            warms.len(),
            "sense_batch_warm needs one (possibly None) warm start per tag"
        );
        let _batch_span = obs::span("sense_batch_3d");
        obs::counter_add(obs::id::BATCH_TAGS, tags.len() as u64);
        obs::gauge_set(obs::id::BATCH_WORKERS, effective_jobs(jobs, tags.len()) as f64);
        let items: Vec<(&T, Option<&WarmStart3D>)> =
            tags.iter().zip(warms.iter().map(Option::as_ref)).collect();
        fan_out(&items, jobs, Sense3DWorkspace::default, |(reads, warm), workspace| {
            self.sense_with(reads.as_ref(), &cache.seeds, workspace, *warm)
        })
    }
}

/// Resolves a `jobs` request to an actual worker count: `0` means one per
/// available CPU, and more workers than items are never used.
pub fn effective_jobs(jobs: usize, items: usize) -> usize {
    let requested = if jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        jobs
    };
    requested.min(items).max(1)
}

/// The worker pool: runs `work` over `items` on `jobs` scoped threads,
/// giving each worker one `new_state()` value it reuses across all the
/// items it claims. Returns results in input order.
///
/// Work is claimed in contiguous chunks from a shared atomic cursor
/// (dynamic scheduling — solves vary in cost, so purely static chunking
/// would leave workers idle, while per-item claiming maximizes contention
/// on the counter and interleaves the workers' cache footprints). The
/// chunk size targets ~4 claims per worker so the tail stays balanced.
/// `(index, result)` pairs flow back over an mpsc channel; the caller's
/// thread reassembles them in order. With `jobs <= 1` everything runs
/// inline on the calling thread — no spawn, no channel. Chunking only
/// changes *which worker* computes an item, never the result — each item
/// depends only on shared immutable state and its own input.
fn fan_out<I, R, S, N, F>(items: &[I], jobs: usize, new_state: N, work: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    N: Fn() -> S + Sync,
    F: Fn(&I, &mut S) -> R + Sync,
{
    let jobs = effective_jobs(jobs, items.len());
    if jobs <= 1 {
        let mut state = new_state();
        return items.iter().map(|item| work(item, &mut state)).collect();
    }

    // Snapshot the coordinator's observing state before spawning: worker
    // threads have no recorder of their own, so each gets a fresh one
    // (over the same metric table) only when the coordinator is recording.
    let observing = obs::active();
    let chunk = (items.len() / (jobs * 4)).max(1);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let (obs_tx, obs_rx) = mpsc::channel::<(usize, obs::WorkerObs)>();
    std::thread::scope(|scope| {
        for w in 0..jobs {
            let tx = tx.clone();
            let obs_tx = obs_tx.clone();
            let (next, new_state, work) = (&next, &new_state, &work);
            scope.spawn(move || {
                let ((), worker_obs) = obs::WorkerObs::new(observing).run(|| {
                    let mut state = new_state();
                    'claim: loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + chunk).min(items.len());
                        for (i, item) in items[start..end].iter().enumerate() {
                            let result = work(item, &mut state);
                            if tx.send((start + i, result)).is_err() {
                                break 'claim;
                            }
                        }
                    }
                });
                let _ = obs_tx.send((w, worker_obs));
            });
        }
        drop(tx);
        drop(obs_tx);
        let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
        out.resize_with(items.len(), || None);
        for (i, result) in rx {
            debug_assert!(out[i].is_none(), "item {i} solved twice");
            out[i] = Some(result);
        }
        // Merge what the workers recorded into the coordinator's recorder
        // in worker-index order: a fixed merge order plus commutative
        // counter addition makes every count-type metric identical to a
        // sequential run, at any worker count. (Timings stay wall-clock.)
        let mut workers: Vec<(usize, obs::WorkerObs)> = obs_rx.iter().collect();
        workers.sort_by_key(|&(w, _)| w);
        for (_, worker_obs) in &workers {
            worker_obs.absorb_into_current();
        }
        out.into_iter()
            .map(|r| r.expect("every item solved exactly once"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_jobs_resolution() {
        assert_eq!(effective_jobs(4, 100), 4);
        assert_eq!(effective_jobs(8, 3), 3);
        assert_eq!(effective_jobs(1, 0), 1);
        assert!(effective_jobs(0, 100) >= 1);
    }

    #[test]
    fn fan_out_preserves_order_and_state_reuse() {
        let items: Vec<usize> = (0..97).collect();
        for jobs in [1, 2, 3, 8] {
            let out = fan_out(
                &items,
                jobs,
                Vec::<usize>::new,
                |&i, seen: &mut Vec<usize>| {
                    seen.push(i);
                    i * i
                },
            );
            assert_eq!(out, items.iter().map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn fan_out_empty_input() {
        let out = fan_out(&[] as &[usize], 8, || (), |&i, _| i);
        assert!(out.is_empty());
    }
}
