//! Ablation: hyper-parameter tuning of the material classifier by
//! cross-validation on the *training* split only.
//!
//! The paper hand-picks its decision tree; here a small grid search over
//! tree depth / leaf size (and KNN's k) shows how much headroom tuning
//! has — and that the defaults sit near the plateau.

use rfp_bench::{matid, report};
use rfp_core::material::{ClassifierKind, MaterialIdentifier};
use rfp_ml::knn::KnnClassifier;
use rfp_ml::modsel::grid_search;
use rfp_ml::scaler::StandardScaler;
use rfp_ml::tree::{DecisionTree, TreeConfig};
use rfp_sim::Scene;

fn main() {
    report::header("Ablation", "classifier tuning by cross-validation (training split)");
    let scene = Scene::standard_2d();
    let corpus = matid::build_corpus(&scene, 100, 50);
    let train = matid::to_dataset(&corpus.train);
    // Standardize once (as MaterialIdentifier::train would).
    let scaler = StandardScaler::fit(&train);
    let scaled = scaler.transform_dataset(&train);

    report::section("decision tree grid (max_depth, min_samples_leaf)");
    let tree_grid: Vec<TreeConfig> = [(4usize, 2usize), (8, 2), (16, 2), (16, 8), (24, 1)]
        .iter()
        .map(|&(depth, leaf)| TreeConfig {
            max_depth: depth,
            min_samples_leaf: leaf,
            ..Default::default()
        })
        .collect();
    let tree_result = grid_search(&scaled, 5, 11, &tree_grid, |t, cfg| {
        DecisionTree::fit(t, cfg)
    });
    for (cfg, score) in tree_grid.iter().zip(&tree_result.scores) {
        println!(
            "  depth {:>2}, leaf {:>2}: CV accuracy {}",
            cfg.max_depth,
            cfg.min_samples_leaf,
            report::pct(*score)
        );
    }

    report::section("KNN grid (k)");
    let knn_grid = [1usize, 3, 9, 21];
    let knn_result =
        grid_search(&scaled, 5, 11, &knn_grid, |t, &k| KnnClassifier::fit(t, k));
    for (k, score) in knn_grid.iter().zip(&knn_result.scores) {
        println!("  k = {k:>2}: CV accuracy {}", report::pct(*score));
    }

    // Validate the CV-chosen tree on the held-out set.
    let tuned = MaterialIdentifier::train(
        &train,
        &ClassifierKind::DecisionTree(tree_result.best),
    );
    let mut hits = 0usize;
    for s in &corpus.validation {
        if tuned.predict_index(&s.features) == s.label {
            hits += 1;
        }
    }
    let tuned_acc = hits as f64 / corpus.validation.len() as f64;
    println!();
    report::row("tuned tree (held-out)", "≈ default", &report::pct(tuned_acc));
    assert!(tuned_acc > 0.8, "tuned accuracy {tuned_acc}");
    assert!(
        tree_result.best_accuracy >= tree_result.scores[0],
        "grid search must not pick a worse candidate"
    );
}
