//! §VI-C latency: the paper reports data pre-processing + parameter
//! estimation within 0.06 s and classification "within dozens of
//! milliseconds"; data gathering (10 s per hop round on the R420)
//! dominates. Criterion benches for the processing stages.

use criterion::{criterion_group, criterion_main, Criterion};
use rfp_bench::{matid, setup};
use rfp_core::material::ClassifierKind;
use rfp_core::model::{extract_observation, ExtractConfig};
use rfp_core::solver::{solve_2d, SolverConfig};
use rfp_geom::Vec2;
use rfp_phys::Material;
use rfp_sim::{Motion, Scene, SimTag};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let scene = Scene::standard_2d();
    let prism = setup::prism_for(&scene);
    let tag = SimTag::with_seeded_diversity(1)
        .attached_to(Material::Glass)
        .with_motion(Motion::planar_static(Vec2::new(0.4, 1.5), 0.5));
    let survey = scene.survey(&tag, 1);
    let poses = scene.antenna_poses();

    c.bench_function("preprocess_and_fit_one_antenna", |b| {
        b.iter(|| {
            extract_observation(
                black_box(poses[0]),
                black_box(&survey.per_antenna[0]),
                &ExtractConfig::paper(),
            )
            .unwrap()
        })
    });

    let observations: Vec<_> = poses
        .iter()
        .zip(&survey.per_antenna)
        .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).unwrap())
        .collect();
    c.bench_function("joint_disentangling_solve", |b| {
        b.iter(|| {
            solve_2d(black_box(&observations), scene.region(), &SolverConfig::default())
                .unwrap()
        })
    });

    c.bench_function("full_sense_pipeline", |b| {
        b.iter(|| prism.sense(black_box(&survey.per_antenna)).unwrap())
    });
}

fn bench_classification(c: &mut Criterion) {
    let scene = Scene::standard_2d();
    let corpus = matid::build_corpus(&scene, 20, 0);
    let ds = matid::to_dataset(&corpus.train);
    let identifier = rfp_core::material::MaterialIdentifier::train(
        &ds,
        &ClassifierKind::paper_default(),
    );
    let sample = corpus.validation[0].features.clone();
    c.bench_function("decision_tree_classify", |b| {
        b.iter(|| identifier.predict_index(black_box(&sample)))
    });
}

criterion_group!(benches, bench_pipeline, bench_classification);
criterion_main!(benches);
