//! Extension (paper §VII): 3-D localization — and what "4 antennas are
//! sufficient" really buys.
//!
//! With four antennas the 3-D problem is *identifiable* (8 equations, 7
//! unknowns) exactly as the paper says — but the slope subsystem has zero
//! redundancy, so millimetre-level ranging noise dilutes into metre-level
//! position error. Two extra antennas restore redundancy and bring 3-D
//! into the tens-of-centimetres regime. A reproduction finding worth
//! recording.

use rfp_bench::report;
use rfp_core::model::{extract_observation, ExtractConfig};
use rfp_core::solver3d::{solve_3d, Solver3DConfig};
use rfp_geom::Vec3;
use rfp_phys::Material;
use rfp_sim::{Motion, Scene, SimTag};

fn run(scene: &Scene, z_hi: f64, label: &str) -> (f64, f64) {
    let mut pos_err = Vec::new();
    let mut axis_err = Vec::new();
    let mut seed = 0u64;
    let targets = [
        (0.6, 1.0, 0.4),
        (1.2, 1.4, 0.8),
        (1.6, 2.0, 0.3),
        (0.4, 1.8, 1.0),
        (1.0, 1.2, 0.6),
        (1.4, 2.2, 0.5),
    ];
    for &(x, y, z) in &targets {
        for &dipole in &[Vec3::new(1.0, 0.0, 0.3), Vec3::new(0.2, 0.4, 1.0)] {
            seed += 1;
            let truth = scene.region().clamp(rfp_geom::Vec2::new(x, y)).with_z(z);
            let tag = SimTag::with_seeded_diversity(seed)
                .attached_to(Material::Glass)
                .with_motion(Motion::Static { position: truth, dipole: dipole.normalized() });
            let survey = scene.survey(&tag, 80_000 + seed);
            let obs: Vec<_> = scene
                .antenna_poses()
                .iter()
                .zip(&survey.per_antenna)
                .map(|(&p, r)| {
                    extract_observation(p, r, &ExtractConfig::paper()).expect("usable")
                })
                .collect();
            let est = solve_3d(&obs, scene.region(), (0.0, z_hi), &Solver3DConfig::default())
                .expect("solvable");
            pos_err.push(est.position.distance(truth) * 100.0);
            axis_err.push(est.dipole_axis_error(dipole).to_degrees());
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "  {label:<12} position {:>9}   dipole axis {:>8}",
        report::cm(mean(&pos_err)),
        report::deg(mean(&axis_err))
    );
    (mean(&pos_err), mean(&axis_err))
}

fn main() {
    report::header(
        "Extension",
        "3-D localization: 4 antennas (identifiable) vs 6 (redundant)",
    );
    let four = run(&Scene::four_antenna_3d(), 1.0, "4 antennas");
    let six = run(&Scene::six_antenna_3d(), 1.5, "6 antennas");
    println!();
    println!("the paper's §VII claim (3-D \"totally feasible\" with 4 antennas) holds");
    println!("for identifiability, but the slope subsystem then has zero redundancy:");
    println!("noise dilutes brutally. Six antennas restore the centimetre regime.");
    assert!(six.0 < four.0, "redundancy must help: {six:?} vs {four:?}");
    assert!(six.0 < 40.0, "6-antenna 3-D error {} cm", six.0);
}
