//! Common experiment setup: scenes, grids, tags and calibration.

use rfp_core::calibration::DeviceCalibration;
use rfp_core::model::{extract_observation, AntennaObservation, ExtractConfig};
use rfp_core::RfPrism;
use rfp_geom::Vec2;
use rfp_phys::Material;
use rfp_sim::{Motion, Scene, SimTag};

/// The paper's 25 evaluation positions: a 5×5 grid over the 2 m × 2 m
/// working region (Fig. 7).
pub fn evaluation_grid(scene: &Scene) -> Vec<Vec2> {
    scene.region().grid(5, 5).collect()
}

/// The paper's six evaluation orientations: 0°–150° in 30° steps.
pub fn evaluation_orientations() -> Vec<f64> {
    (0..6).map(|i| f64::from(i) * 30.0f64.to_radians()).collect()
}

/// Distance region of a position (paper Fig. 9/10): `0` = near, `1` =
/// medium, `2` = far, split by mean antenna distance with fixed thresholds
/// chosen so the 25-point grid divides roughly evenly.
pub fn distance_region(scene: &Scene, position: Vec2) -> usize {
    let mean_d: f64 = scene
        .antennas()
        .iter()
        .map(|a| a.pose.distance_to(position.with_z(0.0)))
        .sum::<f64>()
        / scene.antennas().len() as f64;
    if mean_d < 1.6 {
        0
    } else if mean_d < 2.2 {
        1
    } else {
        2
    }
}

/// Names for [`distance_region`] indices.
pub const REGION_NAMES: [&str; 3] = ["near", "medium", "far"];

/// The standard sensing pipeline for a scene.
pub fn prism_for(scene: &Scene) -> RfPrism {
    RfPrism::new(scene.antenna_poses(), scene.reader().plan)
        .with_region(scene.region())
}

/// Builds a static tag with the given identity/material/placement.
pub fn place_tag(tag_seed: u64, material: Material, position: Vec2, alpha: f64) -> SimTag {
    SimTag::with_seeded_diversity(tag_seed)
        .attached_to(material)
        .with_motion(Motion::planar_static(position, alpha))
}

/// Extracts per-antenna observations for a survey (panics on failure —
/// experiment code fails loudly).
pub fn observations(scene: &Scene, survey: &rfp_sim::HopSurvey) -> Vec<AntennaObservation> {
    scene
        .antenna_poses()
        .iter()
        .zip(&survey.per_antenna)
        .map(|(&p, r)| {
            extract_observation(p, r, &ExtractConfig::paper()).expect("usable survey")
        })
        .collect()
}

/// Performs the one-time device calibration of a tag (paper §V-B): bare
/// tag at a known position and orientation in the clean calibration booth.
pub fn calibrate_tag(tag_seed: u64, survey_seed: u64) -> DeviceCalibration {
    use rfp_sim::{NoiseModel, ReaderConfig};
    // Calibration happens pre-deployment in a controlled environment.
    let scene = Scene::standard_2d()
        .with_noise(NoiseModel::clean())
        .with_reader(ReaderConfig::ideal());
    let position = Vec2::new(0.5, 1.0);
    let alpha = 0.0;
    let bare = SimTag::with_seeded_diversity(tag_seed)
        .with_motion(Motion::planar_static(position, alpha));
    let survey = scene.survey(&bare, survey_seed);
    let obs = observations(&scene, &survey);
    DeviceCalibration::from_observations(&obs, position, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_25_points_in_region() {
        let scene = Scene::standard_2d();
        let grid = evaluation_grid(&scene);
        assert_eq!(grid.len(), 25);
        assert!(grid.iter().all(|&p| scene.region().contains(p)));
    }

    #[test]
    fn orientations_match_paper() {
        let o = evaluation_orientations();
        assert_eq!(o.len(), 6);
        assert_eq!(o[0], 0.0);
        assert!((o[5].to_degrees() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn regions_cover_all_three_bands() {
        let scene = Scene::standard_2d();
        let mut counts = [0usize; 3];
        for p in evaluation_grid(&scene) {
            counts[distance_region(&scene, p)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "counts {counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 25);
    }

    #[test]
    fn calibration_is_deterministic() {
        let a = calibrate_tag(5, 1);
        let b = calibrate_tag(5, 1);
        assert_eq!(a.kt0(), b.kt0());
        assert_eq!(a.channel_count(), 50);
    }
}
