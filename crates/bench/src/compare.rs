//! Head-to-head comparison machinery: RF-Prism vs MobiTagbot (Figs. 14–16)
//! and RF-Prism vs Tagtag (Figs. 17–20).

use crate::loc::TrialSpec;
use crate::setup;
use rfp_baselines::mobitagbot::{MobiTagbot, MobiTagbotCalibration};
use rfp_baselines::Tagtag;
use rfp_core::material::{ClassifierKind, MaterialIdentifier};
use rfp_geom::Vec2;
use rfp_ml::dataset::Dataset;
use rfp_ml::metrics::ConfusionMatrix;
use rfp_phys::Material;
use rfp_sim::Scene;
use std::collections::BTreeMap;

/// Localization errors (cm) of both systems on the same surveys.
#[derive(Debug, Clone, Default)]
pub struct CdfComparison {
    /// RF-Prism errors, cm.
    pub prism_cm: Vec<f64>,
    /// MobiTagbot errors, cm.
    pub mobitagbot_cm: Vec<f64>,
}

/// Runs both localizers over the same trial specs.
///
/// Every tag identity is first calibrated in-situ (MobiTagbot style: tag at
/// a known position in its *calibration-time* state `calib_material`,
/// α = 0). RF-Prism needs no calibration for localization — that is its
/// headline claim.
pub fn mobitagbot_comparison(
    scene: &Scene,
    specs: &[TrialSpec],
    calib_material: Material,
) -> CdfComparison {
    let prism = setup::prism_for(scene);
    let mtb = MobiTagbot::new(scene.antenna_poses(), scene.region());

    // One in-situ calibration per tag identity.
    let calib_pos = Vec2::new(0.5, 1.0);
    let mut calibrations: BTreeMap<u64, MobiTagbotCalibration> = BTreeMap::new();
    for spec in specs {
        calibrations.entry(spec.tag_seed).or_insert_with(|| {
            let tag = setup::place_tag(spec.tag_seed, calib_material, calib_pos, 0.0);
            let survey = scene.survey(&tag, 7_000 + spec.tag_seed);
            mtb.calibrate(&survey.per_antenna, calib_pos).expect("calibration survey")
        });
    }

    let mut out = CdfComparison::default();
    for spec in specs {
        let tag = setup::place_tag(spec.tag_seed, spec.material, spec.position, spec.alpha);
        let survey = scene.survey(&tag, spec.survey_seed);
        if let Ok(result) = prism.sense(&survey.per_antenna) {
            out.prism_cm.push(result.estimate.position.distance(spec.position) * 100.0);
        }
        let localizer = mtb.clone().with_calibration(calibrations[&spec.tag_seed].clone());
        if let Ok(est) = localizer.localize(&survey.per_antenna) {
            out.mobitagbot_cm.push(est.distance(spec.position) * 100.0);
        }
    }
    out
}

/// The three evaluation regimes of Figs. 17–19.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagtagSetup {
    /// Fig. 17: same distance, same orientation (fresh noise only).
    Fixed,
    /// Fig. 18: different positions, same orientation.
    VaryDistance,
    /// Fig. 19: different positions and orientations.
    VaryBoth,
}

impl TagtagSetup {
    /// The x-axis label of the paper's Fig. 20.
    pub fn label(self) -> &'static str {
        match self {
            TagtagSetup::Fixed => "-distance -orientation",
            TagtagSetup::VaryDistance => "+distance -orientation",
            TagtagSetup::VaryBoth => "+distance +orientation",
        }
    }
}

/// Per-material accuracy of both identifiers under one setup.
#[derive(Debug, Clone)]
pub struct TagtagComparison {
    /// Confusion matrix of RF-Prism (decision tree on disentangled
    /// features).
    pub prism: ConfusionMatrix,
    /// Confusion matrix of the Tagtag baseline.
    pub tagtag: ConfusionMatrix,
}

/// Runs the Fig. 17–19 experiment: train both identifiers under the
/// training conditions, evaluate under the setup's test conditions.
pub fn tagtag_comparison(scene: &Scene, setup_kind: TagtagSetup, reps: usize) -> TagtagComparison {
    let grid = setup::evaluation_grid(scene);
    let train_pos = grid[12]; // region centre
    let prism = setup::prism_for(scene);
    let channel_count = scene.reader().plan.channel_count();
    let tags: Vec<(u64, rfp_core::DeviceCalibration)> =
        (1..=3).map(|s| (s, setup::calibrate_tag(s, 400 + s))).collect();

    let mut tagtag = Tagtag::new(scene.antenna_poses(), channel_count);
    let mut train_ds = Dataset::new(Material::CLASSES.len());
    let mut seed = 0u64;

    // Training: fixed position, α = 0 (both systems get the same data).
    for (class, &material) in Material::CLASSES.iter().enumerate() {
        for _ in 0..reps {
            seed += 1;
            let (tag_seed, calibration) = &tags[seed as usize % tags.len()];
            let tag = setup::place_tag(*tag_seed, material, train_pos, 0.0);
            let survey = scene.survey(&tag, 600_000 + seed * 17);
            if let Ok(result) = prism.sense(&survey.per_antenna) {
                train_ds.push(
                    result.material_features(calibration, channel_count).to_vector(),
                    class,
                );
            }
            if let Ok(curve) = tagtag.features(&survey.per_antenna) {
                tagtag.add_example(curve, material);
            }
        }
    }
    let identifier = MaterialIdentifier::train(&train_ds, &ClassifierKind::paper_default());

    // Testing under the setup's conditions.
    let mut prism_cm = ConfusionMatrix::new(Material::CLASSES.len());
    let mut tagtag_cm = ConfusionMatrix::new(Material::CLASSES.len());
    for (class, &material) in Material::CLASSES.iter().enumerate() {
        for r in 0..reps {
            seed += 1;
            let (tag_seed, calibration) = &tags[seed as usize % tags.len()];
            let (position, alpha) = match setup_kind {
                TagtagSetup::Fixed => (train_pos, 0.0),
                TagtagSetup::VaryDistance => (grid[(seed as usize * 3 + r) % grid.len()], 0.0),
                TagtagSetup::VaryBoth => (
                    grid[(seed as usize * 3 + r) % grid.len()],
                    90.0f64.to_radians(),
                ),
            };
            let tag = setup::place_tag(*tag_seed, material, position, alpha);
            let survey = scene.survey(&tag, 700_000 + seed * 19);
            if let Ok(result) = prism.sense(&survey.per_antenna) {
                let f = result.material_features(calibration, channel_count).to_vector();
                prism_cm.record(class, identifier.predict_index(&f));
            }
            if let Ok(curve) = tagtag.features(&survey.per_antenna) {
                let predicted = tagtag.identify(&curve).class_index().expect("class");
                tagtag_cm.record(class, predicted);
            }
        }
    }
    TagtagComparison { prism: prism_cm, tagtag: tagtag_cm }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc;

    #[test]
    fn mobitagbot_comparison_produces_errors_for_both() {
        let scene = Scene::standard_2d();
        let specs: Vec<TrialSpec> =
            loc::grid_orientation_specs(&scene, 1).into_iter().step_by(40).collect();
        let cmp = mobitagbot_comparison(&scene, &specs, Material::Plastic);
        assert!(!cmp.prism_cm.is_empty());
        assert_eq!(cmp.prism_cm.len(), cmp.mobitagbot_cm.len());
    }

    #[test]
    fn tagtag_setups_have_labels() {
        assert!(TagtagSetup::Fixed.label().contains("-distance"));
        assert!(TagtagSetup::VaryBoth.label().contains("+orientation"));
    }
}
