//! The paper's §I motivating scenario: a chemical-lab shelf.
//!
//! Bottles of different liquids move around a shelf; because both the
//! position and the content affect the tag's phase, a conventional system
//! can answer neither "where is the alcohol?" nor "what is in the bottle at
//! slot 3?". RF-Prism answers both from the same hop round.
//!
//! ```text
//! cargo run --release --example chemical_inventory
//! ```

use rf_prism::core::material::ClassifierKind;
use rf_prism::core::MaterialIdentifier;
use rf_prism::ml::dataset::Dataset;
use rf_prism::prelude::*;

/// One labelled shelf slot.
struct Slot {
    name: &'static str,
    position: Vec2,
}

fn main() {
    let scene = Scene::standard_2d();
    let prism = RfPrism::new(scene.antenna_poses(), scene.reader().plan)
        .with_region(scene.region());
    let channel_count = scene.reader().plan.channel_count();

    // ---- One-time setup -------------------------------------------------
    // Each tag is calibrated once, bare, at a known pose (paper §V-B), and
    // a material classifier is trained from reference measurements.
    let calibration_pose = (Vec2::new(0.5, 1.0), 0.0);
    let mut calibrations = CalibrationDb::new();
    let tag_ids: Vec<u64> = (1..=4).collect();
    for &id in &tag_ids {
        let bare = SimTag::with_seeded_diversity(id)
            .with_motion(Motion::planar_static(calibration_pose.0, calibration_pose.1));
        let survey = scene.survey(&bare, 100 + id);
        let observations: Vec<_> = scene
            .antenna_poses()
            .iter()
            .zip(&survey.per_antenna)
            .map(|(&p, r)| {
                rf_prism::core::model::extract_observation(
                    p,
                    r,
                    &rf_prism::core::model::ExtractConfig::paper(),
                )
                .expect("calibration survey")
            })
            .collect();
        calibrations.insert(
            id,
            DeviceCalibration::from_observations(
                &observations,
                calibration_pose.0,
                calibration_pose.1,
            ),
        );
    }

    // Train on reference bottles at a few shelf spots.
    let mut train = Dataset::new(Material::CLASSES.len());
    let spots = [Vec2::new(0.0, 1.0), Vec2::new(1.0, 1.8), Vec2::new(0.5, 2.2)];
    for (i, &material) in Material::CLASSES.iter().enumerate() {
        for (j, &spot) in spots.iter().enumerate() {
            for rep in 0..6u64 {
                let id = tag_ids[(i + j) % tag_ids.len()];
                let tag = SimTag::with_seeded_diversity(id)
                    .attached_to(material)
                    .with_motion(Motion::planar_static(spot, 0.0));
                let survey = scene.survey(&tag, 5_000 + (i * 100 + j * 10) as u64 + rep);
                if let Ok(result) = prism.sense(&survey.per_antenna) {
                    let feats = result
                        .material_features(calibrations.get(id).unwrap(), channel_count);
                    train.push(feats.to_vector(), i);
                }
            }
        }
    }
    let identifier = MaterialIdentifier::train(&train, &ClassifierKind::paper_default());
    println!("trained material identifier on {} reference measurements", train.len());

    // ---- The shelf today ------------------------------------------------
    // Four bottles were re-shelved overnight; nobody recorded where.
    let slots = [
        Slot { name: "slot 1", position: Vec2::new(-0.25, 1.20) },
        Slot { name: "slot 2", position: Vec2::new(0.35, 1.60) },
        Slot { name: "slot 3", position: Vec2::new(0.90, 1.15) },
        Slot { name: "slot 4", position: Vec2::new(1.25, 2.05) },
    ];
    let contents = [Material::Alcohol, Material::Water, Material::EdibleOil, Material::SkimMilk];

    println!();
    println!("inventory scan:");
    let mut alcohol_slot: Option<&str> = None;
    for (k, (slot, &material)) in slots.iter().zip(&contents).enumerate() {
        let id = tag_ids[k % tag_ids.len()];
        let tag = SimTag::with_seeded_diversity(id)
            .attached_to(material)
            .with_motion(Motion::planar_static(slot.position, 0.3 * k as f64));
        let survey = scene.survey(&tag, 9_000 + k as u64);
        let result = prism.sense(&survey.per_antenna).expect("static shelf");
        let feats = result.material_features(calibrations.get(id).unwrap(), channel_count);
        let identified = identifier.identify(&feats);
        let err_cm = result.estimate.position.distance(slot.position) * 100.0;
        println!(
            "  tag {id}: at ({:+.2}, {:.2}) m (err {err_cm:4.1} cm) → {}  [truth: {}]",
            result.estimate.position.x, result.estimate.position.y, identified, material
        );
        if identified == Material::Alcohol {
            // Which slot is closest to the estimate?
            let nearest = slots
                .iter()
                .min_by(|a, b| {
                    let da = result.estimate.position.distance(a.position);
                    let db = result.estimate.position.distance(b.position);
                    da.partial_cmp(&db).expect("finite")
                })
                .expect("nonempty");
            alcohol_slot = Some(nearest.name);
        }
    }

    println!();
    match alcohol_slot {
        Some(slot) => println!("Q: where is the 75% alcohol?  A: {slot}"),
        None => println!("Q: where is the 75% alcohol?  A: not found on this shelf"),
    }
}
