//! Robust line fitting with outlier-channel rejection — the paper's
//! multipath suppression (Section V-D).
//!
//! In a multipath environment the phase readings at different channels
//! suffer different superpositions of the reflected paths. As long as the
//! line-of-sight path dominates, *most* channels still lie on the ideal
//! line while a minority deviate strongly. The paper's insight: 50 channels
//! are far more than a line fit needs, so detect the deviating channels as
//! outliers and fit on the clean remainder.
//!
//! Algorithm: seed with a Theil–Sen fit (robust to ≲29 % corruption),
//! compute residuals, estimate their scale with the MAD, drop points whose
//! residual exceeds `threshold × scale`, refit with OLS, and iterate until
//! the inlier set stabilizes. A floor on the scale prevents the rejection
//! from eating legitimate noise when the data is already clean.

use crate::linfit::{self, FitError, LineFit};
use crate::stats;
use crate::workspace::{masked_fit_diagnostics, FitWorkspace, OlsSums};

/// Configuration for [`robust_line_fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustFitConfig {
    /// Residuals beyond `threshold × scale` are outliers (default 2.5).
    pub threshold: f64,
    /// Lower bound on the residual scale, radians — protects clean data
    /// from over-rejection (default 0.012, a few× the per-channel phase
    /// noise of the paper-like reader configuration).
    pub scale_floor: f64,
    /// Maximum reject-refit iterations (default 5).
    pub max_iterations: usize,
    /// Never drop below this fraction of the points (default 0.5).
    pub min_inlier_fraction: f64,
}

impl Default for RobustFitConfig {
    fn default() -> Self {
        RobustFitConfig {
            threshold: 2.5,
            scale_floor: 0.012,
            max_iterations: 5,
            min_inlier_fraction: 0.5,
        }
    }
}

/// Result of a robust fit: the final OLS fit on the inliers plus the mask of
/// points that survived.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustFit {
    /// Final fit computed on the inlier subset.
    pub fit: LineFit,
    /// `true` for points kept as inliers (same order as the input).
    pub inliers: Vec<bool>,
    /// Number of reject-refit iterations performed.
    pub iterations: usize,
}

impl RobustFit {
    /// Number of inlier points.
    pub fn inlier_count(&self) -> usize {
        self.inliers.iter().filter(|&&b| b).count()
    }

    /// Fraction of points kept.
    pub fn inlier_fraction(&self) -> f64 {
        self.inlier_count() as f64 / self.inliers.len() as f64
    }
}

/// Robust straight-line fit with iterative outlier rejection.
///
/// # Errors
///
/// Returns [`FitError`] if the initial Theil–Sen fit cannot be computed
/// (fewer than two points, mismatched lengths, degenerate x).
///
/// # Example
///
/// ```
/// use rfp_dsp::robust::{robust_line_fit, RobustFitConfig};
/// let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
/// let mut ys: Vec<f64> = xs.iter().map(|x| 0.2 * x + 1.0).collect();
/// ys[7] += 2.0; // one multipath-corrupted channel
/// let r = robust_line_fit(&xs, &ys, &RobustFitConfig::default())?;
/// assert!(!r.inliers[7]);
/// assert!((r.fit.slope - 0.2).abs() < 1e-9);
/// # Ok::<(), rfp_dsp::linfit::FitError>(())
/// ```
pub fn robust_line_fit(
    xs: &[f64],
    ys: &[f64],
    config: &RobustFitConfig,
) -> Result<RobustFit, FitError> {
    let mut ws = FitWorkspace::default();
    let summary = robust_line_fit_with(&mut ws, xs, ys, config)?;
    Ok(RobustFit {
        fit: summary.fit,
        inliers: ws.inlier_mask().to_vec(),
        iterations: summary.iterations,
    })
}

/// Outcome of [`robust_line_fit_with`]: the final inlier fit plus loop
/// bookkeeping. The inlier mask itself stays in the workspace
/// ([`FitWorkspace::inlier_mask`]) so the kernel allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustSummary {
    /// Final fit computed on the inlier subset.
    pub fit: LineFit,
    /// Number of reject-refit iterations performed.
    pub iterations: usize,
    /// Number of points kept as inliers.
    pub inlier_count: usize,
}

impl RobustSummary {
    /// Fraction of the points kept, given the input length.
    pub fn inlier_fraction(&self, n: usize) -> f64 {
        self.inlier_count as f64 / n as f64
    }
}

/// [`robust_line_fit`] against caller-owned scratch, with an incremental
/// refit: the full-set OLS sums (`Σx, Σy, Σxy, Σx²`, anchored at the
/// first abscissa) are accumulated once, and each rejection round
/// *downdates* them by the excluded points instead of re-collecting and
/// refitting the inlier subset from scratch. Zero heap allocations once
/// the workspace buffers are sized.
///
/// The refit solution comes from the downdated normal equations rather
/// than a freshly centered two-pass OLS, so the result can differ from
/// the pre-rework implementation in the last couple of ulps (the
/// `frontend_workspace` property suite bounds the difference); the
/// allocating [`robust_line_fit`] delegates here, keeping both public
/// paths bit-identical to each other.
///
/// # Errors
///
/// As [`robust_line_fit`].
pub fn robust_line_fit_with(
    ws: &mut FitWorkspace,
    xs: &[f64],
    ys: &[f64],
    config: &RobustFitConfig,
) -> Result<RobustSummary, FitError> {
    // Margin 0 disables the sensitivity probe; the probe is a pure
    // observation, so this delegation is arithmetically identical to the
    // pre-probe implementation.
    robust_line_fit_with_sensitivity(ws, xs, ys, config, 0.0).map(|(summary, _)| summary)
}

/// [`robust_line_fit_with`] plus a **decision-sensitivity probe** for
/// incremental callers: the second return value is `true` when any
/// rejection decision of any iteration sat within `margin` of its
/// boundary — a point's absolute residual within `margin` of the cutoff,
/// or the residual gap across the `min_inliers` rank boundary below
/// `margin`.
///
/// The streaming front end feeds this fit phases that may differ from the
/// batch recompute by up to its downdating drift bound (≪ the margin). If
/// the probe stays `false`, every mask decision cleared its boundary by
/// more than the drift, so the inlier masks are *guaranteed* identical to
/// the batch fit's; if it fires, the caller falls back to the bit-exact
/// full recompute. The probe never changes the arithmetic — with
/// `margin == 0.0` it cannot fire and the fit is exactly
/// [`robust_line_fit_with`].
///
/// # Errors
///
/// As [`robust_line_fit`].
pub fn robust_line_fit_with_sensitivity(
    ws: &mut FitWorkspace,
    xs: &[f64],
    ys: &[f64],
    config: &RobustFitConfig,
    margin: f64,
) -> Result<(RobustSummary, bool), FitError> {
    let current = linfit::theil_sen_with(ws, xs, ys)?;
    reject_refit_loop(ws, xs, ys, config, margin, current)
}

/// [`robust_line_fit_with_sensitivity`] with the Theil–Sen *slope*
/// supplied by the caller instead of recomputed from the O(n²) pairwise
/// enumeration. The caller must pass exactly the median slope
/// [`linfit::theil_sen_with`] would produce on `(xs, ys)` — streaming
/// windows maintain the pairwise-slope multiset incrementally across
/// advances and take the median of the same values in the same order, so
/// the guarantee holds bitwise and the whole fit (seed intercept,
/// diagnostics, every rejection round) is bit-identical to the unseeded
/// call.
///
/// # Errors
///
/// As [`robust_line_fit`].
pub fn robust_line_fit_seeded(
    ws: &mut FitWorkspace,
    xs: &[f64],
    ys: &[f64],
    config: &RobustFitConfig,
    margin: f64,
    seed_slope: f64,
) -> Result<(RobustSummary, bool), FitError> {
    let current = linfit::theil_sen_from_slope(ws, xs, ys, seed_slope)?;
    reject_refit_loop(ws, xs, ys, config, margin, current)
}

/// The shared reject-refit loop behind both robust entries, starting from
/// the given seed fit.
fn reject_refit_loop(
    ws: &mut FitWorkspace,
    xs: &[f64],
    ys: &[f64],
    config: &RobustFitConfig,
    margin: f64,
    mut current: LineFit,
) -> Result<(RobustSummary, bool), FitError> {
    let mut sensitive = false;
    let n = xs.len();
    let min_inliers = ((n as f64 * config.min_inlier_fraction).ceil() as usize).max(2);
    ws.inliers.clear();
    ws.inliers.resize(n, true);
    let mut inlier_count = n;
    let mut iterations = 0;

    // Full-set sums, downdated per round by the excluded points.
    let mut all = OlsSums::anchored(xs[0]);
    for (&x, &y) in xs.iter().zip(ys) {
        all.add(x, y);
    }

    for _ in 0..config.max_iterations {
        iterations += 1;
        ws.resid.clear();
        ws.resid.resize(n, 0.0);
        current.residuals_into(xs, ys, &mut ws.resid);
        ws.abs_res.clear();
        ws.abs_res.extend(ws.resid.iter().map(|r| r.abs()));
        let scale = (stats::mad_with(&ws.resid, &mut ws.scratch).unwrap_or(0.0)
            * stats::MAD_TO_SIGMA)
            .max(config.scale_floor);
        let cutoff = config.threshold * scale;

        // Rank points by residual so we can respect the inlier floor even if
        // many points exceed the cutoff. Unstable sort with the index as a
        // tie-break reproduces the stable ranking without its merge buffer.
        ws.order.clear();
        ws.order.extend(0..n);
        let abs_res = &ws.abs_res;
        ws.order.sort_unstable_by(|&a, &b| {
            abs_res[a].partial_cmp(&abs_res[b]).expect("finite").then(a.cmp(&b))
        });
        ws.inliers_next.clear();
        ws.inliers_next.resize(n, false);
        for (rank, &idx) in ws.order.iter().enumerate() {
            if rank < min_inliers || ws.abs_res[idx] <= cutoff {
                ws.inliers_next[idx] = true;
            }
        }
        if margin > 0.0 {
            // Cutoff proximity: a residual this close to the cutoff could
            // land on the other side under sub-margin input drift.
            sensitive |= ws.abs_res.iter().any(|&ar| (ar - cutoff).abs() < margin);
            // Rank boundary: near-tied residuals straddling the inlier
            // floor could swap ranks under drift and flip which point the
            // floor retains. Rank only decides membership for points the
            // cutoff would reject, so a tie among clear cutoff-inliers is
            // harmless.
            if n > min_inliers {
                let floor_last = ws.abs_res[ws.order[min_inliers - 1]];
                let floor_next = ws.abs_res[ws.order[min_inliers]];
                sensitive |=
                    floor_next - floor_last < margin && floor_next > cutoff - margin;
            }
        }

        // Incremental refit: subtract the excluded points from the
        // full-set sums (typically a handful) rather than re-accumulating
        // the inlier subset.
        let mut sums = all;
        for (i, &keep) in ws.inliers_next.iter().enumerate() {
            if !keep {
                sums.remove(xs[i], ys[i]);
            }
        }
        let (slope, intercept) = sums.solve()?;
        let ybar = sums.ybar();
        let (r_squared, residual_std) =
            masked_fit_diagnostics(xs, ys, &ws.inliers_next, slope, intercept, ybar);
        let refit = LineFit { slope, intercept, r_squared, residual_std, n: sums.n };

        let converged = ws.inliers_next == ws.inliers;
        std::mem::swap(&mut ws.inliers, &mut ws.inliers_next);
        inlier_count = sums.n;
        current = refit;
        if converged {
            break;
        }
    }

    Ok((RobustSummary { fit: current, iterations, inlier_count }, sensitive))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(xs: &[f64], slope: f64, intercept: f64) -> Vec<f64> {
        xs.iter().map(|x| slope * x + intercept).collect()
    }

    #[test]
    fn clean_data_keeps_everything() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys = line(&xs, 0.13, -2.0);
        let r = robust_line_fit(&xs, &ys, &RobustFitConfig::default()).unwrap();
        assert_eq!(r.inlier_count(), 50);
        assert!((r.fit.slope - 0.13).abs() < 1e-12);
    }

    #[test]
    fn sensitivity_probe_is_pure_observation() {
        let xs: Vec<f64> = (0..40).map(|i| i as f64 * 0.3).collect();
        let mut ys = line(&xs, 0.21, 1.4);
        ys[7] += 0.9;
        ys[19] -= 1.1;
        let cfg = RobustFitConfig::default();
        let baseline = robust_line_fit(&xs, &ys, &cfg).unwrap();
        let mut ws = FitWorkspace::default();
        let (probed, sensitive) =
            robust_line_fit_with_sensitivity(&mut ws, &xs, &ys, &cfg, 1e-6).unwrap();
        assert_eq!(probed.fit.slope.to_bits(), baseline.fit.slope.to_bits());
        assert_eq!(probed.fit.intercept.to_bits(), baseline.fit.intercept.to_bits());
        assert_eq!(probed.inlier_count, baseline.inlier_count());
        // Clean margins: outliers sit ~1 rad from a ~0.03 cutoff.
        assert!(!sensitive);
        // A residual parked exactly on the cutoff must trip the probe.
        let (_, near) =
            robust_line_fit_with_sensitivity(&mut ws, &xs, &ys, &cfg, 10.0).unwrap();
        assert!(near);
    }

    #[test]
    fn rejects_multipath_like_outliers() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut ys = line(&xs, 0.1, 0.5);
        let corrupted = [3usize, 11, 24, 25, 40, 41, 42];
        for &i in &corrupted {
            ys[i] += if i % 2 == 0 { 1.5 } else { -2.2 };
        }
        let r = robust_line_fit(&xs, &ys, &RobustFitConfig::default()).unwrap();
        for &i in &corrupted {
            assert!(!r.inliers[i], "channel {i} should be rejected");
        }
        assert!((r.fit.slope - 0.1).abs() < 1e-9);
        assert!((r.fit.intercept - 0.5).abs() < 1e-9);
    }

    #[test]
    fn respects_min_inlier_fraction() {
        // Half the channels corrupted consistently: the fit cannot drop
        // below the floor.
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut ys = line(&xs, 0.2, 0.0);
        for i in 0..10 {
            ys[i * 2] += 5.0;
        }
        let cfg = RobustFitConfig { min_inlier_fraction: 0.6, ..Default::default() };
        let r = robust_line_fit(&xs, &ys, &cfg).unwrap();
        assert!(r.inlier_fraction() >= 0.6 - 1e-12);
    }

    #[test]
    fn scale_floor_prevents_overrejection_of_noise() {
        // Small Gaussian-ish noise, no outliers: with a sane floor nothing
        // should be rejected.
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 0.1 * x + 0.01 * ((i * 7919 % 13) as f64 - 6.0) / 6.0)
            .collect();
        let r = robust_line_fit(&xs, &ys, &RobustFitConfig::default()).unwrap();
        assert_eq!(r.inlier_count(), 50);
    }

    #[test]
    fn propagates_fit_errors() {
        assert!(robust_line_fit(&[1.0], &[1.0], &RobustFitConfig::default()).is_err());
    }

    #[test]
    fn iterations_bounded() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let ys = line(&xs, 1.0, 0.0);
        let cfg = RobustFitConfig { max_iterations: 3, ..Default::default() };
        let r = robust_line_fit(&xs, &ys, &cfg).unwrap();
        assert!(r.iterations <= 3);
    }

    #[test]
    fn workspace_kernel_matches_allocating_api() {
        let xs: Vec<f64> = (0..50).map(|i| 9.02e8 + 5e5 * i as f64).collect();
        let mut ys = line(&xs, 1.2e-8, 0.4);
        for &i in &[4usize, 18, 33] {
            ys[i] += 1.7;
        }
        let mut ws = FitWorkspace::default();
        for rep in 0..3 {
            let shift = rep as f64 * 0.1;
            let ys2: Vec<f64> = ys.iter().map(|y| y + shift).collect();
            let with = robust_line_fit_with(&mut ws, &xs, &ys2, &RobustFitConfig::default())
                .unwrap();
            let alloc = robust_line_fit(&xs, &ys2, &RobustFitConfig::default()).unwrap();
            assert_eq!(with.fit, alloc.fit);
            assert_eq!(with.iterations, alloc.iterations);
            assert_eq!(with.inlier_count, alloc.inlier_count());
            assert_eq!(ws.inlier_mask(), alloc.inliers.as_slice());
        }
    }

    #[test]
    fn downdated_refit_tracks_reference_implementation() {
        let xs: Vec<f64> = (0..50).map(|i| 9.02e8 + 5e5 * i as f64).collect();
        let mut ys = line(&xs, 1.2e-8, 0.4);
        for &i in &[4usize, 18, 33, 41] {
            ys[i] += if i % 2 == 0 { 1.7 } else { -2.3 };
        }
        let new = robust_line_fit(&xs, &ys, &RobustFitConfig::default()).unwrap();
        let old = crate::reference::robust_line_fit(&xs, &ys, &RobustFitConfig::default())
            .unwrap();
        assert_eq!(new.inliers, old.inliers);
        assert!((new.fit.slope - old.fit.slope).abs() <= 1e-9 * old.fit.slope.abs().max(1e-12));
        assert!((new.fit.intercept - old.fit.intercept).abs() <= 1e-6);
    }
}

/// Huber IRLS line fit: a soft alternative to hard outlier rejection.
///
/// Iteratively reweighted least squares with Huber weights
/// `w = min(1, delta / |r|)`: residuals below `delta` count fully,
/// larger ones are down-weighted proportionally instead of being dropped.
/// Softer than [`robust_line_fit`] — it never zeroes a channel, so a
/// *sharp* outlier still leaks a little bias, but smooth heavy-tailed
/// noise is handled more gracefully.
///
/// # Errors
///
/// Propagates [`FitError`] from the underlying weighted fits.
///
/// # Example
///
/// ```
/// use rfp_dsp::robust::huber_line_fit;
/// let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
/// let mut ys: Vec<f64> = xs.iter().map(|x| 0.3 * x - 1.0).collect();
/// ys[10] += 5.0;
/// let fit = huber_line_fit(&xs, &ys, 0.05, 10)?;
/// assert!((fit.slope - 0.3).abs() < 0.01);
/// # Ok::<(), rfp_dsp::linfit::FitError>(())
/// ```
pub fn huber_line_fit(
    xs: &[f64],
    ys: &[f64],
    delta: f64,
    iterations: usize,
) -> Result<LineFit, FitError> {
    huber_line_fit_with(&mut FitWorkspace::default(), xs, ys, delta, iterations)
}

/// [`huber_line_fit`] against caller-owned scratch: the IRLS weight column
/// lives in the workspace instead of being reallocated every round.
/// Returns the same fit as [`huber_line_fit`].
///
/// # Errors
///
/// As [`huber_line_fit`].
pub fn huber_line_fit_with(
    ws: &mut FitWorkspace,
    xs: &[f64],
    ys: &[f64],
    delta: f64,
    iterations: usize,
) -> Result<LineFit, FitError> {
    let mut fit = linfit::ols(xs, ys)?;
    for _ in 0..iterations {
        ws.weights.clear();
        ws.weights.extend(xs.iter().zip(ys).map(|(&x, &y)| {
            let r = (y - fit.predict(x)).abs();
            if r <= delta {
                1.0
            } else {
                delta / r
            }
        }));
        let next = linfit::weighted_ols(xs, ys, &ws.weights)?;
        let converged = (next.slope - fit.slope).abs() < 1e-15
            && (next.intercept - fit.intercept).abs() < 1e-12;
        fit = next;
        if converged {
            break;
        }
    }
    Ok(fit)
}

#[cfg(test)]
mod huber_tests {
    use super::*;

    #[test]
    fn matches_ols_on_clean_data() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -0.2 * x + 3.0).collect();
        let h = huber_line_fit(&xs, &ys, 0.05, 10).unwrap();
        assert!((h.slope + 0.2).abs() < 1e-12);
        assert!((h.intercept - 3.0).abs() < 1e-12);
    }

    #[test]
    fn downweights_spikes() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut ys: Vec<f64> = xs.iter().map(|x| 0.1 * x).collect();
        for &i in &[5usize, 30, 44] {
            ys[i] -= 3.0;
        }
        let ols_fit = linfit::ols(&xs, &ys).unwrap();
        let h = huber_line_fit(&xs, &ys, 0.05, 15).unwrap();
        assert!(
            (h.slope - 0.1).abs() < (ols_fit.slope - 0.1).abs() / 3.0,
            "huber {} vs ols {}",
            h.slope,
            ols_fit.slope
        );
    }

    #[test]
    fn propagates_errors() {
        assert!(huber_line_fit(&[1.0], &[1.0], 0.1, 5).is_err());
    }
}
