//! Offline API-compatible subset of the `rand` 0.8 crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the thin slice of `rand` it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), uniform sampling over ranges
//! ([`Rng::gen_range`]), standard sampling ([`Rng::gen`]) and Fisher–Yates
//! shuffling ([`seq::SliceRandom::shuffle`]).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high-quality,
//! fast, and fully deterministic per seed. The *stream* differs from the
//! upstream `rand::rngs::StdRng` (ChaCha12), which is fine: all in-repo
//! consumers treat seeds as opaque reproducibility handles, never as
//! golden-value anchors.

#![forbid(unsafe_code)]

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (always deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value of `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform, `bool` fair).
    fn gen<T: distributions::Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples a `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha12 `StdRng` — see the crate docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! Sampling traits backing [`crate::Rng::gen`] and
    //! [`crate::Rng::gen_range`].

    use super::RngCore;

    /// Types with a canonical "standard" distribution.
    pub trait Standard: Sized {
        /// Draws one value from the standard distribution.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for f64 {
        #[inline]
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
            // 53 high bits → uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Standard for f32 {
        #[inline]
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Standard for bool {
        #[inline]
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard for u64 {
        #[inline]
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Standard for u32 {
        #[inline]
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    pub mod uniform {
        //! Range sampling for [`crate::Rng::gen_range`].

        use crate::RngCore;
        use core::ops::{Range, RangeInclusive};

        /// A range argument accepted by [`crate::Rng::gen_range`].
        pub trait SampleRange<T> {
            /// Draws one value uniformly from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! int_range_impl {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    #[inline]
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let draw = rng.next_u64() as u128 % span;
                        (self.start as i128 + draw as i128) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    #[inline]
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = self.into_inner();
                        assert!(lo <= hi, "gen_range: empty range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let draw = rng.next_u64() as u128 % span;
                        (lo as i128 + draw as i128) as $t
                    }
                }
            )*};
        }

        int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! float_range_impl {
            ($($t:ty => $std:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    #[inline]
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let u = <$t as crate::distributions::Standard>::sample_standard(rng);
                        let v = self.start + (self.end - self.start) * u;
                        // Guard the half-open invariant against rounding.
                        if v < self.end { v } else { self.start }
                    }
                }
            )*};
        }

        float_range_impl!(f64 => f64, f32 => f32);
    }
}

pub mod seq {
    //! Slice helpers (`shuffle`, `choose`).

    use super::{Rng, RngCore};

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(3usize..9);
            assert!((3..9).contains(&i));
            let j = rng.gen_range(0usize..=4);
            assert!(j <= 4);
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
