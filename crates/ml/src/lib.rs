//! From-scratch machine-learning primitives for RF-Prism.
//!
//! The paper identifies the material of a tagged target from the
//! disentangled feature vector `F = (k_t, b_t, θ_material(f₁..f₅₀))` and
//! compares three classifiers (Fig. 13): K-Nearest-Neighbour, an SVM and a
//! Decision Tree, with the tree winning at 87.9 %. The Tagtag baseline
//! additionally needs Dynamic Time Warping. None of these exist as
//! maintained pure-Rust crates suitable for this workspace, so they are
//! implemented here from scratch:
//!
//! * [`dataset`] — feature matrices with labels, seeded train/test splits
//!   and k-fold cross-validation;
//! * [`scaler`] — per-feature standardization (essential for KNN/SVM on the
//!   mixed-magnitude RF-Prism features);
//! * [`metrics`] — accuracy and row-normalized confusion matrices
//!   (paper Fig. 11);
//! * [`knn`] — K-Nearest-Neighbour with majority vote;
//! * [`tree`] — CART decision tree with Gini impurity;
//! * [`svm`] — soft-margin SVM trained with simplified SMO, linear or RBF
//!   kernel, one-vs-one multiclass;
//! * [`dtw`] — Dynamic Time Warping distance and a 1-NN DTW classifier
//!   (the Tagtag baseline's engine);
//! * [`forest`] — random forest (bagged CART, an extension beyond the
//!   paper's classifiers);
//! * [`modsel`] — k-fold cross-validation and grid search;
//! * [`mlp`] — a small multi-layer perceptron (the paper's §VII
//!   "deep-learning methods" future-work extension).
//!
//! # Example
//!
//! ```
//! use rfp_ml::dataset::Dataset;
//! use rfp_ml::tree::DecisionTree;
//! use rfp_ml::Classifier;
//!
//! let mut ds = Dataset::new(2);
//! for i in 0..20 {
//!     let x = i as f64 / 10.0;
//!     ds.push(vec![x, 1.0 - x], usize::from(x >= 1.0));
//! }
//! let tree = DecisionTree::fit(&ds, &Default::default());
//! assert_eq!(tree.predict(&[0.1, 0.9]), 0);
//! assert_eq!(tree.predict(&[1.9, -0.9]), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod dtw;
pub mod forest;
pub mod knn;
pub mod metrics;
pub mod mlp;
pub mod modsel;
pub mod scaler;
pub mod svm;
pub mod tree;

pub use dataset::Dataset;
pub use metrics::ConfusionMatrix;

/// A trained multi-class classifier mapping a feature vector to a class
/// index.
///
/// All classifiers in this crate implement the trait, so evaluation code
/// (e.g. the Fig. 13 classifier comparison) can be generic.
pub trait Classifier {
    /// Predicts the class index for one feature vector.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `features` has a different length than
    /// the training data.
    fn predict(&self, features: &[f64]) -> usize;

    /// Predicts a batch of feature vectors.
    fn predict_batch(&self, features: &[Vec<f64>]) -> Vec<usize> {
        features.iter().map(|f| self.predict(f)).collect()
    }
}
