//! Trigonometry backends for the pre-processing hot path.
//!
//! Profiling after the SoA rework (PR 5) showed the front end's
//! `preprocess` stage is *trig-bound*: the π-jump correction evaluates a
//! libm `sin`/`cos` pair per raw read in the double-angle pass and again
//! in the fold pass, and those calls dominate the stage. This module
//! breaks that bound without giving up a single bit of accuracy on real
//! reader data, by exploiting the structure of the input:
//!
//! * **Quantized-code tables** ([`TrigProvider::Table`]) — an EPC Gen2 /
//!   LLRP reader reports phase on a 12-bit grid: every reported phase is
//!   exactly `c · 2π/4096` for a code `c ∈ 0..4096` (the LSB is
//!   `2π · 2⁻¹²`, whose mantissa is exact, so the grid points are exact
//!   f64 products). When a [`RawRead`](crate::preprocess::RawRead)
//!   carries its code, every trig value the front end needs —
//!   `sin/cos(p)`, `sin/cos(2·p)` for the double-angle trick and
//!   `sin/cos(p + π)` for the fold pass — is one of `3 × 4096`
//!   precomputed values. The tables are filled by calling libm **on the
//!   exact expressions the scalar code would evaluate**, so the table
//!   path is bit-identical to the libm path *by construction*; the
//!   `table_matches_libm_for_every_code` test proves it exhaustively for
//!   all 4096 codes rather than by sampling. Reads without a code fall
//!   back to libm, so `Table` is always bit-identical to [`Libm`] and is
//!   therefore the default.
//! * **Bounded-error polynomial** ([`TrigProvider::Polynomial`]) — for
//!   continuous (non-quantized) phases, e.g. the ideal simulator, a
//!   Cody–Waite range reduction plus degree-13/14 Taylor kernels give a
//!   fused `sin`+`cos` with max absolute error ≤ [`POLY_MAX_ABS_ERROR`]
//!   over the front end's whole input domain. Unlike libm it is
//!   straight-line branch-light code, so the 4-wide unrolled lane fills
//!   in `preprocess` autovectorize.
//! * **libm** ([`TrigProvider::Libm`]) — the previous behaviour, kept as
//!   the oracle the other two backends are tested against and as the
//!   fallback for codeless reads.
//! * **Phasor recurrence** ([`TrigProvider::Recurrence`]) — for
//!   continuous phases arriving at a fixed sample cadence (the streaming
//!   front end): successive angles within one dwell differ by a small
//!   step, so `sin/cos` advance by one complex rotation
//!   (`z ← z · e^{iδ}`) instead of a fresh table/polynomial evaluation,
//!   with periodic renormalization and re-anchoring bounding the
//!   accumulated error at [`RECURRENCE_MAX_ABS_ERROR`]. See
//!   [`PhasorRecurrence`].
//!
//! [`Libm`]: TrigProvider::Libm

use std::f64::consts::{PI, TAU};
use std::sync::OnceLock;

/// Number of points on the reader's phase grid (12-bit LLRP `PhaseAngle`).
pub const PHASE_CODES: usize = 4096;

/// Phase quantization step of the reader grid, radians.
///
/// Mirrors `rfp_phys::constants::IMPINJ_PHASE_LSB_RAD` (rfp-dsp does not
/// depend on rfp-phys; a cross-crate test in rfp-sim pins the two
/// constants bit-equal). `TAU / 4096` divides by a power of two, so the
/// LSB — and every grid point `c · LSB` — is computed exactly.
pub const PHASE_LSB_RAD: f64 = TAU / PHASE_CODES as f64;

/// Documented maximum absolute error of [`poly_sin_cos`] against libm
/// over the front end's input domain (|x| ≤ 16, which covers doubled
/// angles in `[0, 4π)` and π-shifted folds in `[0, 3π)` with margin).
///
/// The actual error is ~2e-14 (Taylor truncation ≈ (π/4)¹⁵/15! for sin,
/// ≈ (π/4)¹⁶/16! for cos, plus ~6e-15 of range-reduction rounding); the
/// bound is deliberately loose and pinned by the `trig_provider`
/// property suite.
pub const POLY_MAX_ABS_ERROR: f64 = 1e-12;

/// Which trigonometry backend the pre-processing front end uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TrigProvider {
    /// Quantized-code tables for reads that carry a phase code, libm for
    /// the rest. Bit-identical to [`TrigProvider::Libm`] on every input,
    /// and the fastest backend on real (quantized) reader data — hence
    /// the default.
    #[default]
    Table,
    /// Bounded-error polynomial `sin`/`cos` (max abs error
    /// ≤ [`POLY_MAX_ABS_ERROR`]) for continuous synthetic phases.
    Polynomial,
    /// Plain libm `sin`/`cos` — the oracle and historical behaviour.
    Libm,
    /// Phasor recurrence for continuous phases at a fixed sample cadence
    /// (streaming): one complex rotation per read instead of a fresh
    /// evaluation, max abs error ≤ [`RECURRENCE_MAX_ABS_ERROR`].
    Recurrence,
}

/// Index of a backend's hit counter in the per-call
/// `[table, poly, libm, recurrence]` tallies kept by the workspace (and
/// exported as `frontend.trig_*` observability counters).
pub(crate) mod hit {
    pub const TABLE: usize = 0;
    pub const POLY: usize = 1;
    pub const LIBM: usize = 2;
    pub const RECURRENCE: usize = 3;
}

/// The three table families, one entry per phase code `c`:
/// `sin/cos(p)`, `sin/cos(2·p)` and `sin/cos(p + π)` for `p = c · LSB`.
struct PhaseTables {
    sin: [f64; PHASE_CODES],
    cos: [f64; PHASE_CODES],
    dbl_sin: [f64; PHASE_CODES],
    dbl_cos: [f64; PHASE_CODES],
    shift_sin: [f64; PHASE_CODES],
    shift_cos: [f64; PHASE_CODES],
}

static TABLES: OnceLock<PhaseTables> = OnceLock::new();

/// The shared tables, built once on first use (inline in the static — no
/// heap allocation, ~196 KiB total).
fn tables() -> &'static PhaseTables {
    TABLES.get_or_init(|| {
        let mut t = PhaseTables {
            sin: [0.0; PHASE_CODES],
            cos: [0.0; PHASE_CODES],
            dbl_sin: [0.0; PHASE_CODES],
            dbl_cos: [0.0; PHASE_CODES],
            shift_sin: [0.0; PHASE_CODES],
            shift_cos: [0.0; PHASE_CODES],
        };
        for c in 0..PHASE_CODES {
            // Each entry evaluates libm on the *same expression* the
            // scalar fallback computes from a grid phase, so equality is
            // bitwise by construction. Note `2.0 * p` and `p + PI` leave
            // the grid (doubling is exact; the π shift rounds once) —
            // exactly as they do in the scalar code.
            let p = c as f64 * PHASE_LSB_RAD;
            t.sin[c] = p.sin();
            t.cos[c] = p.cos();
            t.dbl_sin[c] = (2.0 * p).sin();
            t.dbl_cos[c] = (2.0 * p).cos();
            t.shift_sin[c] = (p + PI).sin();
            t.shift_cos[c] = (p + PI).cos();
        }
        t
    })
}

/// Forces table construction now (e.g. before arming an allocation
/// counter or starting a benchmark timer). Idempotent and cheap after
/// the first call.
pub fn warm_tables() {
    let _ = tables();
}

/// The phase code whose grid point is **bitwise equal** to `phase`, if
/// any: `Some(c)` iff `phase == c · `[`PHASE_LSB_RAD`] exactly as f64,
/// with `c ∈ 0..4096`.
///
/// This is the safe way to attach codes at ingest: it never guesses. A
/// phase produced by the reader model's quantizer (round to the grid,
/// then wrap into `[0, 2π)`) always round-trips; an arbitrary continuous
/// phase almost never does and gets `None`, routing those reads to the
/// libm/polynomial paths.
#[inline]
pub fn code_for_phase(phase: f64) -> Option<u16> {
    let c = (phase / PHASE_LSB_RAD).round();
    if (0.0..PHASE_CODES as f64).contains(&c) && (c * PHASE_LSB_RAD).to_bits() == phase.to_bits()
    {
        Some(c as u16)
    } else {
        None
    }
}

/// Table lookup of `(sin, cos)` of the grid phase for `code`, bit-equal
/// to `((c·LSB).sin(), (c·LSB).cos())`. Codes are taken modulo 4096.
#[inline]
pub fn table_sin_cos(code: u16) -> (f64, f64) {
    let t = tables();
    let i = code as usize % PHASE_CODES;
    (t.sin[i], t.cos[i])
}

/// Table lookup of `(sin, cos)` of the **doubled** grid phase for
/// `code`, bit-equal to `((2.0·(c·LSB)).sin(), (2.0·(c·LSB)).cos())` —
/// the double-angle accumulation of the π-jump correction. Indexed by
/// the *original* code: `2·p` leaves the grid (e.g. `2·(c·LSB)` is not
/// the grid point of code `2c mod 4096` once the doubled angle exceeds
/// 2π and the scalar code does *not* re-wrap), so a dedicated table is
/// required for bit-identity.
#[inline]
pub fn table_double_sin_cos(code: u16) -> (f64, f64) {
    let t = tables();
    let i = code as usize % PHASE_CODES;
    (t.dbl_sin[i], t.dbl_cos[i])
}

/// Table lookup of `(sin, cos)` of the **π-shifted** grid phase for
/// `code`, bit-equal to `(((c·LSB)+π).sin(), ((c·LSB)+π).cos())` — the
/// fold-pass value for a read folded onto the opposite cluster. The
/// shift is a plain f64 add of `π` (itself off-grid), matching the
/// scalar `folded = p + PI` expression exactly.
#[inline]
pub fn table_shift_sin_cos(code: u16) -> (f64, f64) {
    let t = tables();
    let i = code as usize % PHASE_CODES;
    (t.shift_sin[i], t.shift_cos[i])
}

// Cody–Waite two-part split of π/2: PIO2_HI is π/2 rounded to f64,
// PIO2_LO the residual, so `x − k·PIO2_HI − k·PIO2_LO` recovers the
// reduced argument to well under an ulp of the working precision for the
// small quotients (|k| ≤ 11) this domain produces.
const PIO2_HI: f64 = std::f64::consts::FRAC_PI_2;
const PIO2_LO: f64 = 6.123_233_995_736_766e-17;

// Taylor coefficients on the reduced interval |r| ≤ π/4.
const S3: f64 = -1.0 / 6.0;
const S5: f64 = 1.0 / 120.0;
const S7: f64 = -1.0 / 5040.0;
const S9: f64 = 1.0 / 362_880.0;
const S11: f64 = -1.0 / 39_916_800.0;
const S13: f64 = 1.0 / 6_227_020_800.0;
const C2: f64 = -0.5;
const C4: f64 = 1.0 / 24.0;
const C6: f64 = -1.0 / 720.0;
const C8: f64 = 1.0 / 40_320.0;
const C10: f64 = -1.0 / 3_628_800.0;
const C12: f64 = 1.0 / 479_001_600.0;
const C14: f64 = -1.0 / 87_178_291_200.0;

/// `sin` and `cos` of `r` for `|r| ≤ π/4`, by Horner-evaluated Taylor
/// polynomials (degree 13 / 14).
#[inline(always)]
fn kernel_sin_cos(r: f64) -> (f64, f64) {
    let r2 = r * r;
    let s = r * (1.0
        + r2 * (S3 + r2 * (S5 + r2 * (S7 + r2 * (S9 + r2 * (S11 + r2 * S13))))));
    let c = 1.0
        + r2 * (C2 + r2 * (C4 + r2 * (C6 + r2 * (C8 + r2 * (C10 + r2 * (C12 + r2 * C14))))));
    (s, c)
}

/// Fused polynomial `(sin x, cos x)` with max absolute error
/// ≤ [`POLY_MAX_ABS_ERROR`] against libm for `|x| ≤ 16` (the front end
/// feeds it phases in `[0, 2π)`, doubled angles in `[0, 4π)` and
/// π-shifted folds in `[0, 3π)`).
///
/// Range reduction uses `k = ⌊x·2/π + ½⌋` (a vectorizable floor instead
/// of libm's round-half-away — any `k` with `|x − k·π/2| ≤ π/4 + ε` is
/// valid) and the two-part Cody–Waite π/2 split; the kernel then picks
/// the quadrant by `k mod 4`.
#[inline(always)]
pub fn poly_sin_cos(x: f64) -> (f64, f64) {
    let k = (x * std::f64::consts::FRAC_2_PI + 0.5).floor();
    let r = (x - k * PIO2_HI) - k * PIO2_LO;
    let (s, c) = kernel_sin_cos(r);
    match (k as i64).rem_euclid(4) {
        0 => (s, c),
        1 => (c, -s),
        2 => (-s, -c),
        _ => (-c, s),
    }
}

/// Documented maximum absolute error of [`poly_atan2`] (and the 4-lane
/// [`poly_atan2x4`]) against libm, full plane.
///
/// Budget: after the octant fold the kernel argument satisfies
/// `|u| ≤ tan(π/8)`, so the alternating Taylor truncation is bounded by
/// the first omitted term, `u³³/33 ≈ 7e-15`, leaving Horner/fold rounding
/// (a few 1e-16 ulps) as the dominant error. Pinned by the dense sweep
/// test. The consumers' ≤1e-9 full-solve pins leave ~4 orders of
/// magnitude of headroom for amplification through σ-normalization.
pub const POLY_ATAN2_MAX_ABS_ERROR: f64 = 1e-13;

/// `tan(π/8) = √2 − 1`: the octant-fold threshold of the atan kernel.
const TAN_PI_8: f64 = 0.414_213_562_373_095_15;

// Odd Taylor coefficients of atan on the folded range |u| ≤ tan(π/8):
// (−1)ᵏ/(2k+1) through the u³¹ term (truncation ≤ u³³/33 ≈ 7e-15).
const ATAN_COEFFS: [f64; 16] = [
    1.0,
    -1.0 / 3.0,
    1.0 / 5.0,
    -1.0 / 7.0,
    1.0 / 9.0,
    -1.0 / 11.0,
    1.0 / 13.0,
    -1.0 / 15.0,
    1.0 / 17.0,
    -1.0 / 19.0,
    1.0 / 21.0,
    -1.0 / 23.0,
    1.0 / 25.0,
    -1.0 / 27.0,
    1.0 / 29.0,
    -1.0 / 31.0,
];

/// The atan kernel on the folded range: Horner over `u²`, odd in `u`.
#[inline(always)]
fn kernel_atan(u: f64) -> f64 {
    let u2 = u * u;
    let mut s = ATAN_COEFFS[15];
    s = ATAN_COEFFS[14] + u2 * s;
    s = ATAN_COEFFS[13] + u2 * s;
    s = ATAN_COEFFS[12] + u2 * s;
    s = ATAN_COEFFS[11] + u2 * s;
    s = ATAN_COEFFS[10] + u2 * s;
    s = ATAN_COEFFS[9] + u2 * s;
    s = ATAN_COEFFS[8] + u2 * s;
    s = ATAN_COEFFS[7] + u2 * s;
    s = ATAN_COEFFS[6] + u2 * s;
    s = ATAN_COEFFS[5] + u2 * s;
    s = ATAN_COEFFS[4] + u2 * s;
    s = ATAN_COEFFS[3] + u2 * s;
    s = ATAN_COEFFS[2] + u2 * s;
    s = ATAN_COEFFS[1] + u2 * s;
    s = ATAN_COEFFS[0] + u2 * s;
    u * s
}

/// Branch-light polynomial `atan2(y, x)` with max absolute error
/// ≤ [`POLY_ATAN2_MAX_ABS_ERROR`] against libm over the full plane.
///
/// Reduction: fold to the first octant by `t = min/max` of `|y|, |x|`
/// (so `t ∈ [0, 1]`), then once more through the half-angle identity
/// `atan t = π/4 + atan((t−1)/(t+1))` whenever `t > tan(π/8)` — after
/// which the Taylor kernel argument is `≤ tan(π/8)` and 12 odd terms
/// reach ~1e-11. Every fold is a select, not a branch, so the 4-lane
/// variant autovectorizes. Finite inputs only (the solver's dot products
/// are finite by construction); `poly_atan2(0, 0) = 0` like libm.
#[inline(always)]
pub fn poly_atan2(y: f64, x: f64) -> f64 {
    let (ax, ay) = (x.abs(), y.abs());
    let swap = ay > ax;
    let big = if swap { ay } else { ax };
    let small = if swap { ax } else { ay };
    // 0/0 → 0 keeps the libm convention for the origin.
    let t = if big > 0.0 { small / big } else { 0.0 };
    let fold = t > TAN_PI_8;
    let u = if fold { (t - 1.0) / (t + 1.0) } else { t };
    let mut a = kernel_atan(u);
    if fold {
        a += std::f64::consts::FRAC_PI_4;
    }
    if swap {
        a = std::f64::consts::FRAC_PI_2 - a;
    }
    if x.is_sign_negative() {
        a = std::f64::consts::PI - a;
    }
    if y.is_sign_negative() {
        -a
    } else {
        a
    }
}

/// Four independent [`poly_atan2`] evaluations — the lane kernel the
/// padded residual rows feed (straight-line selects over `[f64; 4]`
/// arrays, written for the autovectorizer).
#[inline(always)]
pub fn poly_atan2x4(y: [f64; 4], x: [f64; 4]) -> [f64; 4] {
    let mut out = [0.0; 4];
    for l in 0..4 {
        let (ax, ay) = (x[l].abs(), y[l].abs());
        let swap = ay > ax;
        let big = if swap { ay } else { ax };
        let small = if swap { ax } else { ay };
        // 0/0 → 0 keeps the libm convention for the origin.
        let t = if big > 0.0 { small / big } else { 0.0 };
        let fold = t > TAN_PI_8;
        let u = if fold { (t - 1.0) / (t + 1.0) } else { t };
        let mut a = kernel_atan(u);
        if fold {
            a += std::f64::consts::FRAC_PI_4;
        }
        if swap {
            a = std::f64::consts::FRAC_PI_2 - a;
        }
        if x[l].is_sign_negative() {
            a = std::f64::consts::PI - a;
        }
        out[l] = if y[l].is_sign_negative() { -a } else { a };
    }
    out
}

/// Documented maximum absolute error of a [`PhasorRecurrence`] stream
/// against libm, any input sequence.
///
/// Budget: each small-step rotation adds one degree-9/10 kernel
/// truncation (≤ 3e-18 at the [`RECURRENCE_MAX_STEP_RAD`] cap) plus a few
/// rounding ulps (~5e-16); renormalization every
/// [`RECURRENCE_RENORM_PERIOD`] steps pins the amplitude, and a full
/// re-anchor through [`poly_sin_cos`] every [`RECURRENCE_ANCHOR_PERIOD`]
/// rotations caps the phase random walk at ≈ 4096 · 5e-16 ≈ 2e-12
/// worst-case, plus the polynomial anchor's own ≤ 1e-12. The bound is
/// deliberately loose and pinned by the recurrence drift tests.
pub const RECURRENCE_MAX_ABS_ERROR: f64 = 1e-11;

/// Largest angle step a [`PhasorRecurrence`] advances by rotation; larger
/// jumps (channel hops, π folds) re-anchor through [`poly_sin_cos`].
pub const RECURRENCE_MAX_STEP_RAD: f64 = 0.125;

/// A [`PhasorRecurrence`] renormalizes its phasor (`z ← z/|z|`) every
/// this many rotations, keeping the amplitude at 1 to within a few ulps.
pub const RECURRENCE_RENORM_PERIOD: u32 = 64;

/// A [`PhasorRecurrence`] re-anchors through [`poly_sin_cos`] after this
/// many consecutive rotations, bounding the accumulated phase error.
pub const RECURRENCE_ANCHOR_PERIOD: u32 = 4096;

// Degree-9 sin / degree-10 cos Taylor kernels on |δ| ≤ RECURRENCE_MAX_STEP_RAD:
// truncation ≤ δ¹¹/11! ≈ 3e-18 (sin), ≤ δ¹²/12! ≈ 3e-20 (cos).
#[inline(always)]
fn small_step_sin_cos(d: f64) -> (f64, f64) {
    let d2 = d * d;
    let s = d * (1.0 + d2 * (S3 + d2 * (S5 + d2 * (S7 + d2 * S9))));
    let c = 1.0 + d2 * (C2 + d2 * (C4 + d2 * (C6 + d2 * (C8 + d2 * C10))));
    (s, c)
}

/// Streaming `sin`/`cos` generator by complex rotation
/// ([`TrigProvider::Recurrence`]).
///
/// Holds the phasor `z = cos θ + i·sin θ` of the last angle served. For
/// the next angle, if the step `δ = θ' − θ` is within
/// [`RECURRENCE_MAX_STEP_RAD`], the phasor advances by one complex
/// rotation `z ← z · (cos δ + i·sin δ)` with the rotator from a short
/// Taylor kernel — two multiplies and an add per component instead of a
/// full range-reduced evaluation. Rotations compound rounding error, so
/// the phasor is renormalized every [`RECURRENCE_RENORM_PERIOD`] steps
/// and fully re-anchored through [`poly_sin_cos`] every
/// [`RECURRENCE_ANCHOR_PERIOD`] rotations — or immediately whenever the
/// step is too large (a channel hop or π fold). Total error against libm
/// stays ≤ [`RECURRENCE_MAX_ABS_ERROR`] on any input sequence.
///
/// Unlike the other backends this one is *stateful*: the value served
/// for an angle depends on the angles served before it (within the error
/// bound). Batch and streaming evaluations of the same window therefore
/// agree to the bound, not bitwise.
#[derive(Debug, Clone, Default)]
pub struct PhasorRecurrence {
    /// Last angle served (`valid` gates staleness).
    angle: f64,
    sin: f64,
    cos: f64,
    /// Rotations since the last full re-anchor.
    rotations: u32,
    valid: bool,
}

impl PhasorRecurrence {
    /// A fresh generator; the first [`advance`](Self::advance) re-anchors.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets the held phasor; the next advance re-anchors.
    pub fn reset(&mut self) {
        self.valid = false;
        self.rotations = 0;
    }

    /// `(sin, cos)` of `angle`, by rotation from the previous angle when
    /// the step allows, re-anchoring through [`poly_sin_cos`] otherwise.
    #[inline]
    pub fn advance(&mut self, angle: f64) -> (f64, f64) {
        if self.valid {
            let delta = angle - self.angle;
            if delta.abs() <= RECURRENCE_MAX_STEP_RAD
                && self.rotations < RECURRENCE_ANCHOR_PERIOD
            {
                let (ds, dc) = small_step_sin_cos(delta);
                let mut s = self.sin * dc + self.cos * ds;
                let mut c = self.cos * dc - self.sin * ds;
                self.rotations += 1;
                if self.rotations.is_multiple_of(RECURRENCE_RENORM_PERIOD) {
                    let inv = 1.0 / (s * s + c * c).sqrt();
                    s *= inv;
                    c *= inv;
                }
                self.sin = s;
                self.cos = c;
                self.angle = angle;
                return (s, c);
            }
        }
        let (s, c) = poly_sin_cos(angle);
        self.sin = s;
        self.cos = c;
        self.angle = angle;
        self.rotations = 0;
        self.valid = true;
        (s, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exhaustive bit-identity proof for the base table: all 4096
    /// codes, table `sin`/`cos` == libm `sin`/`cos`, bit for bit.
    #[test]
    fn table_matches_libm_for_every_code() {
        for c in 0..PHASE_CODES as u16 {
            let p = c as f64 * PHASE_LSB_RAD;
            let (ts, tc) = table_sin_cos(c);
            assert_eq!(
                ts.to_bits(),
                p.sin().to_bits(),
                "sin table diverges from libm at phase code {c} (phase {p:e}): \
                 table {ts:e} vs libm {:e}",
                p.sin()
            );
            assert_eq!(
                tc.to_bits(),
                p.cos().to_bits(),
                "cos table diverges from libm at phase code {c} (phase {p:e}): \
                 table {tc:e} vs libm {:e}",
                p.cos()
            );
        }
    }

    /// Exhaustive bit-identity for the double-angle table: every code's
    /// entry equals libm on the doubled grid phase `2.0 · (c·LSB)` — the
    /// exact expression the scalar accumulation evaluates.
    #[test]
    fn double_angle_table_matches_libm_for_every_code() {
        for c in 0..PHASE_CODES as u16 {
            let d = 2.0 * (c as f64 * PHASE_LSB_RAD);
            let (ts, tc) = table_double_sin_cos(c);
            assert_eq!(
                ts.to_bits(),
                d.sin().to_bits(),
                "double-angle sin table diverges from libm at phase code {c} \
                 (doubled angle {d:e}): table {ts:e} vs libm {:e}",
                d.sin()
            );
            assert_eq!(
                tc.to_bits(),
                d.cos().to_bits(),
                "double-angle cos table diverges from libm at phase code {c} \
                 (doubled angle {d:e}): table {tc:e} vs libm {:e}",
                d.cos()
            );
        }
    }

    /// Exhaustive bit-identity for the π-shift (fold) table: every
    /// code's entry equals libm on `(c·LSB) + π`.
    #[test]
    fn shift_table_matches_libm_for_every_code() {
        for c in 0..PHASE_CODES as u16 {
            let f = c as f64 * PHASE_LSB_RAD + PI;
            let (ts, tc) = table_shift_sin_cos(c);
            assert_eq!(
                ts.to_bits(),
                f.sin().to_bits(),
                "π-shift sin table diverges from libm at phase code {c} \
                 (shifted phase {f:e}): table {ts:e} vs libm {:e}",
                f.sin()
            );
            assert_eq!(
                tc.to_bits(),
                f.cos().to_bits(),
                "π-shift cos table diverges from libm at phase code {c} \
                 (shifted phase {f:e}): table {tc:e} vs libm {:e}",
                f.cos()
            );
        }
    }

    #[test]
    fn code_round_trips_every_grid_phase() {
        for c in 0..PHASE_CODES as u16 {
            let p = c as f64 * PHASE_LSB_RAD;
            assert_eq!(code_for_phase(p), Some(c), "grid phase of code {c}");
        }
    }

    #[test]
    fn code_rejects_off_grid_and_out_of_range_phases() {
        assert_eq!(code_for_phase(1.0), None);
        assert_eq!(code_for_phase(PHASE_LSB_RAD * 0.5), None);
        assert_eq!(code_for_phase(-PHASE_LSB_RAD), None);
        assert_eq!(code_for_phase(TAU), None, "code 4096 is out of range");
        assert_eq!(code_for_phase(f64::NAN), None);
        // Nearest-grid-point but not exactly on it: the next float after
        // a grid phase must not be claimed.
        let near = (7.0 * PHASE_LSB_RAD).next_up();
        assert_eq!(code_for_phase(near), None);
    }

    #[test]
    fn lsb_is_exact_power_of_two_scaling_of_tau() {
        // TAU/4096 only shifts the exponent, so scaling back up is exact.
        assert_eq!(PHASE_LSB_RAD * PHASE_CODES as f64, TAU);
    }

    #[test]
    fn poly_error_spot_checks() {
        // The property suite sweeps the domain; keep a few deterministic
        // anchors (quadrant boundaries, where reduction is touchiest) in
        // the unit tests.
        for &x in &[
            0.0,
            1e-9,
            std::f64::consts::FRAC_PI_4,
            std::f64::consts::FRAC_PI_2,
            PI,
            TAU,
            2.0 * TAU,
            -1.25,
            12.566,
            15.999,
        ] {
            let (s, c) = poly_sin_cos(x);
            assert!(
                (s - x.sin()).abs() <= POLY_MAX_ABS_ERROR,
                "poly sin({x}) = {s}, libm {}",
                x.sin()
            );
            assert!(
                (c - x.cos()).abs() <= POLY_MAX_ABS_ERROR,
                "poly cos({x}) = {c}, libm {}",
                x.cos()
            );
        }
    }

    /// Dense sweep of the full plane: the polynomial `atan2` must stay
    /// inside its documented bound against libm in every octant,
    /// including points straddling both fold thresholds.
    #[test]
    fn poly_atan2_tracks_libm_over_the_plane() {
        let mut worst = 0.0f64;
        for i in 0..720 {
            let ang = i as f64 * TAU / 720.0 - PI;
            for &r in &[1e-12, 1e-3, 0.41421356, 0.5, 1.0, 7.3, 1e9] {
                let (y, x) = (r * ang.sin(), r * ang.cos());
                let got = poly_atan2(y, x);
                let want = y.atan2(x);
                worst = worst.max((got - want).abs());
            }
        }
        assert!(
            worst <= POLY_ATAN2_MAX_ABS_ERROR,
            "poly atan2 error {worst:e} exceeds bound {POLY_ATAN2_MAX_ABS_ERROR:e}"
        );
    }

    /// Axis and origin conventions match libm exactly where the result
    /// is representable without rounding (0, ±π/2, ±π are reconstructed
    /// from constants, not the kernel).
    #[test]
    fn poly_atan2_axis_conventions() {
        assert_eq!(poly_atan2(0.0, 0.0), 0.0);
        assert_eq!(poly_atan2(0.0, 1.0), 0.0);
        assert_eq!(poly_atan2(0.0, -1.0), PI);
        assert_eq!(poly_atan2(-0.0, 1.0), -0.0);
        assert_eq!(poly_atan2(1.0, 0.0), std::f64::consts::FRAC_PI_2);
        assert_eq!(poly_atan2(-1.0, 0.0), -std::f64::consts::FRAC_PI_2);
    }

    /// The 4-lane variant is bit-identical to four scalar calls — same
    /// straight-line select sequence, just vectorized.
    #[test]
    fn poly_atan2x4_matches_scalar_lanes() {
        let ys = [0.3, -1.7, 0.0, 4.2e3];
        let xs = [1.1, -0.2, -5.0, 4.2e3];
        let lanes = poly_atan2x4(ys, xs);
        for l in 0..4 {
            assert_eq!(
                lanes[l].to_bits(),
                poly_atan2(ys[l], xs[l]).to_bits(),
                "lane {l} diverges from the scalar kernel"
            );
        }
    }

    #[test]
    fn warm_tables_is_idempotent() {
        warm_tables();
        warm_tables();
        let (s, _) = table_sin_cos(1024);
        assert_eq!(s.to_bits(), (1024.0 * PHASE_LSB_RAD).sin().to_bits());
    }

    /// A long smooth stream — tiny cadence steps, no re-anchor except the
    /// periodic one — must stay within the documented recurrence bound
    /// against libm even after tens of thousands of rotations.
    #[test]
    fn recurrence_tracks_libm_over_long_smooth_streams() {
        let mut rec = PhasorRecurrence::new();
        let mut worst = 0.0f64;
        let mut angle = 0.37;
        for i in 0..50_000 {
            // Drift + jitter, always below the rotation step cap.
            angle += 0.003 + 0.002 * ((i % 17) as f64 - 8.0) / 8.0;
            let wrapped = angle % TAU;
            let (s, c) = rec.advance(wrapped.abs());
            let x = wrapped.abs();
            worst = worst.max((s - x.sin()).abs()).max((c - x.cos()).abs());
        }
        assert!(
            worst <= RECURRENCE_MAX_ABS_ERROR,
            "recurrence drift {worst:e} exceeds bound {RECURRENCE_MAX_ABS_ERROR:e}"
        );
    }

    /// Dwell-like streams — near-constant phase within a dwell, big hops
    /// between dwells — exercise the re-anchor path on every hop.
    #[test]
    fn recurrence_handles_channel_hops_and_folds() {
        let mut rec = PhasorRecurrence::new();
        let mut worst = 0.0f64;
        for dwell in 0..500 {
            let base = (dwell as f64 * 2.13) % TAU;
            for k in 0..8 {
                // Within-dwell jitter plus alternating π folds (always a
                // re-anchor: π exceeds the step cap).
                let x = base + 0.01 * k as f64 + if k % 2 == 1 { PI } else { 0.0 };
                let (s, c) = rec.advance(x);
                worst = worst.max((s - x.sin()).abs()).max((c - x.cos()).abs());
            }
        }
        assert!(
            worst <= RECURRENCE_MAX_ABS_ERROR,
            "recurrence hop error {worst:e} exceeds bound {RECURRENCE_MAX_ABS_ERROR:e}"
        );
    }

    /// `reset` forgets the held phasor, so the next angle re-anchors and
    /// the generator never serves a stale rotation after a stream break.
    #[test]
    fn recurrence_reset_reanchors() {
        let mut rec = PhasorRecurrence::new();
        rec.advance(1.0);
        rec.reset();
        let (s, c) = rec.advance(1.05);
        let (ps, pc) = poly_sin_cos(1.05);
        assert_eq!(s.to_bits(), ps.to_bits(), "post-reset advance must be a fresh anchor");
        assert_eq!(c.to_bits(), pc.to_bits());
    }
}
