//! Automatic production line (paper Fig. 1): items ride a conveyor through
//! the working region, pausing at a quality gate.
//!
//! RF-Prism assumes the tag is static over one hop round; the error
//! detector (paper §V-C) recognizes the windows collected while the belt
//! was moving and discards them, so only the gate dwells produce sensing
//! results.
//!
//! ```text
//! cargo run --release --example conveyor_line
//! ```

use rf_prism::core::SenseError;
use rf_prism::prelude::*;

fn main() {
    let scene = Scene::standard_2d();
    let prism = RfPrism::new(scene.antenna_poses(), scene.reader().plan)
        .with_region(scene.region());

    // A belt crossing the region at 6 cm/s, pausing at the inspection gate.
    let belt_speed = Vec2::new(0.06, 0.0);
    let gate = Vec2::new(0.5, 1.4);

    println!("item #4711 enters the line (water bottle, tag 7)\n");
    let tag = SimTag::with_seeded_diversity(7).attached_to(Material::Water);

    // Window 1: item still moving toward the gate.
    let moving = tag.with_motion(Motion::planar_linear(
        Vec2::new(-0.45, 1.4),
        belt_speed,
        0.2,
    ));
    report_window(&prism, &scene, &moving, 1, "belt running");

    // Window 2: item parked at the gate — the sensing window the line
    // controller actually uses.
    let parked = tag.with_motion(Motion::planar_static(gate, 0.2));
    let estimate = report_window(&prism, &scene, &parked, 2, "parked at gate");

    // Window 3: item accelerating away (also rotating on the turntable).
    let leaving = tag.with_motion(Motion::planar_rotating(gate, 0.2, 0.3));
    report_window(&prism, &scene, &leaving, 3, "turntable spinning");

    if let Some(est) = estimate {
        let err_cm = est.position.distance(gate) * 100.0;
        println!();
        println!(
            "gate verdict: item localized to ({:.2}, {:.2}) m ({err_cm:.1} cm from the gate \
             centre) — within tolerance",
            est.position.x, est.position.y
        );
    }
}

fn report_window(
    prism: &RfPrism,
    scene: &Scene,
    tag: &SimTag,
    window: usize,
    label: &str,
) -> Option<TagEstimate2D> {
    let survey = scene.survey(tag, 40 + window as u64);
    match prism.sense(&survey.per_antenna) {
        Ok(result) => {
            println!(
                "window {window} ({label}): ACCEPTED — position ({:+.2}, {:.2}) m, \
                 orientation {:.0}°, verdict {:?}",
                result.estimate.position.x,
                result.estimate.position.y,
                result.estimate.orientation.to_degrees(),
                result.verdict
            );
            Some(result.estimate)
        }
        Err(SenseError::TagMoving { worst_residual_std }) => {
            println!(
                "window {window} ({label}): DISCARDED — phase lines nonlinear \
                 (residual {worst_residual_std:.2} rad): tag moved during the hop round"
            );
            None
        }
        Err(e) => {
            println!("window {window} ({label}): failed: {e}");
            None
        }
    }
}
