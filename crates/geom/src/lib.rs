//! Geometry and angle arithmetic primitives shared across the RF-Prism
//! workspace.
//!
//! RFID phase sensing is, at its heart, geometry: the propagation phase is a
//! function of the Euclidean antenna–tag distance, and the polarization phase
//! is a function of the relative orientation between the reader antenna's
//! polarization frame and the tag's dipole axis. This crate provides the
//! small, dependency-free vocabulary used by both the simulator
//! (`rfp-sim`, the forward direction) and the disentangler (`rfp-core`, the
//! inverse direction):
//!
//! * [`Vec2`] / [`Vec3`] — plain-old-data vectors with the handful of
//!   operations the models need (dot, cross, norm, rotation).
//! * [`angle`] — wrapping, angular differences (including the modulo-π
//!   difference needed for dipole orientations), circular statistics.
//! * [`pose`] — [`pose::AntennaPose`], the full 3-D pose of a
//!   circularly-polarized reader antenna: position, boresight and the
//!   polarization frame `(u, v)` spanned perpendicular to the boresight.
//! * [`region`] — rectangular working regions and grid iterators used by the
//!   multi-start solver and the experiment harness.
//!
//! # Example
//!
//! ```
//! use rfp_geom::{Vec2, angle};
//!
//! let a = Vec2::new(0.0, 0.0);
//! let b = Vec2::new(3.0, 4.0);
//! assert_eq!(a.distance(b), 5.0);
//! // Dipole orientations 10° and 190° are the same physical orientation:
//! let d = angle::dipole_difference(10f64.to_radians(), 190f64.to_radians());
//! assert!(d.abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod angle;
pub mod pose;
pub mod region;
mod vec;

pub use pose::AntennaPose;
pub use region::{Grid2, Region2};
pub use vec::vec_ellipse::CovarianceEllipse;
pub use vec::{Vec2, Vec3};
