//! Reusable front-end workspaces: flat SoA scratch buffers that make the
//! whole pre-processing + robust-fitting front end allocation-free in
//! steady state.
//!
//! The per-window front end (π-jump correction → per-channel aggregation →
//! cross-channel unwrap → robust line fit) used to materialize a dozen
//! short-lived `Vec`s and a `BTreeMap` per antenna per window. At batch
//! rates (hundreds of tags × several antennas × many windows per second)
//! the allocator traffic dominates the arithmetic. The fix mirrors the
//! solver's `LmWorkspace` pattern: every intermediate lives in a
//! caller-owned workspace whose buffers are sized once and then reused
//! verbatim.
//!
//! Two workspaces are provided:
//!
//! * [`FitWorkspace`] — scratch for the line-fitting kernels
//!   ([`theil_sen_with`](crate::linfit::theil_sen_with),
//!   [`robust_line_fit_with`](crate::robust::robust_line_fit_with),
//!   [`huber_line_fit_with`](crate::robust::huber_line_fit_with)):
//!   residual/rank/inlier columns, a median selection scratch, a Theil–Sen
//!   slope buffer and a Huber weight column.
//! * [`FrontEndWorkspace`] — everything above plus the pre-processing
//!   stage's per-channel accumulator columns (struct-of-arrays: one flat
//!   `f64`/`usize` column per quantity instead of a map of per-channel
//!   `Vec`s) and the fused unwrap+OLS accumulator: while the final
//!   unwrapped phase column is written out, running `Σx, Σy, Σxy, Σx²`
//!   sums are updated so the raw line fit afterwards is O(1) instead of
//!   another pass with fresh allocations.
//!
//! The allocating public APIs (`preprocess_reads`, `robust_line_fit`, …)
//! now delegate to these kernels against a temporary workspace, so both
//! paths are bit-identical by construction (pinned by the
//! `frontend_workspace` property suite). The pre-optimization
//! implementations are preserved verbatim in [`crate::reference`] as the
//! benchmark baseline.

use crate::linfit::{FitError, LineFit};

/// Raw running sums for an ordinary least-squares line fit, accumulated
/// against a fixed abscissa shift `x0` (the first point's x) to keep the
/// normal-equation cancellation benign at RF frequencies (~9e8 Hz).
///
/// Supports O(1) *downdating*: removing a point's contribution by
/// subtracting its terms, which is what makes the robust refit incremental
/// — each rejection round subtracts the newly excluded points instead of
/// refitting from scratch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OlsSums {
    /// Abscissa shift applied to every x term.
    pub x0: f64,
    /// Number of points accumulated.
    pub n: usize,
    /// Σ (x − x0).
    pub sx: f64,
    /// Σ y.
    pub sy: f64,
    /// Σ (x − x0) · y.
    pub sxy: f64,
    /// Σ (x − x0)².
    pub sxx: f64,
}

impl OlsSums {
    /// Empty sums anchored at `x0`.
    #[inline]
    pub fn anchored(x0: f64) -> Self {
        OlsSums { x0, ..Default::default() }
    }

    /// Adds one point.
    #[inline]
    pub fn add(&mut self, x: f64, y: f64) {
        let xd = x - self.x0;
        self.n += 1;
        self.sx += xd;
        self.sy += y;
        self.sxy += xd * y;
        self.sxx += xd * xd;
    }

    /// Removes one previously added point (downdate).
    #[inline]
    pub fn remove(&mut self, x: f64, y: f64) {
        let xd = x - self.x0;
        self.n -= 1;
        self.sx -= xd;
        self.sy -= y;
        self.sxy -= xd * y;
        self.sxx -= xd * xd;
    }

    /// Solves the accumulated normal equations for `(slope, intercept)`.
    ///
    /// # Errors
    ///
    /// [`FitError::TooFewPoints`] below two points,
    /// [`FitError::DegenerateX`] when the x spread vanishes.
    #[inline]
    pub fn solve(&self) -> Result<(f64, f64), FitError> {
        if self.n < 2 {
            return Err(FitError::TooFewPoints);
        }
        let n = self.n as f64;
        let denom = n * self.sxx - self.sx * self.sx;
        if denom <= 0.0 {
            return Err(FitError::DegenerateX);
        }
        let slope = (n * self.sxy - self.sx * self.sy) / denom;
        let shifted_intercept = (self.sy - slope * self.sx) / n;
        Ok((slope, shifted_intercept - slope * self.x0))
    }

    /// Mean of the accumulated y values.
    #[inline]
    pub fn ybar(&self) -> f64 {
        self.sy / self.n as f64
    }
}

/// Goodness-of-fit diagnostics over `(xs, ys)` for the line
/// `y = slope·x + intercept`, streamed without materializing a residual
/// vector. `ybar` is the centre used for the total sum of squares (the
/// weighted mean for weighted fits, the plain mean otherwise) — exactly
/// the conventions of the allocating fitters.
pub(crate) fn fit_diagnostics(
    xs: &[f64],
    ys: &[f64],
    slope: f64,
    intercept: f64,
    ybar: f64,
) -> (f64, f64) {
    let n = xs.len() as f64;
    let mut ss_res = 0.0;
    let mut r_sum = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let r = y - (slope * x + intercept);
        ss_res += r * r;
        r_sum += r;
    }
    let mut ss_tot = 0.0;
    for &y in ys {
        ss_tot += (y - ybar) * (y - ybar);
    }
    let r_squared = if ss_tot > 0.0 {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    } else if ss_res <= f64::EPSILON {
        1.0
    } else {
        0.0
    };
    let r_mean = r_sum / n;
    let mut var = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let r = y - (slope * x + intercept);
        var += (r - r_mean) * (r - r_mean);
    }
    (r_squared, (var / n).sqrt())
}

/// As [`fit_diagnostics`] but restricted to the points with `mask[i]`
/// true — the inlier-subset diagnostics of the robust refit.
pub(crate) fn masked_fit_diagnostics(
    xs: &[f64],
    ys: &[f64],
    mask: &[bool],
    slope: f64,
    intercept: f64,
    ybar: f64,
) -> (f64, f64) {
    let mut ss_res = 0.0;
    let mut r_sum = 0.0;
    let mut ss_tot = 0.0;
    let mut n = 0usize;
    for ((&x, &y), &keep) in xs.iter().zip(ys).zip(mask) {
        if !keep {
            continue;
        }
        let r = y - (slope * x + intercept);
        ss_res += r * r;
        r_sum += r;
        ss_tot += (y - ybar) * (y - ybar);
        n += 1;
    }
    let r_squared = if ss_tot > 0.0 {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    } else if ss_res <= f64::EPSILON {
        1.0
    } else {
        0.0
    };
    let r_mean = r_sum / n as f64;
    let mut var = 0.0;
    for ((&x, &y), &keep) in xs.iter().zip(ys).zip(mask) {
        if !keep {
            continue;
        }
        let r = y - (slope * x + intercept);
        var += (r - r_mean) * (r - r_mean);
    }
    (r_squared, (var / n as f64).sqrt())
}

/// Scratch buffers for the allocation-free line-fitting kernels. Buffers
/// grow to the high-water mark of the inputs seen and are then reused;
/// after the first call at a given problem size no kernel touches the
/// heap.
#[derive(Debug, Clone, Default)]
pub struct FitWorkspace {
    /// Residuals of the current fit, one per point.
    pub(crate) resid: Vec<f64>,
    /// `|resid|`, one per point.
    pub(crate) abs_res: Vec<f64>,
    /// Median / MAD selection scratch.
    pub(crate) scratch: Vec<f64>,
    /// Point indices ranked by absolute residual.
    pub(crate) order: Vec<usize>,
    /// Current inlier mask.
    pub(crate) inliers: Vec<bool>,
    /// Next iteration's inlier mask (double buffer).
    pub(crate) inliers_next: Vec<bool>,
    /// Theil–Sen pairwise slope buffer (O(n²) entries).
    pub(crate) slopes: Vec<f64>,
    /// Huber IRLS weight column.
    pub(crate) weights: Vec<f64>,
}

impl FitWorkspace {
    /// Inlier mask of the most recent
    /// [`robust_line_fit_with`](crate::robust::robust_line_fit_with) call
    /// (same order as its input points).
    #[inline]
    pub fn inlier_mask(&self) -> &[bool] {
        &self.inliers
    }
}

/// Per-channel accumulator columns plus fit scratch for the whole
/// pre-processing front end. One instance per worker thread (or per
/// sequential pipeline), mirroring the solver's `LmWorkspace`.
///
/// Layout is struct-of-arrays: each per-channel quantity is one flat
/// column indexed by *slot* (dense channel index in first-appearance
/// order), so the two accumulation passes over the raw reads touch a
/// handful of contiguous arrays instead of chasing a map of heap-allocated
/// per-channel vectors.
#[derive(Debug, Clone, Default)]
pub struct FrontEndWorkspace {
    /// channel id → slot + sentinel (`u32::MAX` = unseen this call).
    slot_of: Vec<u32>,
    /// Channel ids touched this call (to reset `slot_of` cheaply).
    touched: Vec<usize>,
    /// slot → channel id.
    pub(crate) chan: Vec<usize>,
    /// slot → number of raw reads.
    pub(crate) count: Vec<usize>,
    /// slot → frequency of the channel's first read.
    pub(crate) first_freq: Vec<f64>,
    /// slot → phase of the channel's first read.
    pub(crate) first_phase: Vec<f64>,
    /// slot → Σ rssi.
    pub(crate) sum_rssi: Vec<f64>,
    /// slot → Σ sin(2p) (π-jump mode) or Σ sin(p).
    pub(crate) acc_sin: Vec<f64>,
    /// slot → Σ cos(2p) (π-jump mode) or Σ cos(p).
    pub(crate) acc_cos: Vec<f64>,
    /// slot → recovered per-channel axis/mean phase.
    pub(crate) axis: Vec<f64>,
    /// slot → circular spread after folding onto the axis.
    pub(crate) spread: Vec<f64>,
    /// slot → Σ sin(folded) (π-jump spread pass).
    pub(crate) fold_sin: Vec<f64>,
    /// slot → Σ cos(folded).
    pub(crate) fold_cos: Vec<f64>,
    /// slot → unwrapped axis (for the global majority vote).
    pub(crate) unwrapped: Vec<f64>,
    /// slot → channel kept (≥ min reads)?
    pub(crate) keep: Vec<bool>,
    /// Kept slots sorted ascending by (frequency, channel).
    pub(crate) order: Vec<usize>,
    /// Phase column in sorted order (unwrap operates in place here).
    pub(crate) phase_col: Vec<f64>,
    /// read index → slot (recorded in pass 1, reused by the fold and
    /// vote passes instead of re-looking channels up).
    pub(crate) read_slot: Vec<u32>,
    /// Per-read phasor lane, sin component (filled by the trig backend,
    /// then scattered into the per-slot accumulators).
    pub(crate) read_sin: Vec<f64>,
    /// Per-read phasor lane, cos component.
    pub(crate) read_cos: Vec<f64>,
    /// Per-call trig-backend evaluation tallies:
    /// `[table, poly, libm, recurrence]`.
    pub(crate) trig_hits: [u64; 4],
    /// Fused unwrap+OLS running sums over the final (freq, phase) points.
    raw: OlsSums,
    /// Frequency column of the final observations (fit abscissa).
    fit_x: Vec<f64>,
    /// Unwrapped phase column of the final observations (fit ordinate).
    fit_y: Vec<f64>,
    /// Scratch for the line-fit kernels run after pre-processing.
    pub fit: FitWorkspace,
}

impl FrontEndWorkspace {
    /// The fit columns produced by the last
    /// [`preprocess_reads_with`](crate::preprocess::preprocess_reads_with)
    /// — `(frequencies, unwrapped phases)` — together with the fit scratch,
    /// split-borrowed so the columns can feed the fitting kernels directly.
    #[inline]
    pub fn fit_columns(&mut self) -> (&[f64], &[f64], &mut FitWorkspace) {
        (&self.fit_x, &self.fit_y, &mut self.fit)
    }

    /// Fused raw-sum accumulator of the last pre-processing call.
    #[inline]
    pub fn raw_sums(&self) -> OlsSums {
        self.raw
    }

    /// Trig-backend evaluation tallies of the last pre-processing call:
    /// `[table lookups, polynomial evaluations, libm calls, recurrence
    /// rotations]`, one per per-read phasor computed (the π-jump path
    /// computes two phasors per read: double-angle and fold). Feeds the
    /// `frontend.trig_*` observability counters.
    #[inline]
    pub fn trig_hits(&self) -> [u64; 4] {
        self.trig_hits
    }

    /// Raw (non-robust) line fit over the last pre-processed window,
    /// solved from the fused unwrap+OLS sums — no extra pass over the
    /// points for the estimate, one streamed pass for the diagnostics.
    ///
    /// # Errors
    ///
    /// As [`crate::linfit::ols`]: [`FitError::TooFewPoints`] or
    /// [`FitError::DegenerateX`].
    pub fn raw_fit(&self) -> Result<LineFit, FitError> {
        let (slope, intercept) = self.raw.solve()?;
        let (r_squared, residual_std) =
            fit_diagnostics(&self.fit_x, &self.fit_y, slope, intercept, self.raw.ybar());
        Ok(LineFit { slope, intercept, r_squared, residual_std, n: self.raw.n })
    }

    /// Resets the per-call state, keeping every buffer's capacity. Called
    /// at the top of `preprocess_reads_with`.
    pub(crate) fn reset_channels(&mut self) {
        for &ch in &self.touched {
            self.slot_of[ch] = u32::MAX;
        }
        self.touched.clear();
        self.chan.clear();
        self.count.clear();
        self.first_freq.clear();
        self.first_phase.clear();
        self.sum_rssi.clear();
        self.acc_sin.clear();
        self.acc_cos.clear();
        self.axis.clear();
        self.spread.clear();
        self.fold_sin.clear();
        self.fold_cos.clear();
        self.unwrapped.clear();
        self.keep.clear();
        self.order.clear();
        self.phase_col.clear();
        self.read_slot.clear();
        self.trig_hits = [0; 4];
        self.fit_x.clear();
        self.fit_y.clear();
        self.raw = OlsSums::default();
    }

    /// Slot of `channel`, allocating a fresh slot on first sight.
    #[inline]
    pub(crate) fn slot(&mut self, channel: usize) -> usize {
        if channel >= self.slot_of.len() {
            self.slot_of.resize(channel + 1, u32::MAX);
        }
        let s = self.slot_of[channel];
        if s != u32::MAX {
            return s as usize;
        }
        let slot = self.chan.len();
        self.slot_of[channel] = slot as u32;
        self.touched.push(channel);
        self.chan.push(channel);
        self.count.push(0);
        self.first_freq.push(0.0);
        self.first_phase.push(0.0);
        self.sum_rssi.push(0.0);
        self.acc_sin.push(0.0);
        self.acc_cos.push(0.0);
        self.axis.push(0.0);
        self.spread.push(0.0);
        self.fold_sin.push(0.0);
        self.fold_cos.push(0.0);
        self.unwrapped.push(0.0);
        self.keep.push(false);
        slot
    }

    /// Slot of `channel` if it was seen this call.
    #[inline]
    pub(crate) fn slot_if_seen(&self, channel: usize) -> Option<usize> {
        match self.slot_of.get(channel) {
            Some(&s) if s != u32::MAX => Some(s as usize),
            _ => None,
        }
    }

    /// Number of slots in use this call.
    #[inline]
    pub(crate) fn slots(&self) -> usize {
        self.chan.len()
    }

    /// Appends one final `(frequency, phase)` observation point, updating
    /// the fused OLS sums and the fit columns in the same pass — this is
    /// the "unwrap+OLS accumulator" fusion: called while the unwrapped
    /// phase column is being written out.
    #[inline]
    pub(crate) fn emit(&mut self, freq: f64, phase: f64) {
        if self.raw.n == 0 {
            self.raw = OlsSums::anchored(freq);
        }
        self.raw.add(freq, phase);
        self.fit_x.push(freq);
        self.fit_y.push(phase);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ols_sums_match_direct_fit() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 3.1, 4.9, 7.0, 9.05];
        let mut sums = OlsSums::anchored(xs[0]);
        for (&x, &y) in xs.iter().zip(&ys) {
            sums.add(x, y);
        }
        let (slope, intercept) = sums.solve().unwrap();
        let direct = crate::linfit::ols(&xs, &ys).unwrap();
        assert!((slope - direct.slope).abs() < 1e-12);
        assert!((intercept - direct.intercept).abs() < 1e-12);
    }

    #[test]
    fn ols_sums_downdate_equals_refit() {
        let xs: Vec<f64> = (0..20).map(|i| 9.02e8 + 5e5 * i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.1e-8 * x - 3.0).collect();
        let mut sums = OlsSums::anchored(xs[0]);
        for (&x, &y) in xs.iter().zip(&ys) {
            sums.add(x, y);
        }
        // Remove three points; the downdated solution must match a fit on
        // the remaining points.
        for &i in &[3usize, 7, 15] {
            sums.remove(xs[i], ys[i]);
        }
        let (kept_x, kept_y): (Vec<f64>, Vec<f64>) = xs
            .iter()
            .zip(&ys)
            .enumerate()
            .filter(|(i, _)| ![3usize, 7, 15].contains(i))
            .map(|(_, (&x, &y))| (x, y))
            .unzip();
        let (slope, intercept) = sums.solve().unwrap();
        let direct = crate::linfit::ols(&kept_x, &kept_y).unwrap();
        assert!((slope - direct.slope).abs() < 1e-9 * direct.slope.abs().max(1.0));
        assert!((intercept - direct.intercept).abs() < 1e-6);
    }

    #[test]
    fn ols_sums_degenerate_and_underflow() {
        let mut sums = OlsSums::anchored(2.0);
        sums.add(2.0, 1.0);
        assert_eq!(sums.solve().unwrap_err(), FitError::TooFewPoints);
        sums.add(2.0, 3.0);
        assert_eq!(sums.solve().unwrap_err(), FitError::DegenerateX);
    }

    #[test]
    fn slot_map_resets_between_calls() {
        let mut ws = FrontEndWorkspace::default();
        let a = ws.slot(5);
        let b = ws.slot(9);
        assert_ne!(a, b);
        assert_eq!(ws.slot(5), a);
        ws.reset_channels();
        assert_eq!(ws.slot_if_seen(5), None);
        let c = ws.slot(9);
        assert_eq!(c, 0, "slots are dense again after reset");
    }
}
