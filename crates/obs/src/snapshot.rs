//! Windowed metric snapshots: frozen copies of a [`Registry`]'s numeric
//! state that subtract ([`MetricsSnapshot::delta_since`]) and merge
//! ([`MetricsSnapshot::merge`]), so a long-running session can emit
//! *periodic* telemetry — "what happened in the last window" — instead of
//! one cumulative report at process exit.
//!
//! The intended loop:
//!
//! ```
//! use rfp_obs::{recorder, MetricDef};
//!
//! static METRICS: &[MetricDef] = &[MetricDef::counter("work.items", "items")];
//!
//! let ((), rec) = recorder::observe(METRICS, || {
//!     recorder::counter_add(0, 3);
//! });
//! let mut last = rec.metrics.snapshot();
//! // ... more work happens on `rec.metrics` ...
//! let delta = rec.metrics.snapshot_delta(&last);
//! assert_eq!(delta.counter(0), 0); // nothing since the snapshot
//! last = rec.metrics.snapshot();
//! # let _ = last;
//! ```
//!
//! Deltas follow the registry's own merge discipline — counters and
//! histogram buckets subtract exactly (they are monotone), gauges carry
//! the *current* level — so per-worker deltas merged in worker-index
//! order are deterministic the same way full registries are.

use crate::json::JsonValue;
use crate::metrics::{MetricDef, MetricKind, Registry};

/// Frozen numeric state of one histogram inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramState {
    /// Total observation count in the snapshot window.
    pub count: u64,
    /// Sum of observations in the window.
    pub sum: f64,
    /// Per-bucket counts, `+Inf` overflow last (same layout as
    /// [`crate::Histogram::bucket_counts`]).
    pub buckets: Vec<u64>,
}

/// A frozen copy of one [`Registry`]'s numeric state (or of the *change*
/// between two states — the type is closed under
/// [`delta_since`](Self::delta_since) and [`merge`](Self::merge)).
///
/// Values are stored dense, indexed by descriptor-table position, so
/// lookups and arithmetic never search by name.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    defs: &'static [MetricDef],
    counters: Vec<u64>,
    gauges: Vec<f64>,
    histograms: Vec<Option<HistogramState>>,
}

impl Registry {
    /// Freezes the registry's current numeric state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let defs = self.defs();
        let mut counters = vec![0u64; defs.len()];
        let mut gauges = vec![0f64; defs.len()];
        let mut histograms: Vec<Option<HistogramState>> = vec![None; defs.len()];
        for (idx, def) in defs.iter().enumerate() {
            match def.kind {
                MetricKind::Counter => counters[idx] = self.counter(idx),
                MetricKind::Gauge => gauges[idx] = self.gauge(idx),
                MetricKind::Histogram => {
                    let h = self.histogram(idx).expect("kind checked");
                    histograms[idx] = Some(HistogramState {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h.bucket_counts().to_vec(),
                    });
                }
            }
        }
        MetricsSnapshot { defs, counters, gauges, histograms }
    }

    /// [`snapshot`](Self::snapshot) minus `earlier`: what happened since
    /// the earlier snapshot was taken.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` was taken over a different descriptor table.
    pub fn snapshot_delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        self.snapshot().delta_since(earlier)
    }
}

impl MetricsSnapshot {
    /// The descriptor table this snapshot was taken over.
    pub fn defs(&self) -> &'static [MetricDef] {
        self.defs
    }

    /// Counter `idx`'s value in this snapshot (0 for other kinds).
    pub fn counter(&self, idx: usize) -> u64 {
        self.counters.get(idx).copied().unwrap_or(0)
    }

    /// Gauge `idx`'s level in this snapshot (0 for other kinds).
    pub fn gauge(&self, idx: usize) -> f64 {
        self.gauges.get(idx).copied().unwrap_or(0.0)
    }

    /// Histogram `idx`'s frozen state, if that metric is a histogram.
    pub fn histogram(&self, idx: usize) -> Option<&HistogramState> {
        self.histograms.get(idx).and_then(Option::as_ref)
    }

    /// Overwrites gauge `idx`'s level (ignored when out of range). Lets a
    /// driver stamp *derived* gauges — e.g. a stale-tag count computed
    /// across sessions — onto a merged delta before emitting it.
    pub fn set_gauge(&mut self, idx: usize, v: f64) {
        if let Some(g) = self.gauges.get_mut(idx) {
            *g = v;
        }
    }

    /// The windowed difference `self - earlier`: counters and histogram
    /// buckets subtract (saturating, so a reset registry never underflows),
    /// gauges keep `self`'s current level (a gauge is a *state*, not a
    /// flow — the meaningful windowed reading is "where is it now").
    ///
    /// # Panics
    ///
    /// Panics if the snapshots cover different descriptor tables.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        assert!(
            std::ptr::eq(self.defs, earlier.defs),
            "cannot diff snapshots over different metric tables"
        );
        let counters = self
            .counters
            .iter()
            .zip(&earlier.counters)
            .map(|(now, was)| now.saturating_sub(*was))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .zip(&earlier.histograms)
            .map(|(now, was)| match (now, was) {
                (Some(now), Some(was)) => Some(HistogramState {
                    count: now.count.saturating_sub(was.count),
                    sum: now.sum - was.sum,
                    buckets: now
                        .buckets
                        .iter()
                        .zip(&was.buckets)
                        .map(|(n, w)| n.saturating_sub(*w))
                        .collect(),
                }),
                (now, _) => now.clone(),
            })
            .collect();
        MetricsSnapshot { defs: self.defs, counters, gauges: self.gauges.clone(), histograms }
    }

    /// Element-wise merge of another snapshot (or delta) over the same
    /// table: counters and buckets add, gauges take the maximum — the
    /// exact [`Registry::merge`] rules, so per-worker deltas merged in
    /// index order stay deterministic.
    ///
    /// # Panics
    ///
    /// Panics if the snapshots cover different descriptor tables.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        assert!(
            std::ptr::eq(self.defs, other.defs),
            "cannot merge snapshots over different metric tables"
        );
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        for (a, b) in self.gauges.iter_mut().zip(&other.gauges) {
            *a = a.max(*b);
        }
        for (a, b) in self.histograms.iter_mut().zip(&other.histograms) {
            match (a, b) {
                (Some(a), Some(b)) => {
                    a.count += b.count;
                    a.sum += b.sum;
                    for (x, y) in a.buckets.iter_mut().zip(&b.buckets) {
                        *x += y;
                    }
                }
                (a @ None, b @ Some(_)) => *a = b.clone(),
                _ => {}
            }
        }
    }

    /// An all-zero snapshot over `defs` — the identity element for
    /// [`merge`](Self::merge), handy as a fold seed.
    pub fn zero(defs: &'static [MetricDef]) -> MetricsSnapshot {
        MetricsSnapshot {
            defs,
            counters: vec![0; defs.len()],
            gauges: vec![0.0; defs.len()],
            histograms: defs
                .iter()
                .map(|d| match d.kind {
                    MetricKind::Histogram => Some(HistogramState {
                        count: 0,
                        sum: 0.0,
                        buckets: vec![0; d.buckets.len() + 1],
                    }),
                    _ => None,
                })
                .collect(),
        }
    }

    /// The counters as a name→value JSON object, descriptor-table order,
    /// zeros kept (a stable schema, so frames diff cleanly run to run).
    pub fn counters_json(&self) -> JsonValue {
        JsonValue::Obj(
            self.defs
                .iter()
                .enumerate()
                .filter(|(_, d)| d.kind == MetricKind::Counter)
                .map(|(idx, d)| (d.name.to_string(), JsonValue::Num(self.counters[idx] as f64)))
                .collect(),
        )
    }

    /// The gauges as a name→value JSON object, descriptor-table order.
    pub fn gauges_json(&self) -> JsonValue {
        JsonValue::Obj(
            self.defs
                .iter()
                .enumerate()
                .filter(|(_, d)| d.kind == MetricKind::Gauge)
                .map(|(idx, d)| (d.name.to_string(), JsonValue::Num(self.gauges[idx])))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricDef;

    const BOUNDS: &[f64] = &[1.0, 10.0];
    static DEFS: &[MetricDef] = &[
        MetricDef::counter("t.count", "a counter"),
        MetricDef::gauge("t.level", "a gauge"),
        MetricDef::histogram("t.dist", "a histogram", BOUNDS),
    ];

    #[test]
    fn snapshot_freezes_registry_state() {
        let mut r = Registry::new(DEFS);
        r.add(0, 5);
        r.set(1, 2.5);
        r.observe(2, 0.5);
        r.observe(2, 50.0);
        let s = r.snapshot();
        assert_eq!(s.counter(0), 5);
        assert_eq!(s.gauge(1), 2.5);
        let h = s.histogram(2).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.buckets, vec![1, 0, 1]);
        // Later recording does not change the frozen copy.
        r.add(0, 1);
        assert_eq!(s.counter(0), 5);
    }

    #[test]
    fn delta_windows_the_change() {
        let mut r = Registry::new(DEFS);
        r.add(0, 3);
        r.observe(2, 0.5);
        let first = r.snapshot();
        r.add(0, 4);
        r.set(1, 7.0);
        r.observe(2, 5.0);
        let delta = r.snapshot_delta(&first);
        assert_eq!(delta.counter(0), 4);
        assert_eq!(delta.gauge(1), 7.0); // gauges carry the current level
        let h = delta.histogram(2).unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.buckets, vec![0, 1, 0]);
        assert!((h.sum - 5.0).abs() < 1e-12);
        // Consecutive deltas tile the total exactly.
        let second = r.snapshot();
        r.add(0, 10);
        let delta2 = r.snapshot_delta(&second);
        assert_eq!(delta.counter(0) + delta2.counter(0) + first.counter(0), r.counter(0));
    }

    #[test]
    fn merge_follows_registry_rules() {
        let mut r1 = Registry::new(DEFS);
        r1.add(0, 2);
        r1.set(1, 3.0);
        r1.observe(2, 0.5);
        let mut r2 = Registry::new(DEFS);
        r2.add(0, 5);
        r2.set(1, 1.0);
        r2.observe(2, 100.0);

        let mut merged = MetricsSnapshot::zero(DEFS);
        merged.merge(&r1.snapshot());
        merged.merge(&r2.snapshot());

        let mut reg = Registry::new(DEFS);
        reg.merge(&r1);
        reg.merge(&r2);
        assert_eq!(merged, reg.snapshot(), "snapshot merge == registry merge");
    }

    #[test]
    fn json_objects_keep_table_order_and_zeros() {
        let r = Registry::new(DEFS);
        let s = r.snapshot();
        assert_eq!(s.counters_json().to_compact(), "{\"t.count\":0}");
        assert_eq!(s.gauges_json().to_compact(), "{\"t.level\":0}");
    }

    #[test]
    #[should_panic]
    fn cross_table_delta_panics() {
        static OTHER: &[MetricDef] = &[MetricDef::counter("o.c", "other")];
        let r = Registry::new(DEFS);
        let other = Registry::new(OTHER).snapshot();
        let _ = r.snapshot_delta(&other);
    }
}
