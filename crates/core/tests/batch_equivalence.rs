//! Batch-vs-sequential equivalence (the batch engine's core contract):
//! [`RfPrism::sense_batch`] must return, at every worker count, exactly the
//! element the sequential API returns for the same reads — compared down
//! to the bit pattern of every `f64`, not within a tolerance. The batch
//! path and the sequential path share one solver core, so any divergence
//! means shared mutable state leaked between solves.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfp_core::{RfPrism, RfPrism3D, SenseError, SensingResult};
use rfp_geom::Vec2;
use rfp_phys::Material;
use rfp_sim::{Motion, Scene, SimTag};

/// Builds `n` tags' raw reads from a seeded random placement over the
/// scene's working region (mixed materials, some moving tags so the error
/// path is exercised too).
fn random_tag_reads(scene: &Scene, n: usize, seed: u64) -> Vec<Vec<Vec<rfp_dsp::preprocess::RawRead>>> {
    let materials = [
        Material::FreeSpace,
        Material::Wood,
        Material::Plastic,
        Material::Glass,
        Material::Water,
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let region = scene.region();
            let pos = Vec2::new(
                rng.gen_range(region.min().x..region.max().x),
                rng.gen_range(region.min().y..region.max().y),
            );
            let alpha = rng.gen_range(0.0..std::f64::consts::PI);
            let motion = if i % 7 == 3 {
                // A moving tag: must come back as Err(TagMoving) from both
                // paths identically.
                Motion::planar_linear(pos, Vec2::new(0.05, 0.04), alpha)
            } else {
                Motion::planar_static(pos, alpha)
            };
            let tag = SimTag::with_seeded_diversity(i as u64)
                .attached_to(materials[i % materials.len()])
                .with_motion(motion);
            scene.survey(&tag, seed ^ (i as u64).wrapping_mul(0x9e37)).per_antenna
        })
        .collect()
}

/// Bit-exact equality of two sensing outcomes.
fn assert_identical(a: &Result<SensingResult, SenseError>, b: &Result<SensingResult, SenseError>, i: usize) {
    match (a, b) {
        (Ok(x), Ok(y)) => {
            let fields = |r: &SensingResult| {
                let e = &r.estimate;
                let mut v = vec![
                    e.position.x,
                    e.position.y,
                    e.orientation,
                    e.kt,
                    e.bt,
                    e.cost,
                    e.residual_rms,
                    e.position_std_m,
                    e.orientation_std_rad,
                ];
                for row in e.position_cov {
                    v.extend(row);
                }
                for o in &r.observations {
                    v.extend([o.slope, o.intercept, o.residual_std]);
                }
                v
            };
            let (xa, xb) = (fields(x), fields(y));
            assert_eq!(xa.len(), xb.len(), "tag {i}: field count differs");
            for (j, (va, vb)) in xa.iter().zip(&xb).enumerate() {
                assert_eq!(
                    va.to_bits(),
                    vb.to_bits(),
                    "tag {i} field {j}: {va:?} != {vb:?} (bitwise)"
                );
            }
            assert_eq!(x.verdict, y.verdict, "tag {i}: verdict differs");
        }
        (Err(x), Err(y)) => assert_eq!(x, y, "tag {i}: errors differ"),
        (a, b) => panic!("tag {i}: outcome kind differs: {a:?} vs {b:?}"),
    }
}

#[test]
fn batch_matches_sequential_at_all_worker_counts() {
    let scene = Scene::standard_2d();
    let prism = RfPrism::new(scene.antenna_poses(), scene.reader().plan)
        .with_region(scene.region());
    for scene_seed in [1u64, 42] {
        let tags = random_tag_reads(&scene, 24, scene_seed);
        let sequential: Vec<_> = tags.iter().map(|reads| prism.sense(reads)).collect();
        for jobs in [1, 2, 8] {
            let batch = prism.sense_batch(&tags, jobs);
            assert_eq!(batch.len(), sequential.len());
            for (i, (b, s)) in batch.iter().zip(&sequential).enumerate() {
                assert_identical(b, s, i);
            }
        }
    }
}

#[test]
fn batch_cache_is_reusable_across_calls() {
    let scene = Scene::standard_2d();
    let prism = RfPrism::new(scene.antenna_poses(), scene.reader().plan)
        .with_region(scene.region());
    let cache = prism.batch_cache();
    let tags = random_tag_reads(&scene, 8, 7);
    let first = prism.sense_batch_with(&cache, &tags, 4);
    let second = prism.sense_batch_with(&cache, &tags, 4);
    for (i, (a, b)) in first.iter().zip(&second).enumerate() {
        assert_identical(a, b, i);
    }
}

#[test]
fn rounds_batch_matches_sequential() {
    let scene = Scene::standard_2d();
    let prism = RfPrism::new(scene.antenna_poses(), scene.reader().plan)
        .with_region(scene.region());
    let mut rng = StdRng::seed_from_u64(5);
    let tags: Vec<Vec<_>> = (0..10)
        .map(|i| {
            let pos = Vec2::new(rng.gen_range(-0.4..1.4), rng.gen_range(0.6..2.4));
            let alpha = rng.gen_range(0.0..std::f64::consts::PI);
            let tag = SimTag::with_seeded_diversity(100 + i)
                .with_motion(Motion::planar_static(pos, alpha));
            (0..3)
                .map(|r| scene.survey(&tag, 1000 + i * 10 + r).per_antenna)
                .collect()
        })
        .collect();
    let sequential: Vec<_> = tags.iter().map(|rounds| prism.sense_rounds(rounds)).collect();
    for jobs in [1, 2, 8] {
        let batch = prism.sense_rounds_batch(&tags, jobs);
        for (i, (b, s)) in batch.iter().zip(&sequential).enumerate() {
            assert_identical(b, s, i);
        }
    }
}

#[test]
fn batch_3d_matches_sequential() {
    use rfp_geom::Vec3;
    let scene = Scene::six_antenna_3d();
    let prism = RfPrism3D::new(
        scene.antenna_poses(),
        scene.reader().plan,
        scene.region(),
        (0.0, 1.5),
    );
    let mut rng = StdRng::seed_from_u64(11);
    let tags: Vec<_> = (0..6)
        .map(|i| {
            let position = Vec3::new(
                rng.gen_range(0.0..1.2),
                rng.gen_range(0.8..2.0),
                rng.gen_range(0.1..1.2),
            );
            let dipole = Vec3::new(
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(0.1..1.0),
            )
            .normalized();
            let tag = SimTag::with_seeded_diversity(200 + i)
                .with_motion(Motion::Static { position, dipole });
            scene.survey(&tag, 300 + i).per_antenna
        })
        .collect();
    let sequential: Vec<_> = tags.iter().map(|reads| prism.sense(reads)).collect();
    for jobs in [1, 2, 8] {
        let batch = prism.sense_batch(&tags, jobs);
        for (i, (b, s)) in batch.iter().zip(&sequential).enumerate() {
            match (b, s) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.estimate.position.x.to_bits(), y.estimate.position.x.to_bits());
                    assert_eq!(x.estimate.position.y.to_bits(), y.estimate.position.y.to_bits());
                    assert_eq!(x.estimate.position.z.to_bits(), y.estimate.position.z.to_bits());
                    assert_eq!(x.estimate.dipole.x.to_bits(), y.estimate.dipole.x.to_bits());
                    assert_eq!(x.estimate.kt.to_bits(), y.estimate.kt.to_bits());
                    assert_eq!(x.estimate.bt.to_bits(), y.estimate.bt.to_bits());
                    assert_eq!(x.estimate.cost.to_bits(), y.estimate.cost.to_bits());
                }
                (Err(x), Err(y)) => assert_eq!(x, y, "tag {i}"),
                (a, b) => panic!("tag {i}: outcome kind differs: {a:?} vs {b:?}"),
            }
        }
    }
}

#[test]
fn numeric_fallback_batch_matches_sequential() {
    use rfp_core::{JacobianMode, RfPrismConfig, SolverConfig};
    let scene = Scene::standard_2d();
    let config = RfPrismConfig {
        solver: SolverConfig { jacobian: JacobianMode::Numeric, ..SolverConfig::default() },
        ..RfPrismConfig::paper()
    };
    let prism = RfPrism::new(scene.antenna_poses(), scene.reader().plan)
        .with_region(scene.region())
        .with_config(config);
    let tags = random_tag_reads(&scene, 12, 17);
    let sequential: Vec<_> = tags.iter().map(|reads| prism.sense(reads)).collect();
    for jobs in [1, 2, 8] {
        let batch = prism.sense_batch(&tags, jobs);
        for (i, (b, s)) in batch.iter().zip(&sequential).enumerate() {
            assert_identical(b, s, i);
        }
    }
}

/// The trig provider rides inside the pipeline config, so the batch
/// engine threads it to every worker for free — and because the `Table`
/// backend is bit-identical to libm on quantized (code-carrying) reads,
/// a table-backed *batch* must reproduce the libm *sequential* results
/// exactly. This crosses the two equivalence axes (backend × engine) in
/// one assertion.
#[test]
fn table_backed_batch_matches_libm_sequential() {
    use rfp_core::RfPrismConfig;
    use rfp_dsp::TrigProvider;
    let scene = Scene::standard_2d(); // default R420 reader: quantized phases
    let base = RfPrism::new(scene.antenna_poses(), scene.reader().plan)
        .with_region(scene.region());
    let libm_prism =
        base.clone().with_config(RfPrismConfig::paper().with_trig(TrigProvider::Libm));
    let table_prism =
        base.with_config(RfPrismConfig::paper().with_trig(TrigProvider::Table));
    let tags = random_tag_reads(&scene, 12, 23);
    let sequential: Vec<_> = tags.iter().map(|reads| libm_prism.sense(reads)).collect();
    for jobs in [1, 4] {
        let batch = table_prism.sense_batch(&tags, jobs);
        for (i, (b, s)) in batch.iter().zip(&sequential).enumerate() {
            assert_identical(b, s, i);
        }
    }
}

#[test]
fn errors_surface_at_the_right_index() {
    let scene = Scene::standard_2d();
    let prism = RfPrism::new(scene.antenna_poses(), scene.reader().plan)
        .with_region(scene.region());
    let mut tags = random_tag_reads(&scene, 5, 9);
    tags[2] = vec![Vec::new(), Vec::new()]; // wrong antenna count
    tags[4] = vec![Vec::new(), Vec::new(), Vec::new()]; // empty reads
    let out = prism.sense_batch(&tags, 3);
    assert!(matches!(
        out[2],
        Err(SenseError::AntennaCountMismatch { expected: 3, got: 2 })
    ));
    assert!(matches!(out[4], Err(SenseError::TooFewObservations { usable: 0, .. })));
    assert!(out[0].is_ok() || matches!(out[0], Err(SenseError::TagMoving { .. })));
}
