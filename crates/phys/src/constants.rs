//! Physical and regulatory constants.

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Lowest channel centre frequency of the FCC US UHF RFID band, Hz
/// (channel 1 of the ImpinJ R420 hop set).
pub const FCC_BAND_START_HZ: f64 = 902.75e6;

/// Highest channel centre frequency of the FCC US UHF RFID band, Hz.
pub const FCC_BAND_END_HZ: f64 = 927.25e6;

/// Channel spacing of the FCC US hop set, Hz.
pub const FCC_CHANNEL_SPACING_HZ: f64 = 500e3;

/// Number of channels in the FCC US hop set.
pub const FCC_CHANNEL_COUNT: usize = 50;

/// Dwell time the ImpinJ R420 spends on each channel, seconds.
/// (FCC part 15 limits dwell to 400 ms per 10 s; the R420 uses 200 ms.)
pub const IMPINJ_DWELL_S: f64 = 0.2;

/// Phase quantization step of the ImpinJ R420's reported phase: the LLRP
/// `PhaseAngle` field is 12-bit over one turn.
pub const IMPINJ_PHASE_LSB_RAD: f64 = std::f64::consts::TAU / 4096.0;

/// RSSI quantization step reported by the ImpinJ R420, dB.
pub const IMPINJ_RSSI_LSB_DB: f64 = 0.5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_is_consistent() {
        let span = FCC_BAND_END_HZ - FCC_BAND_START_HZ;
        let expected = FCC_CHANNEL_SPACING_HZ * (FCC_CHANNEL_COUNT as f64 - 1.0);
        assert!((span - expected).abs() < 1.0, "span {span} != {expected}");
    }

    #[test]
    fn wavelength_is_about_33cm() {
        let lambda = SPEED_OF_LIGHT / 915e6;
        assert!((lambda - 0.3276).abs() < 1e-3);
    }

    #[test]
    fn phase_lsb_small() {
        let lsb = IMPINJ_PHASE_LSB_RAD;
        assert!(lsb < 0.002, "12-bit phase LSB {lsb} too coarse");
    }
}
