//! Round-trip propagation phase (Eq. 3 of the paper) and distance/slope
//! conversions.
//!
//! `θ_prop(f) = (2π · 2 d f / c) mod 2π` — the signal travels the antenna–tag
//! distance `d` twice. For a fixed `d` the *unwrapped* phase is linear in
//! frequency with slope `4π d / c`; this is the key that lets RF-Prism read
//! the distance off the slope of the phase-vs-frequency line and so escape
//! the per-wavelength phase ambiguity.

use crate::constants::SPEED_OF_LIGHT;
use rfp_geom::angle::wrap_tau;

/// Unwrapped round-trip propagation phase for antenna–tag distance `d`
/// (metres) at carrier frequency `f` (Hz), radians.
///
/// This is the physical (unwrapped) value; use [`phase_wrapped`] for what a
/// reader would report before any other component is added.
#[inline]
pub fn phase(d: f64, f: f64) -> f64 {
    4.0 * std::f64::consts::PI * d * f / SPEED_OF_LIGHT
}

/// Propagation phase wrapped into `[0, 2π)`.
#[inline]
pub fn phase_wrapped(d: f64, f: f64) -> f64 {
    wrap_tau(phase(d, f))
}

/// Slope of the phase-vs-frequency line for distance `d`, rad/Hz
/// (`4π d / c`, Eq. 6 of the paper).
///
/// ```
/// use rfp_phys::propagation::{slope_from_distance, distance_from_slope};
/// let k = slope_from_distance(1.5);
/// assert!((distance_from_slope(k) - 1.5).abs() < 1e-12);
/// ```
#[inline]
pub fn slope_from_distance(d: f64) -> f64 {
    4.0 * std::f64::consts::PI * d / SPEED_OF_LIGHT
}

/// Inverse of [`slope_from_distance`]: distance (metres) corresponding to a
/// phase-vs-frequency slope `k` (rad/Hz).
#[inline]
pub fn distance_from_slope(k: f64) -> f64 {
    k * SPEED_OF_LIGHT / (4.0 * std::f64::consts::PI)
}

/// Carrier wavelength, metres.
#[inline]
pub fn wavelength(f: f64) -> f64 {
    SPEED_OF_LIGHT / f
}

/// One-way free-space path loss in dB between isotropic antennas at
/// distance `d` metres, frequency `f` Hz (Friis).
///
/// # Panics
///
/// Panics in debug builds if `d <= 0` or `f <= 0`.
pub fn free_space_path_loss_db(d: f64, f: f64) -> f64 {
    debug_assert!(d > 0.0 && f > 0.0);
    20.0 * (4.0 * std::f64::consts::PI * d * f / SPEED_OF_LIGHT).log10()
}

/// Round-trip (backscatter) path loss in dB: the tag re-radiates, so the
/// received power falls as `d⁴` — twice the one-way Friis loss.
pub fn backscatter_path_loss_db(d: f64, f: f64) -> f64 {
    2.0 * free_space_path_loss_db(d, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn phase_is_linear_in_distance_and_frequency() {
        let f = 915e6;
        assert_eq!(phase(0.0, f), 0.0);
        let p1 = phase(1.0, f);
        assert!((phase(2.0, f) - 2.0 * p1).abs() < 1e-9);
        assert!((phase(1.0, 2.0 * f) - 2.0 * p1).abs() < 1e-9);
    }

    #[test]
    fn half_wavelength_advances_one_turn() {
        // Round trip: moving the tag λ/2 farther adds exactly 2π.
        let f = 915e6;
        let lambda = wavelength(f);
        let d = 1.0;
        let diff = phase(d + lambda / 2.0, f) - phase(d, f);
        assert!((diff - 2.0 * PI).abs() < 1e-9);
    }

    #[test]
    fn wrapped_phase_in_range() {
        for d in [0.1, 0.5, 1.0, 2.5, 7.3] {
            let w = phase_wrapped(d, 915e6);
            assert!((0.0..2.0 * PI).contains(&w));
        }
    }

    #[test]
    fn slope_round_trip() {
        for d in [0.25, 0.5, 1.5, 2.5, 3.0] {
            let k = slope_from_distance(d);
            assert!((distance_from_slope(k) - d).abs() < 1e-12);
        }
    }

    #[test]
    fn slope_magnitude_matches_paper_band() {
        // Over the 24.5 MHz FCC band a 2.5 m distance sweeps ~2.6 rad.
        let k = slope_from_distance(2.5);
        let sweep = k * 24.5e6;
        assert!((sweep - 2.567).abs() < 0.01, "sweep={sweep}");
    }

    #[test]
    fn path_loss_monotone_in_distance() {
        let f = 915e6;
        assert!(free_space_path_loss_db(2.0, f) > free_space_path_loss_db(1.0, f));
        // Doubling distance adds ~6 dB one-way, ~12 dB round trip.
        let one = free_space_path_loss_db(2.0, f) - free_space_path_loss_db(1.0, f);
        assert!((one - 6.02).abs() < 0.01);
        let rt = backscatter_path_loss_db(2.0, f) - backscatter_path_loss_db(1.0, f);
        assert!((rt - 12.04).abs() < 0.02);
    }

    #[test]
    fn friis_at_one_meter_915mhz() {
        // Known value: FSPL(1 m, 915 MHz) ≈ 31.7 dB.
        let l = free_space_path_loss_db(1.0, 915e6);
        assert!((l - 31.67).abs() < 0.1, "l={l}");
    }
}
