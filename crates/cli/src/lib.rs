//! Library backing the `rf-prism` command-line tool.
//!
//! The CLI makes the workspace usable without writing Rust:
//!
//! * `rf-prism simulate` — run a simulated inventory round and record it
//!   to a survey log;
//! * `rf-prism sense` — replay a survey log through the full RF-Prism
//!   pipeline and print each tag's disentangled state;
//! * `rf-prism stream` — drive the incremental sliding-window engine;
//!   with `--log` it replays a recorded round and emits continuous
//!   telemetry (JSONL frames, health verdicts, Prometheus exposition) via
//!   [`telemetry`];
//! * `rf-prism calibrate` — produce a device-calibration database entry
//!   for a tag (paper §V-B).
//!
//! The survey-log format ([`log`]) is a plain line-oriented text file that
//! captures everything the sensing side needs (antenna poses, channel
//! plan, raw reads) plus optional ground truth for scoring — the same
//! record/replay shape a real deployment would dump from its LLRP client.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod log;
pub mod telemetry;
