//! Bit-identity suite for the const-generic LM facades (DESIGN.md §6).
//!
//! The 2-D (`LmCore<5>`/`LmCore<3>`) and 3-D (`LmCore<7>`/`LmCore<4>`)
//! solver facades must reproduce the frozen pre-refactor solvers in
//! `rfp_core::reference` bit-for-bit — same refinements, same sort
//! orders, same warm-gate decisions, same final estimate down to the last
//! ulp. Every configuration axis gets a pin: lane mode (4-wide vs the
//! scalar escape hatch), exhaustive vs pruned scans, analytic vs numeric
//! Jacobians, RSSI penalty on/off, geometry tables vs direct evaluation,
//! and warm starts both fresh (gate hit) and teleported-stale (gate miss
//! fallback).

use proptest::prelude::*;
use rfp_core::model::{extract_observation, AntennaObservation, ExtractConfig};
use rfp_core::reference::{
    solve_2d_reference, solve_3d_reference, Reference2DWorkspace, Reference3DWorkspace,
};
use rfp_core::solver::{
    solve_2d_seeded_warm, solve_2d_tracking_warm, JacobianMode, SolveSeeds, SolverConfig,
    SolverWorkspace, TagEstimate2D, WarmGate, WarmStart,
};
use rfp_core::solver3d::{
    solve_3d_seeded_warm, Solve3DSeeds, Solver3DConfig, Solver3DWorkspace, TagEstimate3D,
    WarmStart3D,
};
use rfp_core::LaneMode;
use rfp_geom::{Vec2, Vec3};
use rfp_phys::Material;
use rfp_sim::{Motion, MultipathEnvironment, Scene, SimTag};

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

fn observations_2d(
    x: f64,
    y: f64,
    alpha: f64,
    material_idx: usize,
    seed: u64,
    clutter: bool,
) -> Option<(Scene, Vec<AntennaObservation>)> {
    let mut scene = Scene::standard_2d();
    if clutter {
        scene = scene.with_environment(MultipathEnvironment::cluttered(3, seed ^ 0x5d));
    }
    let material = Material::CLASSES[material_idx % Material::CLASSES.len()];
    let tag = SimTag::with_seeded_diversity(seed)
        .attached_to(material)
        .with_motion(Motion::planar_static(Vec2::new(x, y), alpha));
    let survey = scene.survey(&tag, seed.wrapping_mul(0x9e37_79b9));
    let obs: Option<Vec<_>> = scene
        .antenna_poses()
        .iter()
        .zip(&survey.per_antenna)
        .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).ok())
        .collect();
    obs.map(|o| (scene, o))
}

fn observations_3d(
    position: Vec3,
    dipole: Vec3,
    seed: u64,
) -> Option<(Scene, Vec<AntennaObservation>)> {
    let scene = Scene::six_antenna_3d();
    let tag = SimTag::nominal(1)
        .with_motion(Motion::Static { position, dipole: dipole.normalized() });
    let survey = scene.survey(&tag, seed);
    let obs: Option<Vec<_>> = scene
        .antenna_poses()
        .iter()
        .zip(&survey.per_antenna)
        .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).ok())
        .collect();
    obs.map(|o| (scene, o))
}

/// Bit-pattern equality across every 2-D output field, uncertainty
/// propagation included.
fn assert_bits_2d(facade: &TagEstimate2D, oracle: &TagEstimate2D, what: &str) {
    let fields = |e: &TagEstimate2D| {
        [
            e.position.x,
            e.position.y,
            e.orientation,
            e.kt,
            e.bt,
            e.cost,
            e.residual_rms,
            e.position_std_m,
            e.orientation_std_rad,
            e.position_cov[0][0],
            e.position_cov[0][1],
            e.position_cov[1][0],
            e.position_cov[1][1],
        ]
    };
    for (i, (fa, fb)) in fields(facade).iter().zip(fields(oracle).iter()).enumerate() {
        assert_eq!(
            fa.to_bits(),
            fb.to_bits(),
            "{what} (field {i}): facade {facade:?} vs oracle {oracle:?}"
        );
    }
}

/// Bit-pattern equality across every 3-D output field.
fn assert_bits_3d(facade: &TagEstimate3D, oracle: &TagEstimate3D, what: &str) {
    let fields = |e: &TagEstimate3D| {
        [
            e.position.x,
            e.position.y,
            e.position.z,
            e.dipole.x,
            e.dipole.y,
            e.dipole.z,
            e.kt,
            e.bt,
            e.cost,
            e.residual_rms,
        ]
    };
    for (i, (fa, fb)) in fields(facade).iter().zip(fields(oracle).iter()).enumerate() {
        assert_eq!(
            fa.to_bits(),
            fb.to_bits(),
            "{what} (field {i}): facade {facade:?} vs oracle {oracle:?}"
        );
    }
}

/// Runs facade and oracle against the same scene/config/warm input and
/// pins the results bit-for-bit. `scene_seeds` controls whether the
/// geometry tables are in play.
fn pin_2d(
    obs: &[AntennaObservation],
    scene: &Scene,
    config: &SolverConfig,
    warm: Option<&WarmStart>,
    with_geometry: bool,
    what: &str,
) {
    let seeds = if with_geometry {
        SolveSeeds::for_scene(scene.region(), config, &scene.antenna_poses())
    } else {
        SolveSeeds::new(scene.region(), config)
    };
    let mut ws = SolverWorkspace::default();
    let facade = solve_2d_seeded_warm(obs, &seeds, config, &mut ws, warm).expect("solvable");
    let mut oracle_ws = Reference2DWorkspace::default();
    let oracle =
        solve_2d_reference(obs, &seeds, config, &mut oracle_ws, warm).expect("solvable");
    assert_bits_2d(&facade, &oracle, what);
}

fn pin_3d(
    obs: &[AntennaObservation],
    scene: &Scene,
    config: &Solver3DConfig,
    warm: Option<&WarmStart3D>,
    with_geometry: bool,
    what: &str,
) {
    let z_range = (0.0, 1.0);
    let seeds = if with_geometry {
        Solve3DSeeds::for_scene(scene.region(), z_range, config, &scene.antenna_poses())
    } else {
        Solve3DSeeds::new(scene.region(), z_range, config)
    };
    let mut ws = Solver3DWorkspace::default();
    let facade = solve_3d_seeded_warm(obs, &seeds, config, &mut ws, warm).expect("solvable");
    let mut oracle_ws = Reference3DWorkspace::default();
    let oracle =
        solve_3d_reference(obs, &seeds, config, &mut oracle_ws, warm).expect("solvable");
    assert_bits_3d(&facade, &oracle, what);
}

fn scene_2d() -> (Scene, Vec<AntennaObservation>) {
    observations_2d(0.45, 1.55, 0.7, 2, 41, true).expect("standard scene extracts")
}

fn scene_3d() -> (Scene, Vec<AntennaObservation>) {
    observations_3d(Vec3::new(0.7, 1.1, 0.5), Vec3::new(0.4, 0.6, 0.9), 21)
        .expect("3-D scene extracts")
}

// ---------------------------------------------------------------------------
// 2-D pins
// ---------------------------------------------------------------------------

#[test]
fn default_wide4_matches_reference_2d() {
    let (scene, obs) = scene_2d();
    pin_2d(&obs, &scene, &SolverConfig::default(), None, true, "default Wide4");
}

#[test]
fn scalar_escape_hatch_matches_reference_2d() {
    let (scene, obs) = scene_2d();
    let config = SolverConfig { lane_mode: LaneMode::Scalar, ..SolverConfig::default() };
    pin_2d(&obs, &scene, &config, None, true, "scalar lane mode");
}

#[test]
fn exhaustive_matches_reference_2d() {
    let (scene, obs) = scene_2d();
    pin_2d(&obs, &scene, &SolverConfig::exhaustive(), None, true, "exhaustive");
}

#[test]
fn numeric_jacobian_matches_reference_2d() {
    let (scene, obs) = scene_2d();
    let config = SolverConfig { jacobian: JacobianMode::Numeric, ..SolverConfig::default() };
    pin_2d(&obs, &scene, &config, None, true, "numeric Jacobian");
}

#[test]
fn rssi_disabled_matches_reference_2d() {
    let (scene, obs) = scene_2d();
    let config = SolverConfig { rssi_sigma_db: f64::INFINITY, ..SolverConfig::default() };
    pin_2d(&obs, &scene, &config, None, true, "rssi disabled");
}

#[test]
fn table_free_seeds_match_reference_2d() {
    let (scene, obs) = scene_2d();
    pin_2d(&obs, &scene, &SolverConfig::default(), None, false, "no geometry tables");
}

#[test]
fn fresh_warm_start_matches_reference_2d() {
    let (scene, obs) = scene_2d();
    let config = SolverConfig::default();
    let seeds = SolveSeeds::for_scene(scene.region(), &config, &scene.antenna_poses());
    let mut ws = SolverWorkspace::default();
    let cold = solve_2d_seeded_warm(&obs, &seeds, &config, &mut ws, None).expect("solvable");
    let warm = WarmStart::from_estimate(&cold);
    pin_2d(&obs, &scene, &config, Some(&warm), true, "fresh warm start");
}

#[test]
fn teleported_warm_start_matches_reference_2d() {
    let (scene, obs) = scene_2d();
    // A prior parked far outside the basin: the gate must miss in both
    // implementations and both must fall back to the identical cold scan.
    let stale = WarmStart {
        position: Vec2::new(-2.6, 5.4),
        orientation: 2.9,
        kt: 4.0e-8,
        bt: 0.3,
    };
    pin_2d(&obs, &scene, &SolverConfig::default(), Some(&stale), true, "stale warm start");
}

/// The twin-α disambiguation path: with only three antennas the wrapped
/// intercept system admits near-twin α solutions and the RSSI mode
/// penalty breaks the tie — the facade must take the identical branch.
#[test]
fn three_antenna_twin_alpha_matches_reference_2d() {
    let (scene, obs) = scene_2d();
    let obs3 = &obs[..3];
    let config = SolverConfig::default();
    // Geometry tables built for the full deployment do not match the
    // truncated observation set; both solvers must fall back identically.
    let seeds = SolveSeeds::for_scene(scene.region(), &config, &scene.antenna_poses());
    let mut ws = SolverWorkspace::default();
    let facade = solve_2d_seeded_warm(obs3, &seeds, &config, &mut ws, None).expect("3 antennas");
    let mut oracle_ws = Reference2DWorkspace::default();
    let oracle =
        solve_2d_reference(obs3, &seeds, &config, &mut oracle_ws, None).expect("3 antennas");
    assert_bits_2d(&facade, &oracle, "twin-α with 3 antennas");
}

/// The tracking entry with a period-1 gate re-anchors every solve, which
/// is by contract `solve_2d_seeded_warm` exactly — and therefore also the
/// reference, transitively.
#[test]
fn tracking_gate_period_one_matches_reference_2d() {
    let (scene, obs) = scene_2d();
    let config = SolverConfig::default();
    let seeds = SolveSeeds::for_scene(scene.region(), &config, &scene.antenna_poses());
    let mut ws = SolverWorkspace::default();
    let cold = solve_2d_seeded_warm(&obs, &seeds, &config, &mut ws, None).expect("solvable");
    let warm = WarmStart::from_estimate(&cold);

    let mut gate = WarmGate::with_period(1);
    let mut gated_ws = SolverWorkspace::default();
    let gated =
        solve_2d_tracking_warm(&obs, &seeds, &config, &mut gated_ws, Some(&warm), &mut gate)
            .expect("solvable");

    let mut oracle_ws = Reference2DWorkspace::default();
    let oracle = solve_2d_reference(&obs, &seeds, &config, &mut oracle_ws, Some(&warm))
        .expect("solvable");
    assert_bits_2d(&gated, &oracle, "tracking gate period 1");
}

/// Workspace reuse across solves must not perturb results: re-solving the
/// same input with a dirty workspace is bit-identical to a fresh one.
#[test]
fn dirty_workspace_reuse_is_bit_identical_2d() {
    let (scene, obs) = scene_2d();
    let (_, obs_other) =
        observations_2d(-0.8, 2.1, 2.2, 5, 77, false).expect("standard scene extracts");
    let config = SolverConfig::default();
    let seeds = SolveSeeds::for_scene(scene.region(), &config, &scene.antenna_poses());

    let mut fresh = SolverWorkspace::default();
    let clean = solve_2d_seeded_warm(&obs, &seeds, &config, &mut fresh, None).expect("solvable");

    let mut dirty = SolverWorkspace::default();
    solve_2d_seeded_warm(&obs_other, &seeds, &config, &mut dirty, None).expect("solvable");
    let reused = solve_2d_seeded_warm(&obs, &seeds, &config, &mut dirty, None).expect("solvable");
    assert_bits_2d(&reused, &clean, "dirty workspace reuse");
}

// ---------------------------------------------------------------------------
// 3-D pins
// ---------------------------------------------------------------------------

#[test]
fn default_wide4_matches_reference_3d() {
    let (scene, obs) = scene_3d();
    pin_3d(&obs, &scene, &Solver3DConfig::default(), None, true, "default Wide4 3-D");
}

#[test]
fn scalar_escape_hatch_matches_reference_3d() {
    let (scene, obs) = scene_3d();
    let config = Solver3DConfig { lane_mode: LaneMode::Scalar, ..Solver3DConfig::default() };
    pin_3d(&obs, &scene, &config, None, true, "scalar lane mode 3-D");
}

#[test]
fn exhaustive_matches_reference_3d() {
    let (scene, obs) = scene_3d();
    pin_3d(&obs, &scene, &Solver3DConfig::exhaustive(), None, true, "exhaustive 3-D");
}

#[test]
fn numeric_jacobian_matches_reference_3d() {
    let (scene, obs) = scene_3d();
    let config =
        Solver3DConfig { jacobian: JacobianMode::Numeric, ..Solver3DConfig::default() };
    pin_3d(&obs, &scene, &config, None, true, "numeric Jacobian 3-D");
}

#[test]
fn table_free_seeds_match_reference_3d() {
    let (scene, obs) = scene_3d();
    pin_3d(&obs, &scene, &Solver3DConfig::default(), None, false, "no geometry tables 3-D");
}

#[test]
fn fresh_warm_start_matches_reference_3d() {
    let (scene, obs) = scene_3d();
    let config = Solver3DConfig::default();
    let seeds =
        Solve3DSeeds::for_scene(scene.region(), (0.0, 1.0), &config, &scene.antenna_poses());
    let mut ws = Solver3DWorkspace::default();
    let cold = solve_3d_seeded_warm(&obs, &seeds, &config, &mut ws, None).expect("solvable");
    let warm = WarmStart3D::from_estimate(&cold);
    pin_3d(&obs, &scene, &config, Some(&warm), true, "fresh warm start 3-D");
}

#[test]
fn teleported_warm_start_matches_reference_3d() {
    let (scene, obs) = scene_3d();
    let stale = WarmStart3D {
        position: Vec3::new(-3.0, 6.0, 2.5),
        dipole: Vec3::new(0.1, -0.9, 0.2),
        kt: 5.0e-8,
        bt: 1.1,
    };
    pin_3d(&obs, &scene, &Solver3DConfig::default(), Some(&stale), true, "stale warm 3-D");
}

// ---------------------------------------------------------------------------
// Property sweeps
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized scenes, both lane modes, pruned and exhaustive scans:
    /// the facade is the oracle bit-for-bit.
    #[test]
    fn facade_matches_reference_2d(
        x in -1.2f64..1.2,
        y in 0.8f64..2.4,
        alpha in 0.0f64..3.1,
        material_idx in 0usize..8,
        seed in 0u64..1000,
        clutter in proptest::bool::ANY,
        scalar in proptest::bool::ANY,
        exhaustive in proptest::bool::ANY,
    ) {
        let Some((scene, obs)) = observations_2d(x, y, alpha, material_idx, seed, clutter)
        else { return Ok(()) };
        let base = if exhaustive { SolverConfig::exhaustive() } else { SolverConfig::default() };
        let lane = if scalar { LaneMode::Scalar } else { LaneMode::Wide4 };
        let config = SolverConfig { lane_mode: lane, ..base };
        pin_2d(&obs, &scene, &config, None, true, "randomized 2-D");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized 3-D scenes: the facade is the oracle bit-for-bit.
    #[test]
    fn facade_matches_reference_3d(
        x in 0.2f64..1.0,
        y in 0.6f64..1.8,
        z in 0.2f64..0.8,
        dx in -1.0f64..1.0,
        dy in -1.0f64..1.0,
        dz in 0.1f64..1.0,
        seed in 0u64..1000,
        scalar in proptest::bool::ANY,
    ) {
        let Some((scene, obs)) =
            observations_3d(Vec3::new(x, y, z), Vec3::new(dx, dy, dz), seed)
        else { return Ok(()) };
        let lane = if scalar { LaneMode::Scalar } else { LaneMode::Wide4 };
        let config = Solver3DConfig { lane_mode: lane, ..Solver3DConfig::default() };
        pin_3d(&obs, &scene, &config, None, true, "randomized 3-D");
    }
}
