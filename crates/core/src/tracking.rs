//! Tracking across sensing rounds (extension).
//!
//! RF-Prism senses one static window at a time; many applications
//! (conveyor lines, pick-and-place, carts) want a *trajectory*. A
//! constant-velocity Kalman filter over the per-round position estimates
//! smooths the centimetre-level round noise and rides through rounds the
//! error detector rejects (prediction only). State: `[x, y, vx, vy]`.

use rfp_geom::Vec2;

/// Tracker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackerConfig {
    /// Process noise: white acceleration std, m/s².
    pub acceleration_std: f64,
    /// Measurement noise: per-round position error std, metres
    /// (≈ the deployment's localization accuracy).
    pub measurement_std: f64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig { acceleration_std: 0.005, measurement_std: 0.06 }
    }
}

/// A constant-velocity Kalman tracker for one tag.
///
/// # Example
///
/// ```
/// use rfp_core::tracking::{TagTracker, TrackerConfig};
/// use rfp_geom::Vec2;
///
/// let mut tracker = TagTracker::new(TrackerConfig::default());
/// tracker.observe(Vec2::new(0.00, 1.0), 0.0);
/// tracker.observe(Vec2::new(0.11, 1.0), 10.0);
/// tracker.observe(Vec2::new(0.19, 1.0), 20.0);
/// let v = tracker.velocity().unwrap();
/// assert!(v.x > 0.0 && v.x < 0.02); // ~1 cm/s belt
/// ```
#[derive(Debug, Clone)]
pub struct TagTracker {
    config: TrackerConfig,
    /// `[x, y, vx, vy]` once initialized.
    state: Option<[f64; 4]>,
    /// Row-major 4×4 covariance.
    cov: [[f64; 4]; 4],
    last_time_s: f64,
}

impl TagTracker {
    /// A tracker with the given tuning, awaiting its first observation.
    pub fn new(config: TrackerConfig) -> Self {
        TagTracker { config, state: None, cov: [[0.0; 4]; 4], last_time_s: 0.0 }
    }

    /// Whether the tracker has been initialized by an observation.
    pub fn is_initialized(&self) -> bool {
        self.state.is_some()
    }

    /// Current position estimate, if initialized.
    pub fn position(&self) -> Option<Vec2> {
        self.state.map(|s| Vec2::new(s[0], s[1]))
    }

    /// Current velocity estimate (m/s), if initialized.
    pub fn velocity(&self) -> Option<Vec2> {
        self.state.map(|s| Vec2::new(s[2], s[3]))
    }

    /// Constant-velocity position prediction at `time_s`, without mutating
    /// the filter — the warm-start position for the next sensing round
    /// (feed it to [`crate::WarmStart::with_position`]). Times before the
    /// last observation clamp to it.
    pub fn extrapolate(&self, time_s: f64) -> Option<Vec2> {
        let s = self.state?;
        let dt = (time_s - self.last_time_s).max(0.0);
        Some(Vec2::new(s[0] + dt * s[2], s[1] + dt * s[3]))
    }

    /// Advances the filter to `time_s` without a measurement (e.g. the
    /// round was rejected by the error detector). No-op before
    /// initialization.
    pub fn predict_to(&mut self, time_s: f64) {
        let Some(state) = self.state else { return };
        let dt = (time_s - self.last_time_s).max(0.0);
        if dt == 0.0 {
            return;
        }
        // x' = F x
        let predicted = [
            state[0] + dt * state[2],
            state[1] + dt * state[3],
            state[2],
            state[3],
        ];
        // P' = F P Fᵀ + Q (white-acceleration Q, per axis).
        let f_mul = |m: &[[f64; 4]; 4]| {
            let mut out = [[0.0; 4]; 4];
            for c in 0..4 {
                out[0][c] = m[0][c] + dt * m[2][c];
                out[1][c] = m[1][c] + dt * m[3][c];
                out[2][c] = m[2][c];
                out[3][c] = m[3][c];
            }
            out
        };
        let p = f_mul(&self.cov);
        // (F P) Fᵀ — same operation on columns.
        let mut pf = [[0.0; 4]; 4];
        for r in 0..4 {
            pf[r][0] = p[r][0] + dt * p[r][2];
            pf[r][1] = p[r][1] + dt * p[r][3];
            pf[r][2] = p[r][2];
            pf[r][3] = p[r][3];
        }
        let q = self.config.acceleration_std * self.config.acceleration_std;
        let (dt2, dt3, dt4) = (dt * dt, dt * dt * dt, dt * dt * dt * dt);
        for axis in 0..2 {
            let (i, j) = (axis, axis + 2);
            pf[i][i] += q * dt4 / 4.0;
            pf[i][j] += q * dt3 / 2.0;
            pf[j][i] += q * dt3 / 2.0;
            pf[j][j] += q * dt2;
        }
        self.cov = pf;
        self.state = Some(predicted);
        self.last_time_s = time_s;
    }

    /// Clears the filter when its last observation is older than `ttl_s`
    /// at `now_s`, returning whether an eviction happened. A long-idle
    /// tag's extrapolation is unbounded garbage (constant-velocity
    /// projection over minutes), so callers feeding
    /// [`extrapolate`](Self::extrapolate) into warm starts should evict
    /// before reading — an evicted tracker re-initializes from its next
    /// observation, and the solver falls back to a cold multi-start
    /// instead of validating (and rejecting) a stale prior every round.
    pub fn evict_stale(&mut self, now_s: f64, ttl_s: f64) -> bool {
        if self.state.is_some() && now_s - self.last_time_s > ttl_s {
            self.state = None;
            self.cov = [[0.0; 4]; 4];
            true
        } else {
            false
        }
    }

    /// Feeds one per-round position estimate taken at `time_s`.
    ///
    /// Returns the filtered position.
    // Index loops mirror the Kalman matrix math.
    #[allow(clippy::needless_range_loop)]
    pub fn observe(&mut self, measurement: Vec2, time_s: f64) -> Vec2 {
        match self.state {
            None => {
                let r = self.config.measurement_std * self.config.measurement_std;
                self.state = Some([measurement.x, measurement.y, 0.0, 0.0]);
                self.cov = [[0.0; 4]; 4];
                self.cov[0][0] = r;
                self.cov[1][1] = r;
                self.cov[2][2] = 0.25; // generous initial velocity uncertainty
                self.cov[3][3] = 0.25;
                self.last_time_s = time_s;
                measurement
            }
            Some(_) => {
                self.predict_to(time_s);
                let state = self.state.expect("initialized");
                let r = self.config.measurement_std * self.config.measurement_std;
                // Measurement H = [I2 0]; innovation per axis pair.
                let y = [measurement.x - state[0], measurement.y - state[1]];
                // S = H P Hᵀ + R (2×2), K = P Hᵀ S⁻¹ (4×2).
                let s00 = self.cov[0][0] + r;
                let s01 = self.cov[0][1];
                let s10 = self.cov[1][0];
                let s11 = self.cov[1][1] + r;
                let det = s00 * s11 - s01 * s10;
                let inv = [[s11 / det, -s01 / det], [-s10 / det, s00 / det]];
                let mut k = [[0.0; 2]; 4];
                for row in 0..4 {
                    let ph = [self.cov[row][0], self.cov[row][1]];
                    k[row][0] = ph[0] * inv[0][0] + ph[1] * inv[1][0];
                    k[row][1] = ph[0] * inv[0][1] + ph[1] * inv[1][1];
                }
                let mut new_state = state;
                for row in 0..4 {
                    new_state[row] += k[row][0] * y[0] + k[row][1] * y[1];
                }
                // P = (I − K H) P.
                let mut new_cov = [[0.0; 4]; 4];
                for rrow in 0..4 {
                    for c in 0..4 {
                        let kh = k[rrow][0] * self.cov[0][c] + k[rrow][1] * self.cov[1][c];
                        new_cov[rrow][c] = self.cov[rrow][c] - kh;
                    }
                }
                self.state = Some(new_state);
                self.cov = new_cov;
                Vec2::new(new_state[0], new_state[1])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn starts_uninitialized_then_tracks() {
        let mut t = TagTracker::new(TrackerConfig::default());
        assert!(!t.is_initialized());
        assert_eq!(t.position(), None);
        t.observe(Vec2::new(1.0, 2.0), 0.0);
        assert!(t.is_initialized());
        assert_eq!(t.position(), Some(Vec2::new(1.0, 2.0)));
    }

    #[test]
    fn smooths_noisy_linear_trajectory() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = TrackerConfig { acceleration_std: 0.0002, measurement_std: 0.06 };
        let mut t = TagTracker::new(cfg);
        let v = Vec2::new(0.015, -0.008); // 1.7 cm/s cart
        let mut raw_err = 0.0;
        let mut filt_err = 0.0;
        let mut n = 0.0;
        for round in 0..40 {
            let time = round as f64 * 10.0;
            let truth = Vec2::new(0.0, 2.0) + v * time;
            let noise = Vec2::new(rng.gen_range(-0.1..0.1), rng.gen_range(-0.1..0.1));
            let filtered = t.observe(truth + noise, time);
            if round >= 10 {
                raw_err += noise.norm();
                filt_err += filtered.distance(truth);
                n += 1.0;
            }
        }
        assert!(
            filt_err / n < 0.7 * (raw_err / n),
            "filter must beat raw: {} vs {}",
            filt_err / n,
            raw_err / n
        );
        let vel = t.velocity().unwrap();
        assert!(vel.distance(v) < 0.01, "velocity {vel} vs truth {v}");
    }

    #[test]
    fn prediction_bridges_rejected_rounds() {
        let cfg = TrackerConfig { acceleration_std: 0.001, measurement_std: 0.02 };
        let mut t = TagTracker::new(cfg);
        // Learn the velocity from clean rounds.
        for round in 0..10 {
            let time = round as f64 * 10.0;
            t.observe(Vec2::new(0.02 * time, 1.0), time);
        }
        // Three rejected rounds: predict only.
        t.predict_to(120.0);
        let predicted = t.position().unwrap();
        assert!((predicted.x - 2.4).abs() < 0.1, "predicted {predicted}");
        assert!((predicted.y - 1.0).abs() < 0.05);
    }

    #[test]
    fn stationary_tag_velocity_near_zero() {
        let mut t = TagTracker::new(TrackerConfig::default());
        for round in 0..20 {
            t.observe(Vec2::new(0.5, 1.5), round as f64 * 10.0);
        }
        let v = t.velocity().unwrap();
        assert!(v.norm() < 1e-6, "velocity {v}");
    }

    #[test]
    fn evict_stale_clears_only_idle_trackers() {
        let mut t = TagTracker::new(TrackerConfig::default());
        assert!(!t.evict_stale(1000.0, 30.0), "uninitialized tracker has nothing to evict");
        for round in 0..5 {
            let time = round as f64 * 10.0;
            t.observe(Vec2::new(0.02 * time, 1.0), time);
        }
        // Fresh: last observation at t=40, ttl 30 → keep.
        assert!(!t.evict_stale(60.0, 30.0));
        assert!(t.is_initialized());
        // Idle past the ttl: evict; warm priors must disappear.
        assert!(t.evict_stale(100.0, 30.0));
        assert!(!t.is_initialized());
        assert_eq!(t.position(), None);
        assert_eq!(t.extrapolate(120.0), None);
        // Re-initializes cleanly from the next observation.
        t.observe(Vec2::new(3.0, 1.0), 110.0);
        assert_eq!(t.position(), Some(Vec2::new(3.0, 1.0)));
    }

    #[test]
    fn predict_before_init_is_noop() {
        let mut t = TagTracker::new(TrackerConfig::default());
        t.predict_to(100.0);
        assert!(!t.is_initialized());
    }

    #[test]
    fn extrapolate_projects_without_mutating() {
        let mut t = TagTracker::new(TrackerConfig::default());
        assert_eq!(t.extrapolate(5.0), None);
        for round in 0..10 {
            let time = round as f64 * 10.0;
            t.observe(Vec2::new(0.02 * time, 1.0), time);
        }
        let before = t.position().unwrap();
        let ahead = t.extrapolate(120.0).unwrap();
        assert!((ahead.x - 2.4).abs() < 0.1, "extrapolated {ahead}");
        assert!((ahead.y - 1.0).abs() < 0.05);
        // Read-only: filter state unchanged, and past times clamp.
        assert_eq!(t.position().unwrap(), before);
        assert_eq!(t.extrapolate(0.0), Some(before));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The covariance stays symmetric and positive on the diagonal no
        /// matter what observation sequence arrives.
        #[test]
        fn covariance_stays_well_formed(
            steps in proptest::collection::vec(
                (-5.0f64..5.0, -5.0f64..5.0, 0.1f64..30.0), 1..25,
            ),
        ) {
            let mut t = TagTracker::new(TrackerConfig::default());
            let mut time = 0.0;
            for (x, y, dt) in steps {
                time += dt;
                t.observe(Vec2::new(x, y), time);
                for i in 0..4 {
                    prop_assert!(t.cov[i][i] >= -1e-12, "negative variance");
                    for j in 0..4 {
                        prop_assert!(
                            (t.cov[i][j] - t.cov[j][i]).abs() < 1e-9,
                            "asymmetric covariance"
                        );
                    }
                }
                let p = t.position().unwrap();
                prop_assert!(p.is_finite());
            }
        }

        /// The filtered position always lies between the prediction and the
        /// measurement (a convex combination for this observation model).
        #[test]
        fn update_moves_toward_measurement(
            mx in -3.0f64..3.0,
            my in -3.0f64..3.0,
        ) {
            let mut t = TagTracker::new(TrackerConfig::default());
            t.observe(Vec2::ZERO, 0.0);
            t.observe(Vec2::ZERO, 10.0);
            let before = t.position().unwrap();
            let filtered = t.observe(Vec2::new(mx, my), 20.0);
            let m = Vec2::new(mx, my);
            // Distance to the measurement must not grow.
            prop_assert!(filtered.distance(m) <= before.distance(m) + 1e-9);
        }
    }
}
