//! Ablation: sensitivity of the whole pipeline to per-read phase noise —
//! the knob that calibrates the simulator against the paper's testbed
//! (see DESIGN.md §10 and EXPERIMENTS.md).

use rfp_bench::{loc, report};
use rfp_sim::{NoiseModel, Scene};

fn main() {
    report::header("Ablation", "accuracy vs per-read phase noise (reference RSSI)");
    println!("{:>12} {:>14} {:>14}", "σ (rad)", "loc error", "orient error");
    let mut rows = Vec::new();
    for &sigma in &[0.003f64, 0.006, 0.009, 0.018, 0.036, 0.072] {
        let scene = Scene::standard_2d()
            .with_noise(NoiseModel::paper_like().with_phase_std(sigma));
        let specs: Vec<_> =
            loc::grid_orientation_specs(&scene, 2).into_iter().step_by(3).collect();
        let outcomes = loc::run_trials(&scene, &specs);
        let loc_cm = loc::mean_position_error_cm(&outcomes);
        let orient = loc::mean_orientation_error_deg(&outcomes);
        println!("{sigma:>12.3} {:>14} {:>14}", report::cm(loc_cm), report::deg(orient));
        rows.push((sigma, loc_cm, orient));
    }
    println!();
    println!("the paper-like preset (σ = 0.009) reproduces the paper's ~5–8 cm /");
    println!("~10–20° operating point; errors grow roughly linearly in σ.");
    assert!(rows.last().unwrap().1 > rows[0].1, "more noise must hurt");
}
