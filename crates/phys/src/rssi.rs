//! Received signal strength model.
//!
//! RF-Prism itself is phase-only, but the Tagtag baseline (paper §VI-B)
//! normalizes its material features with RSS readings, and the simulator
//! must report an RSSI alongside every phase sample like a real reader does.
//!
//! The model is the standard backscatter link budget:
//!
//! ```text
//! RSSI(dBm) = P_ref − 40·log10(d / d_ref)           (d⁴ backscatter decay)
//!             + 20·log10(amplitude_factor)          (tag resonance/loss)
//!             + 20·log10(projection_magnitude)      (dipole vs boresight)
//!             − 3 dB                                 (circular→linear mismatch)
//! ```
//!
//! `P_ref` is the received power from a nominal, transverse tag at the
//! reference distance; −45 dBm at 1 m matches typical ImpinJ readings.

use crate::tag::TagElectrical;

/// Reference received power from a nominal tag at [`REFERENCE_DISTANCE_M`],
/// dBm (before polarization mismatch).
pub const REFERENCE_POWER_DBM: f64 = -45.0;

/// Reference distance for [`REFERENCE_POWER_DBM`], metres.
pub const REFERENCE_DISTANCE_M: f64 = 1.0;

/// Constant circular-to-linear polarization mismatch, dB.
pub const POLARIZATION_MISMATCH_DB: f64 = 3.0;

/// Practical sensitivity floor of the reader, dBm; reads below this are
/// dropped by the simulator.
pub const SENSITIVITY_FLOOR_DBM: f64 = -84.0;

/// Noise-free RSSI (dBm) for a tag at distance `d` metres with electrical
/// state `tag`, read at frequency `f` Hz, with dipole projection magnitude
/// `projection` (see [`crate::polarization::projection_magnitude`]).
///
/// Returns `f64::NEG_INFINITY` when the projection is zero (dipole along
/// boresight — no backscatter reaches the reader).
///
/// # Panics
///
/// Panics in debug builds if `d <= 0` or `projection` is outside `[0, 1]`.
pub fn rssi_dbm(d: f64, f: f64, tag: &TagElectrical, projection: f64) -> f64 {
    debug_assert!(d > 0.0, "distance must be positive");
    debug_assert!((0.0..=1.0 + 1e-9).contains(&projection));
    if projection <= 0.0 {
        return f64::NEG_INFINITY;
    }
    REFERENCE_POWER_DBM - 40.0 * (d / REFERENCE_DISTANCE_M).log10()
        + 20.0 * tag.amplitude_factor(f).log10()
        + 20.0 * projection.log10()
        - POLARIZATION_MISMATCH_DB
}

/// Coarse distance estimate from an RSSI reading, inverting the `d⁴` law
/// while assuming a nominal transverse tag. This is exactly the crude
/// normalization the Tagtag baseline leans on — and the reason it degrades
/// when the true tag deviates from nominal (paper Fig. 18).
pub fn coarse_distance_from_rssi(rssi: f64) -> f64 {
    let db_down = REFERENCE_POWER_DBM - POLARIZATION_MISMATCH_DB - rssi;
    REFERENCE_DISTANCE_M * 10f64.powf(db_down / 40.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::Material;

    #[test]
    fn rssi_decays_12db_per_doubling() {
        let t = TagElectrical::nominal();
        let f = 915e6;
        let r1 = rssi_dbm(1.0, f, &t, 1.0);
        let r2 = rssi_dbm(2.0, f, &t, 1.0);
        assert!((r1 - r2 - 12.04).abs() < 0.01);
    }

    #[test]
    fn nominal_reference_level() {
        let t = TagElectrical::nominal();
        let r = rssi_dbm(1.0, 915e6, &t, 1.0);
        assert!((r - (REFERENCE_POWER_DBM - POLARIZATION_MISMATCH_DB)).abs() < 1e-9);
    }

    #[test]
    fn lossy_material_reduces_rssi() {
        let f = 915e6;
        let bare = TagElectrical::nominal();
        let metal = bare.with_material(Material::Metal);
        assert!(rssi_dbm(1.0, f, &metal, 1.0) < rssi_dbm(1.0, f, &bare, 1.0) - 5.0);
    }

    #[test]
    fn zero_projection_is_unreadable() {
        let t = TagElectrical::nominal();
        assert_eq!(rssi_dbm(1.0, 915e6, &t, 0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn coarse_distance_round_trip_for_nominal_tag() {
        let t = TagElectrical::nominal();
        // Exact at resonance for a nominal transverse tag…
        for d in [0.5, 1.0, 2.0, 2.8] {
            let r = rssi_dbm(d, 915e6, &t, 1.0);
            let d_hat = coarse_distance_from_rssi(r);
            assert!((d_hat - d).abs() / d < 0.02, "d={d} d_hat={d_hat}");
        }
        // …but biased once a material loads the tag: that bias is Tagtag's
        // weakness, so assert it exists.
        let water = t.with_material(Material::Water);
        let r = rssi_dbm(1.0, 915e6, &water, 1.0);
        let d_hat = coarse_distance_from_rssi(r);
        assert!(d_hat > 1.2, "loading must inflate the coarse estimate, got {d_hat}");
    }

    #[test]
    fn typical_working_region_above_floor() {
        // Tags across the paper's 2 m working region must be readable for
        // non-metal materials.
        let f = 915e6;
        for m in [Material::Wood, Material::Glass, Material::Water] {
            let t = TagElectrical::nominal().with_material(m);
            let r = rssi_dbm(2.9, f, &t, 0.7);
            assert!(r > SENSITIVITY_FLOOR_DBM, "{m}: rssi {r}");
        }
    }
}
