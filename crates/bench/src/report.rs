//! Console reporting with explicit paper-reference columns.

/// Prints the standard experiment header.
pub fn header(figure: &str, title: &str) {
    println!();
    println!("================================================================");
    println!("{figure}: {title}");
    println!("================================================================");
}

/// Prints one paper-vs-measured row. `paper` is the value reported in the
/// paper (already formatted, e.g. `"7.61 cm"`), `measured` ours.
pub fn row(label: &str, paper: &str, measured: &str) {
    println!("{label:<28} paper: {paper:>12}   measured: {measured:>12}");
}

/// Prints a sub-section divider.
pub fn section(name: &str) {
    println!("---- {name} ----");
}

/// Formats a centimetre value.
pub fn cm(v: f64) -> String {
    format!("{v:.2} cm")
}

/// Formats a degree value.
pub fn deg(v: f64) -> String {
    format!("{v:.2}°")
}

/// Formats a percentage (input in 0..1).
pub fn pct(v: f64) -> String {
    format!("{:.1} %", v * 100.0)
}

/// Prints selected points of an empirical CDF.
pub fn cdf_summary(name: &str, errors_cm: &[f64]) {
    use rfp_dsp::stats;
    let mean = stats::mean(errors_cm).unwrap_or(f64::NAN);
    let std = stats::std_dev(errors_cm).unwrap_or(f64::NAN);
    println!(
        "  {name:<12} mean {mean:6.2} cm  std {std:5.2}  p50 {:6.2}  p90 {:6.2}  max {:6.2}",
        stats::percentile(errors_cm, 50.0).unwrap_or(f64::NAN),
        stats::percentile(errors_cm, 90.0).unwrap_or(f64::NAN),
        stats::percentile(errors_cm, 100.0).unwrap_or(f64::NAN),
    );
}

/// Prints a row-normalized confusion matrix with material labels.
pub fn confusion_matrix(cm: &rfp_ml::ConfusionMatrix) {
    use rfp_phys::Material;
    print!("{:>10}", "");
    for m in Material::CLASSES {
        print!("{:>9}", m.label());
    }
    println!();
    let norm = cm.normalized();
    for (i, m) in Material::CLASSES.iter().enumerate() {
        print!("{:>10}", m.label());
        for v in &norm[i] {
            print!("{v:>9.2}");
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatters() {
        assert_eq!(cm(7.613), "7.61 cm");
        assert_eq!(deg(9.834), "9.83°");
        assert_eq!(pct(0.879), "87.9 %");
    }
}
