//! Property suite for the trig backends ([`rfp_dsp::trig`]):
//!
//! * the polynomial backend's documented max-abs-error bound against
//!   libm across the full range-reduced input domain, and
//! * end-to-end `preprocess_reads_with` equivalence per backend —
//!   quantized (code-carrying) inputs are **bit-identical** to the
//!   frozen [`rfp_dsp::reference`] oracle through the table path, and
//!   continuous inputs track it to ≤ 1e-9 through the polynomial path
//!   with identical π-vote outcomes and channel masks.
//!
//! The exhaustive all-4096-codes bit-identity proofs live next to the
//! tables in `rfp_dsp::trig`'s unit tests; these properties cover the
//! continuous domain and the integration of the backends into the front
//! end.

use proptest::prelude::*;
use rfp_dsp::preprocess::{preprocess_reads_with, PreprocessConfig, RawRead};
use rfp_dsp::reference;
use rfp_dsp::trig::{self, TrigProvider, PHASE_LSB_RAD, POLY_MAX_ABS_ERROR};
use rfp_dsp::FrontEndWorkspace;
use rfp_geom::angle;

/// Windows over a handful of channels with phases following a noisy
/// steep line plus π jumps — the shape the π-vote actually has to
/// resolve. Returns continuous (codeless) reads.
fn arb_window() -> impl Strategy<Value = Vec<RawRead>> {
    (
        2usize..12,
        1usize..6,
        0.0f64..std::f64::consts::TAU,
        -0.9f64..0.9,
        proptest::collection::vec(0.0f64..1.0, 72),
    )
        .prop_map(|(channels, reads_per, base, slope, noise)| {
            let mut reads = Vec::new();
            let mut k = 0usize;
            for c in 0..channels {
                for _ in 0..reads_per {
                    let n = noise[k % noise.len()];
                    k += 1;
                    let jump = if n > 0.5 { std::f64::consts::PI } else { 0.0 };
                    let phase = angle::wrap_tau(
                        base + slope * c as f64 + (n - 0.5) * 0.02 + jump,
                    );
                    reads.push(RawRead {
                        channel: c,
                        frequency_hz: 902.75e6 + c as f64 * 0.5e6,
                        phase,
                        rssi_dbm: -55.0,
                        timestamp_s: k as f64 * 0.01,
                        phase_code: None,
                    });
                }
            }
            reads
        })
}

/// Snaps a window onto the 12-bit reader grid, attaching codes.
fn quantized(reads: &[RawRead]) -> Vec<RawRead> {
    reads
        .iter()
        .map(|r| {
            let phase = angle::wrap_tau((r.phase / PHASE_LSB_RAD).round() * PHASE_LSB_RAD);
            RawRead { phase, phase_code: trig::code_for_phase(phase), ..*r }
        })
        .collect()
}

fn run(reads: &[RawRead], trig_backend: TrigProvider) -> Vec<rfp_dsp::ChannelObservation> {
    let mut ws = FrontEndWorkspace::default();
    let mut out = Vec::new();
    preprocess_reads_with(
        &mut ws,
        reads,
        &PreprocessConfig { trig: trig_backend, ..Default::default() },
        &mut out,
    )
    .expect("windows generated non-empty");
    out
}

proptest! {
    /// Polynomial sin/cos stay within the documented bound over the whole
    /// domain the front end feeds them: phases in [0, 2π), doubled angles
    /// in [0, 4π), π-shifted folds in [0, 3π), plus negative slack.
    #[test]
    fn polynomial_is_within_documented_bound_of_libm(x in -16.0f64..16.0) {
        let (s, c) = trig::poly_sin_cos(x);
        prop_assert!(
            (s - x.sin()).abs() <= POLY_MAX_ABS_ERROR,
            "sin({x}): poly {s:e}, libm {:e}", x.sin()
        );
        prop_assert!(
            (c - x.cos()).abs() <= POLY_MAX_ABS_ERROR,
            "cos({x}): poly {c:e}, libm {:e}", x.cos()
        );
    }

    /// The bound also holds on the exact quantization grid points (and
    /// their doubled/shifted images), tying the polynomial and table
    /// domains together.
    #[test]
    fn polynomial_is_within_bound_on_grid_images(code in 0u16..4096) {
        let p = code as f64 * PHASE_LSB_RAD;
        for x in [p, 2.0 * p, p + std::f64::consts::PI] {
            let (s, c) = trig::poly_sin_cos(x);
            prop_assert!((s - x.sin()).abs() <= POLY_MAX_ABS_ERROR);
            prop_assert!((c - x.cos()).abs() <= POLY_MAX_ABS_ERROR);
        }
    }

    /// Quantized windows through the table path are bit-identical to the
    /// frozen reference oracle (which knows nothing about codes and calls
    /// libm on every read).
    #[test]
    fn quantized_windows_are_bit_identical_to_reference(reads in arb_window()) {
        let reads = quantized(&reads);
        let expected = reference::preprocess_reads(&reads, &PreprocessConfig::default())
            .expect("non-empty");
        let actual = run(&reads, TrigProvider::Table);
        prop_assert_eq!(actual, expected);
    }

    /// Continuous windows through the polynomial path track the reference
    /// to ≤ 1e-9 in phase with identical channel masks — and since a π-vote
    /// flip would shift every phase by π, matching phases prove the vote
    /// resolved identically.
    #[test]
    fn continuous_windows_track_reference_with_identical_vote(reads in arb_window()) {
        let expected = reference::preprocess_reads(&reads, &PreprocessConfig::default())
            .expect("non-empty");
        let actual = run(&reads, TrigProvider::Polynomial);
        prop_assert_eq!(actual.len(), expected.len(), "channel mask diverged");
        for (a, e) in actual.iter().zip(&expected) {
            prop_assert_eq!(a.channel, e.channel);
            prop_assert_eq!(a.read_count, e.read_count);
            prop_assert!(
                (a.phase - e.phase).abs() < 1e-9,
                "channel {}: poly phase {} vs reference {}", a.channel, a.phase, e.phase
            );
            // spread = √(−2 ln r) is ill-conditioned as r → 1, so it gets
            // a looser (but still tiny) tolerance.
            prop_assert!((a.phase_spread - e.phase_spread).abs() < 1e-6);
        }
    }

    /// Backends only change arithmetic, never the channel structure: the
    /// table and libm paths agree bitwise on mixed (part-coded) windows.
    #[test]
    fn mixed_windows_agree_between_table_and_libm(
        reads in arb_window(),
        mask in proptest::collection::vec(proptest::bool::ANY, 72),
    ) {
        // Quantize an arbitrary subset of the reads.
        let q = quantized(&reads);
        let mixed: Vec<RawRead> = reads
            .iter()
            .zip(&q)
            .enumerate()
            .map(|(i, (r, qr))| if mask[i % mask.len()] { *qr } else { *r })
            .collect();
        let libm = run(&mixed, TrigProvider::Libm);
        let table = run(&mixed, TrigProvider::Table);
        prop_assert_eq!(libm, table);
    }
}
