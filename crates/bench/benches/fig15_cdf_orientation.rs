//! Fig. 15: localization error CDF with the same material but *varying
//! orientation* — RF-Prism vs MobiTagbot.
//!
//! Paper: RF-Prism 7.34 cm (unchanged) vs MobiTagbot 9.95 cm (~20 %
//! degradation): the hologram cannot model the orientation term.

use rfp_bench::{compare, loc, report};
use rfp_dsp::stats;
use rfp_phys::Material;
use rfp_sim::{MultipathEnvironment, Scene};

fn main() {
    report::header("Fig. 15", "CDF, varying orientation: RF-Prism vs MobiTagbot");
    // Even a tidy lab has residual multipath; a perfectly clean channel
    // would let the hologram reach unrealistic carrier-phase precision.
    let scene = Scene::standard_2d()
        .with_environment(MultipathEnvironment::cluttered(3, 72));
    // The full orientation sweep on the plastic carrier; MobiTagbot was
    // calibrated at 0°.
    let specs = loc::grid_orientation_specs(&scene, 2);
    let cmp = compare::mobitagbot_comparison(&scene, &specs, Material::Plastic);

    report::cdf_summary("RF-Prism", &cmp.prism_cm);
    report::cdf_summary("MobiTagbot", &cmp.mobitagbot_cm);
    println!();
    let prism_mean = stats::mean(&cmp.prism_cm).unwrap();
    let mtb_mean = stats::mean(&cmp.mobitagbot_cm).unwrap();
    report::row("RF-Prism mean", "7.34 cm", &report::cm(prism_mean));
    report::row("MobiTagbot mean", "9.95 cm", &report::cm(mtb_mean));

    // Shape: rotation hurts MobiTagbot, not RF-Prism.
    assert!(
        mtb_mean > 1.1 * prism_mean,
        "varying orientation must cost MobiTagbot accuracy \
         ({prism_mean} vs {mtb_mean})"
    );
}
