//! End-to-end integration tests spanning the whole workspace: simulator →
//! pre-processing → disentangling → sensing, including the statistical
//! claims the paper's headline numbers rest on.

use rf_prism::core::material::ClassifierKind;
use rf_prism::core::{MaterialIdentifier, RfPrism};
use rf_prism::geom::angle;
use rf_prism::ml::dataset::Dataset;
use rf_prism::prelude::*;

fn prism_for(scene: &Scene) -> RfPrism {
    RfPrism::new(scene.antenna_poses(), scene.reader().plan)
        .with_region(scene.region())
}

/// Mean localization error over a grid of positions stays in the paper's
/// centimetre regime.
#[test]
fn localization_regime_matches_paper() {
    let scene = Scene::standard_2d();
    let prism = prism_for(&scene);
    let mut errors = Vec::new();
    for (i, position) in scene.region().grid(4, 4).enumerate() {
        let tag = SimTag::with_seeded_diversity(i as u64 % 4)
            .with_motion(Motion::planar_static(position, 0.4));
        let survey = scene.survey(&tag, 10 + i as u64);
        let result = prism.sense(&survey.per_antenna).expect("clean static window");
        errors.push(result.estimate.position.distance(position) * 100.0);
    }
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    assert!(mean < 12.0, "mean localization error {mean} cm");
    assert!(errors.iter().all(|&e| e < 40.0), "worst case {errors:?}");
}

/// The headline claim: localization accuracy is unaffected by rotating the
/// tag or changing the attached material.
#[test]
fn localization_invariant_to_orientation_and_material() {
    let scene = Scene::standard_2d();
    let prism = prism_for(&scene);
    let position = Vec2::new(0.7, 1.6);
    let mut by_condition = Vec::new();
    for (i, &(material, alpha_deg)) in [
        (Material::Plastic, 0.0),
        (Material::Plastic, 60.0),
        (Material::Plastic, 120.0),
        (Material::Metal, 0.0),
        (Material::Water, 60.0),
        (Material::Alcohol, 120.0),
    ]
    .iter()
    .enumerate()
    {
        let mut errs = Vec::new();
        for rep in 0..5u64 {
            let tag = SimTag::with_seeded_diversity(3)
                .attached_to(material)
                .with_motion(Motion::planar_static(position, f64::to_radians(alpha_deg)));
            let survey = scene.survey(&tag, 100 + i as u64 * 10 + rep);
            let result = prism.sense(&survey.per_antenna).expect("clean window");
            errs.push(result.estimate.position.distance(position) * 100.0);
        }
        by_condition.push(errs.iter().sum::<f64>() / errs.len() as f64);
    }
    let max = by_condition.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = by_condition.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        max < min + 8.0,
        "conditions should all sense alike: {by_condition:?}"
    );
}

/// Orientation is recovered modulo π with paper-like accuracy.
#[test]
fn orientation_recovery() {
    let scene = Scene::standard_2d();
    let prism = prism_for(&scene);
    let mut errors = Vec::new();
    for (i, alpha_deg) in (0..150).step_by(30).enumerate() {
        for rep in 0..4u64 {
            let alpha = f64::from(alpha_deg).to_radians();
            let tag = SimTag::with_seeded_diversity(1)
                .with_motion(Motion::planar_static(Vec2::new(0.4, 1.2), alpha));
            let survey = scene.survey(&tag, 200 + i as u64 * 10 + rep);
            let result = prism.sense(&survey.per_antenna).expect("clean window");
            errors.push(
                angle::dipole_distance(result.estimate.orientation, alpha).to_degrees(),
            );
        }
    }
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    assert!(mean < 25.0, "mean orientation error {mean}°");
}

/// Full material-identification loop: calibrate, train, identify at unseen
/// positions.
#[test]
fn material_identification_loop() {
    let scene = Scene::standard_2d();
    let prism = prism_for(&scene);
    let channel_count = scene.reader().plan.channel_count();
    let calib_pos = Vec2::new(0.5, 1.0);

    let bare = SimTag::with_seeded_diversity(5)
        .with_motion(Motion::planar_static(calib_pos, 0.0));
    let survey = scene.survey(&bare, 1);
    let observations: Vec<_> = scene
        .antenna_poses()
        .iter()
        .zip(&survey.per_antenna)
        .map(|(&p, r)| {
            rf_prism::core::model::extract_observation(
                p,
                r,
                &rf_prism::core::model::ExtractConfig::paper(),
            )
            .expect("calibration survey")
        })
        .collect();
    let calibration = DeviceCalibration::from_observations(&observations, calib_pos, 0.0);

    // Train on four easily separated classes at one position…
    let classes = [Material::Wood, Material::Metal, Material::Water, Material::EdibleOil];
    let mut train = Dataset::new(Material::CLASSES.len());
    for (ci, &m) in classes.iter().enumerate() {
        for rep in 0..8u64 {
            let tag = SimTag::with_seeded_diversity(5)
                .attached_to(m)
                .with_motion(Motion::planar_static(Vec2::new(0.2, 1.3), 0.0));
            let survey = scene.survey(&tag, 300 + ci as u64 * 20 + rep);
            let result = prism.sense(&survey.per_antenna).expect("clean window");
            train.push(
                result.material_features(&calibration, channel_count).to_vector(),
                m.class_index().unwrap(),
            );
        }
    }
    let identifier = MaterialIdentifier::train(&train, &ClassifierKind::paper_default());

    // …identify at a different position and orientation.
    let mut hits = 0;
    let mut total = 0;
    for (ci, &m) in classes.iter().enumerate() {
        for rep in 0..5u64 {
            let tag = SimTag::with_seeded_diversity(5)
                .attached_to(m)
                .with_motion(Motion::planar_static(Vec2::new(1.1, 2.0), 1.0));
            let survey = scene.survey(&tag, 600 + ci as u64 * 10 + rep);
            let result = prism.sense(&survey.per_antenna).expect("clean window");
            let feats = result.material_features(&calibration, channel_count);
            total += 1;
            if identifier.identify(&feats) == m {
                hits += 1;
            }
        }
    }
    assert!(
        hits as f64 / total as f64 > 0.8,
        "identification moved across the region: {hits}/{total}"
    );
}

/// The multipath environment hurts, and the suppression recovers most of
/// the damage (Fig. 12's shape).
#[test]
fn multipath_suppression_recovers_accuracy() {
    use rf_prism::core::model::ExtractConfig;
    use rf_prism::core::RfPrismConfig;
    let cluttered =
        Scene::standard_2d().with_environment(MultipathEnvironment::cluttered(3, 5));
    let with = prism_for(&cluttered);
    let without = prism_for(&cluttered).with_config(RfPrismConfig {
        extract: ExtractConfig { suppress_multipath: false, ..ExtractConfig::paper() },
        ..RfPrismConfig::paper()
    });

    let mut err_with = Vec::new();
    let mut err_without = Vec::new();
    for (i, position) in cluttered.region().grid(3, 3).enumerate() {
        let tag = SimTag::with_seeded_diversity(2)
            .with_motion(Motion::planar_static(position, 0.5));
        let survey = cluttered.survey(&tag, 700 + i as u64);
        if let Ok(r) = with.sense(&survey.per_antenna) {
            err_with.push(r.estimate.position.distance(position));
        }
        if let Ok(r) = without.sense(&survey.per_antenna) {
            err_without.push(r.estimate.position.distance(position));
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(
        mean(&err_with) < mean(&err_without),
        "suppression must help: {} vs {}",
        mean(&err_with),
        mean(&err_without)
    );
}

/// 3-D sensing works end to end (paper §VII future work; six antennas for
/// slope redundancy — see the `ablation_antennas_3d` bench).
#[test]
fn three_dimensional_sensing() {
    use rf_prism::core::solver3d::{solve_3d, Solver3DConfig};
    let scene = Scene::six_antenna_3d();
    let truth = Vec3::new(0.6, 1.5, 0.6);
    let dipole = Vec3::new(0.8, 0.1, 0.6).normalized();
    let tag = SimTag::with_seeded_diversity(9)
        .with_motion(Motion::Static { position: truth, dipole });
    let survey = scene.survey(&tag, 3);
    let observations: Vec<_> = scene
        .antenna_poses()
        .iter()
        .zip(&survey.per_antenna)
        .map(|(&p, r)| {
            rf_prism::core::model::extract_observation(
                p,
                r,
                &rf_prism::core::model::ExtractConfig::paper(),
            )
            .expect("usable")
        })
        .collect();
    let est = solve_3d(&observations, scene.region(), (0.0, 1.5), &Solver3DConfig::default())
        .expect("solvable");
    assert!(est.position.distance(truth) < 0.4, "3-D error {}", est.position.distance(truth));
}
