//! Classification metrics: accuracy and confusion matrices.
//!
//! The paper reports overall accuracy (Figs. 10, 12, 13, 17–20) and a
//! row-normalized 8×8 confusion matrix (Fig. 11); both are produced here.

use std::fmt;

/// Overall accuracy of `predicted` against `truth`.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn accuracy(truth: &[usize], predicted: &[usize]) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "length mismatch");
    assert!(!truth.is_empty(), "no samples");
    let hits = truth.iter().zip(predicted).filter(|(t, p)| t == p).count();
    hits as f64 / truth.len() as f64
}

/// A confusion matrix over `n` classes; `counts[t][p]` is the number of
/// samples of true class `t` predicted as class `p`.
///
/// # Example
///
/// ```
/// use rfp_ml::ConfusionMatrix;
/// let cm = ConfusionMatrix::from_predictions(2, &[0, 0, 1, 1], &[0, 1, 1, 1]);
/// assert_eq!(cm.count(0, 1), 1);
/// assert_eq!(cm.class_accuracy(1), Some(1.0));
/// assert!((cm.accuracy() - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    n: usize,
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// An empty matrix over `n` classes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one class");
        ConfusionMatrix { n, counts: vec![vec![0; n]; n] }
    }

    /// Builds a matrix from parallel truth/prediction slices.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or out-of-range labels.
    pub fn from_predictions(n: usize, truth: &[usize], predicted: &[usize]) -> Self {
        assert_eq!(truth.len(), predicted.len(), "length mismatch");
        let mut cm = ConfusionMatrix::new(n);
        for (&t, &p) in truth.iter().zip(predicted) {
            cm.record(t, p);
        }
        cm
    }

    /// Records one (truth, prediction) pair.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.n && predicted < self.n, "label out of range");
        self.counts[truth][predicted] += 1;
    }

    /// Merges another matrix into this one.
    ///
    /// # Panics
    ///
    /// Panics if the class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.n, other.n, "class count mismatch");
        for t in 0..self.n {
            for p in 0..self.n {
                self.counts[t][p] += other.counts[t][p];
            }
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n
    }

    /// Raw count for (truth, predicted).
    pub fn count(&self, truth: usize, predicted: usize) -> usize {
        self.counts[truth][predicted]
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|r| r.iter().sum::<usize>()).sum()
    }

    /// Overall accuracy; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: usize = (0..self.n).map(|i| self.counts[i][i]).sum();
        diag as f64 / total as f64
    }

    /// Recall of class `t` (diagonal over row sum), `None` when the class
    /// has no samples.
    pub fn class_accuracy(&self, t: usize) -> Option<f64> {
        let row: usize = self.counts[t].iter().sum();
        if row == 0 {
            None
        } else {
            Some(self.counts[t][t] as f64 / row as f64)
        }
    }

    /// Row-normalized matrix (each row sums to 1; empty rows stay zero) —
    /// the presentation of the paper's Fig. 11.
    pub fn normalized(&self) -> Vec<Vec<f64>> {
        self.counts
            .iter()
            .map(|row| {
                let s: usize = row.iter().sum();
                if s == 0 {
                    vec![0.0; self.n]
                } else {
                    row.iter().map(|&c| c as f64 / s as f64).collect()
                }
            })
            .collect()
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let norm = self.normalized();
        for row in &norm {
            for v in row {
                write!(f, "{v:5.2} ")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 2]), 1.0);
        assert_eq!(accuracy(&[0, 1], &[1, 1]), 0.5);
    }

    #[test]
    #[should_panic]
    fn accuracy_empty_panics() {
        let _ = accuracy(&[], &[]);
    }

    #[test]
    fn confusion_counts_and_accuracy() {
        let cm = ConfusionMatrix::from_predictions(3, &[0, 0, 1, 2, 2], &[0, 1, 1, 2, 0]);
        assert_eq!(cm.total(), 5);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(2, 0), 1);
        assert!((cm.accuracy() - 3.0 / 5.0).abs() < 1e-12);
        assert_eq!(cm.class_accuracy(1), Some(1.0));
        assert_eq!(cm.class_accuracy(0), Some(0.5));
    }

    #[test]
    fn normalized_rows_sum_to_one() {
        let cm = ConfusionMatrix::from_predictions(2, &[0, 0, 0, 1], &[0, 0, 1, 1]);
        let n = cm.normalized();
        for row in &n {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        assert!((n[0][0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_class_row_is_zero() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        assert_eq!(cm.class_accuracy(2), None);
        assert_eq!(cm.normalized()[2], vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn merge_adds_counts() {
        let a = ConfusionMatrix::from_predictions(2, &[0, 1], &[0, 1]);
        let mut b = ConfusionMatrix::from_predictions(2, &[0, 1], &[1, 1]);
        b.merge(&a);
        assert_eq!(b.total(), 4);
        assert_eq!(b.count(0, 0), 1);
        assert_eq!(b.count(0, 1), 1);
    }

    #[test]
    fn display_nonempty() {
        let cm = ConfusionMatrix::from_predictions(2, &[0, 1], &[0, 1]);
        assert!(!format!("{cm}").is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_range_record_panics() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(2, 0);
    }
}

/// Per-class precision / recall / F1 derived from a [`ConfusionMatrix`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassScores {
    /// Precision: of everything predicted as this class, how much was right.
    pub precision: f64,
    /// Recall: of everything truly this class, how much was found.
    pub recall: f64,
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub f1: f64,
}

impl ConfusionMatrix {
    /// Precision/recall/F1 for class `c`; `None` when the class never
    /// appears as either truth or prediction.
    pub fn class_scores(&self, c: usize) -> Option<ClassScores> {
        let truth_total: usize = (0..self.n_classes()).map(|p| self.count(c, p)).sum();
        let pred_total: usize = (0..self.n_classes()).map(|t| self.count(t, c)).sum();
        if truth_total == 0 && pred_total == 0 {
            return None;
        }
        let tp = self.count(c, c) as f64;
        let precision = if pred_total > 0 { tp / pred_total as f64 } else { 0.0 };
        let recall = if truth_total > 0 { tp / truth_total as f64 } else { 0.0 };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        Some(ClassScores { precision, recall, f1 })
    }

    /// Unweighted mean F1 over the classes that appear (macro-F1).
    pub fn macro_f1(&self) -> f64 {
        let scores: Vec<f64> = (0..self.n_classes())
            .filter_map(|c| self.class_scores(c).map(|s| s.f1))
            .collect();
        if scores.is_empty() {
            0.0
        } else {
            scores.iter().sum::<f64>() / scores.len() as f64
        }
    }
}

#[cfg(test)]
mod score_tests {
    use super::*;

    #[test]
    fn perfect_predictions_score_one() {
        let cm = ConfusionMatrix::from_predictions(3, &[0, 1, 2, 2], &[0, 1, 2, 2]);
        for c in 0..3 {
            let s = cm.class_scores(c).unwrap();
            assert_eq!(s.precision, 1.0);
            assert_eq!(s.recall, 1.0);
            assert_eq!(s.f1, 1.0);
        }
        assert_eq!(cm.macro_f1(), 1.0);
    }

    #[test]
    fn asymmetric_errors_split_precision_and_recall() {
        // Class 0: two true, one found (recall 0.5); one false positive
        // (precision 0.5).
        let cm = ConfusionMatrix::from_predictions(2, &[0, 0, 1, 1], &[0, 1, 0, 1]);
        let s = cm.class_scores(0).unwrap();
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert!((s.recall - 0.5).abs() < 1e-12);
        assert!((s.f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn absent_class_is_none_and_excluded_from_macro() {
        let cm = ConfusionMatrix::from_predictions(3, &[0, 1], &[0, 1]);
        assert!(cm.class_scores(2).is_none());
        assert_eq!(cm.macro_f1(), 1.0);
    }

    #[test]
    fn never_predicted_class_has_zero_precision_f1() {
        // Class 1 exists in truth but is never predicted.
        let cm = ConfusionMatrix::from_predictions(2, &[0, 1, 1], &[0, 0, 0]);
        let s = cm.class_scores(1).unwrap();
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn empty_matrix_macro_f1_zero() {
        let cm = ConfusionMatrix::new(4);
        assert_eq!(cm.macro_f1(), 0.0);
    }
}
