//! Batch sensing throughput: tags/second on a 256-tag scene at 1, 2, 4
//! and 8 workers.
//!
//! The per-tag disentangling solves are independent, so throughput should
//! scale with the worker count up to the machine's core count; the `jobs=1`
//! row doubles as the sequential baseline (it runs inline, no pool). On a
//! single-core container every row collapses to the same rate — the
//! speedup column is only meaningful on multicore hardware.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfp_bench::setup;
use rfp_sim::{Motion, Scene, SimTag};
use rfp_geom::Vec2;
use rfp_phys::Material;

const TAGS: usize = 256;

fn batch_throughput(c: &mut Criterion) {
    let scene = Scene::standard_2d();
    let prism = setup::prism_for(&scene);
    let materials = [Material::FreeSpace, Material::Wood, Material::Glass, Material::Water];
    let region = scene.region();
    let mut rng = StdRng::seed_from_u64(256);
    let tags: Vec<_> = (0..TAGS as u64)
        .map(|i| {
            let pos = Vec2::new(
                rng.gen_range(region.min().x..region.max().x),
                rng.gen_range(region.min().y..region.max().y),
            );
            let alpha = rng.gen_range(0.0..std::f64::consts::PI);
            let tag = SimTag::with_seeded_diversity(i)
                .attached_to(materials[(i % 4) as usize])
                .with_motion(Motion::planar_static(pos, alpha));
            scene.survey(&tag, i.wrapping_mul(0x9e37_79b9)).per_antenna
        })
        .collect();
    let cache = prism.batch_cache();

    let mut group = c.benchmark_group("batch_throughput_256_tags");
    group.throughput(Throughput::Elements(TAGS as u64));
    for jobs in [1usize, 2, 4, 8] {
        group.bench_function(format!("jobs_{jobs}"), |b| {
            b.iter(|| prism.sense_batch_with(&cache, &tags, jobs));
        });
    }
    group.finish();
}

criterion_group!(benches, batch_throughput);
criterion_main!(benches);
