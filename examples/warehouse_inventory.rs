//! Warehouse stock-take: one inventory round over a mixed population of
//! tagged items, sensed in bulk with [`InventorySensor`].
//!
//! Demonstrates the multi-tag path: the reader time-shares its read budget
//! among the tags (slotted-ALOHA efficiency), every tag still gets enough
//! channels for the disentangling, and the sensor pairs each tag with its
//! device calibration to identify what the item is made of.
//!
//! ```text
//! cargo run --release --example warehouse_inventory
//! ```

use rf_prism::core::material::ClassifierKind;
use rf_prism::core::model::{extract_observation, ExtractConfig};
use rf_prism::core::{InventorySensor, ItemOutcome, MaterialIdentifier};
use rf_prism::ml::dataset::Dataset;
use rf_prism::prelude::*;

fn main() {
    // A stock-take round can afford a slower, higher-redundancy inventory:
    // run the reader at 24 reads per channel so six tags still get usable
    // per-tag budgets after ALOHA sharing.
    let scene = Scene::standard_2d()
        .with_reader(ReaderConfig::impinj_r420().with_reads_per_channel(24));
    let prism = RfPrism::new(scene.antenna_poses(), scene.reader().plan)
        .with_region(scene.region());
    let channel_count = scene.reader().plan.channel_count();
    let calib_pose = (Vec2::new(0.5, 1.0), 0.0);

    // ---- Provision six tags: calibrate each once, bare. -----------------
    let mut calibrations = CalibrationDb::new();
    for id in 1..=6u64 {
        let bare = SimTag::with_seeded_diversity(id)
            .with_motion(Motion::planar_static(calib_pose.0, calib_pose.1));
        let survey = scene.survey(&bare, 900 + id);
        let obs: Vec<_> = scene
            .antenna_poses()
            .iter()
            .zip(&survey.per_antenna)
            .map(|(&p, r)| {
                extract_observation(p, r, &ExtractConfig::paper()).expect("calibration")
            })
            .collect();
        calibrations.insert(
            id,
            DeviceCalibration::from_observations(&obs, calib_pose.0, calib_pose.1),
        );
    }

    // ---- Train the material identifier on reference measurements. -------
    let mut train = Dataset::new(Material::CLASSES.len());
    for (ci, &material) in Material::CLASSES.iter().enumerate() {
        for rep in 0..8u64 {
            let id = 1 + (rep % 6);
            let pos = scene.region().grid(3, 3).nth((ci + rep as usize) % 9).unwrap();
            let tag = SimTag::with_seeded_diversity(id)
                .attached_to(material)
                .with_motion(Motion::planar_static(pos, 0.0));
            let survey = scene.survey(&tag, 5_000 + ci as u64 * 10 + rep);
            if let Ok(result) = prism.sense(&survey.per_antenna) {
                let feats = result
                    .material_features(calibrations.get(id).unwrap(), channel_count);
                train.push(feats.to_vector(), ci);
            }
        }
    }
    let identifier = MaterialIdentifier::train(&train, &ClassifierKind::paper_default());
    let sensor = InventorySensor::new(prism)
        .with_calibrations(calibrations)
        .with_identifier(identifier);

    // ---- Today's stock: six items on the floor, one of them in motion. --
    let stock = [
        (1u64, Material::Wood, Vec2::new(-0.3, 0.9), 0.1),
        (2, Material::Metal, Vec2::new(0.2, 1.3), 0.8),
        (3, Material::Water, Vec2::new(0.7, 1.7), 0.4),
        (4, Material::EdibleOil, Vec2::new(1.2, 2.1), 1.2),
        (5, Material::Glass, Vec2::new(0.0, 2.2), 0.0),
        (6, Material::Alcohol, Vec2::new(1.0, 1.0), 0.6),
    ];
    let mut tags: Vec<SimTag> = stock
        .iter()
        .map(|&(id, m, p, a)| {
            SimTag::with_seeded_diversity(id)
                .attached_to(m)
                .with_motion(Motion::planar_static(p, a))
        })
        .collect();
    // A forklift is carrying item 4 right now.
    tags[3] = tags[3].with_motion(Motion::planar_linear(
        Vec2::new(1.2, 2.1),
        Vec2::new(-0.04, -0.03),
        1.2,
    ));

    let round = scene.survey_inventory(&tags, 77);
    println!(
        "inventory round: {} tags, {} reads/channel each (budget shared)\n",
        tags.len(),
        round.reads_per_tag
    );
    let per_tag: Vec<(u64, Vec<Vec<_>>)> = round
        .surveys
        .into_iter()
        .map(|(id, s)| (id, s.per_antenna))
        .collect();

    let mut located = 0;
    let mut identified = 0;
    for outcome in sensor.take_stock(&per_tag) {
        match outcome {
            ItemOutcome::Report(report) => {
                let truth = stock.iter().find(|s| s.0 == report.tag_id).unwrap();
                let err_cm = report.estimate.position.distance(truth.2) * 100.0;
                let mat = report
                    .material
                    .map(|m| m.label().to_string())
                    .unwrap_or_else(|| "?".into());
                let hit = report.material == Some(truth.1);
                located += 1;
                identified += usize::from(hit);
                println!(
                    "  tag {}: ({:+.2}, {:.2}) m, err {err_cm:4.1} cm, {:>7} {}  [truth: {}]",
                    report.tag_id,
                    report.estimate.position.x,
                    report.estimate.position.y,
                    mat,
                    if hit { "✓" } else { "✗" },
                    truth.1
                );
            }
            ItemOutcome::Failed { tag_id, error } => {
                println!("  tag {tag_id}: not sensed this round — {error}");
            }
        }
    }
    println!();
    println!(
        "stock-take: {located}/{} items located, {identified} materials confirmed; \
         items in motion are retried next round",
        stock.len()
    );
}
