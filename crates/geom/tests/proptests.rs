//! Property-based tests for the geometry/angle primitives.

use proptest::prelude::*;
use rfp_geom::{angle, AntennaPose, Region2, Vec2, Vec3};
use std::f64::consts::{PI, TAU};

fn finite_angle() -> impl Strategy<Value = f64> {
    -1e6f64..1e6f64
}

proptest! {
    #[test]
    fn wrap_tau_is_idempotent_and_in_range(theta in finite_angle()) {
        let w = angle::wrap_tau(theta);
        prop_assert!((0.0..TAU).contains(&w));
        prop_assert!((angle::wrap_tau(w) - w).abs() < 1e-12);
        // Same point on the circle.
        let turns = (theta - w) / TAU;
        prop_assert!((turns - turns.round()).abs() < 1e-6);
    }

    #[test]
    fn wrap_pi_in_range_and_equivalent(theta in finite_angle()) {
        let w = angle::wrap_pi(theta);
        prop_assert!(w > -PI - 1e-12 && w <= PI + 1e-12);
        prop_assert!(angle::distance(w, theta) < 1e-6);
    }

    #[test]
    fn angular_distance_is_a_metric(a in finite_angle(), b in finite_angle(), c in finite_angle()) {
        let dab = angle::distance(a, b);
        let dba = angle::distance(b, a);
        prop_assert!((dab - dba).abs() < 1e-9, "symmetry");
        prop_assert!(dab <= PI + 1e-12, "bounded");
        prop_assert!(angle::distance(a, a) < 1e-12, "identity");
        // Triangle inequality.
        prop_assert!(dab <= angle::distance(a, c) + angle::distance(c, b) + 1e-6);
    }

    #[test]
    fn dipole_distance_pi_symmetric(a in finite_angle(), b in finite_angle()) {
        let d1 = angle::dipole_distance(a, b);
        let d2 = angle::dipole_distance(a + PI, b);
        let d3 = angle::dipole_distance(a, b + PI);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!((d1 - d3).abs() < 1e-9);
        prop_assert!(d1 <= PI / 2.0 + 1e-12);
    }

    #[test]
    fn unwrap_recovers_any_gentle_line(slope in -1.0f64..1.0, intercept in finite_angle()) {
        // Increments below π are recoverable exactly up to a global 2π k.
        let truth: Vec<f64> = (0..60).map(|i| slope * i as f64 + intercept).collect();
        let wrapped: Vec<f64> = truth.iter().map(|&p| angle::wrap_tau(p)).collect();
        let un = angle::unwrapped(&wrapped);
        let offset = un[0] - truth[0];
        for (u, t) in un.iter().zip(&truth) {
            prop_assert!((u - t - offset).abs() < 1e-9);
        }
        let turns = offset / TAU;
        prop_assert!((turns - turns.round()).abs() < 1e-9);
    }

    #[test]
    fn circular_mean_of_tight_cluster(center in finite_angle(), spread in 0.0f64..0.3) {
        let angles: Vec<f64> = (0..10)
            .map(|i| center + spread * ((i as f64 / 9.0) - 0.5))
            .collect();
        let m = angle::circular_mean(angles.iter().copied()).unwrap();
        prop_assert!(angle::distance(m, center) < spread / 2.0 + 1e-9);
    }

    #[test]
    fn rotation_preserves_norm_and_angle_addition(
        theta in -10.0f64..10.0,
        x in -5.0f64..5.0,
        y in -5.0f64..5.0,
    ) {
        prop_assume!(x.hypot(y) > 1e-6);
        let v = Vec2::new(x, y);
        let r = v.rotated(theta);
        prop_assert!((r.norm() - v.norm()).abs() < 1e-9);
        prop_assert!(angle::distance(r.angle(), v.angle() + theta) < 1e-9);
    }

    #[test]
    fn rodrigues_preserves_norm(
        theta in -10.0f64..10.0,
        vx in -2.0f64..2.0, vy in -2.0f64..2.0, vz in -2.0f64..2.0,
        ax in -1.0f64..1.0, ay in -1.0f64..1.0, az in -1.0f64..1.0,
    ) {
        prop_assume!(Vec3::new(ax, ay, az).norm() > 1e-3);
        let axis = Vec3::new(ax, ay, az).normalized();
        let v = Vec3::new(vx, vy, vz);
        let r = v.rotated_about(axis, theta);
        prop_assert!((r.norm() - v.norm()).abs() < 1e-9);
        // Component along the axis is invariant.
        prop_assert!((r.dot(axis) - v.dot(axis)).abs() < 1e-9);
    }

    #[test]
    fn antenna_frames_always_orthonormal(
        px in -3.0f64..3.0, py in -3.0f64..3.0, pz in 0.0f64..3.0,
        tx in -3.0f64..3.0, ty in -3.0f64..3.0, tz in 0.0f64..3.0,
        roll in -10.0f64..10.0,
    ) {
        let p = Vec3::new(px, py, pz);
        let t = Vec3::new(tx, ty, tz);
        prop_assume!(p.distance(t) > 1e-3);
        let pose = AntennaPose::looking_at(p, t, roll);
        prop_assert!((pose.u().norm() - 1.0).abs() < 1e-9);
        prop_assert!((pose.v().norm() - 1.0).abs() < 1e-9);
        prop_assert!(pose.u().dot(pose.v()).abs() < 1e-9);
        prop_assert!(pose.u().cross(pose.v()).distance(pose.boresight()) < 1e-9);
    }

    #[test]
    fn region_grid_points_always_inside(
        x0 in -5.0f64..5.0, y0 in -5.0f64..5.0,
        w in 0.1f64..10.0, h in 0.1f64..10.0,
        nx in 1usize..12, ny in 1usize..12,
    ) {
        let r = Region2::new(Vec2::new(x0, y0), Vec2::new(x0 + w, y0 + h));
        let pts: Vec<Vec2> = r.grid(nx, ny).collect();
        prop_assert_eq!(pts.len(), nx * ny);
        prop_assert!(pts.iter().all(|&p| r.contains(p)));
        // Clamp is a projection: idempotent and inside.
        let q = Vec2::new(x0 - 1.0, y0 + h + 2.0);
        let c = r.clamp(q);
        prop_assert!(r.contains(c));
        prop_assert_eq!(r.clamp(c), c);
    }
}
