//! Simulated tags: electrical diversity + kinematics + attached material.

use crate::motion::Motion;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfp_geom::Vec2;
use rfp_phys::{Material, TagElectrical};

/// A simulated EPC Gen2 tag.
///
/// Combines the electrical model (manufacturing diversity + attached
/// material, from `rfp-phys`) with a [`Motion`] and an id used as the
/// calibration-database key.
///
/// # Example
///
/// ```
/// use rfp_geom::Vec2;
/// use rfp_phys::Material;
/// use rfp_sim::{Motion, SimTag};
///
/// let tag = SimTag::with_seeded_diversity(1)
///     .attached_to(Material::Water)
///     .with_motion(Motion::planar_static(Vec2::new(0.5, 1.0), 0.0));
/// assert_eq!(tag.material(), Material::Water);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimTag {
    id: u64,
    electrical: TagElectrical,
    motion: Motion,
}

impl SimTag {
    /// A tag with nominal electronics (no manufacturing diversity), placed
    /// at the origin until a motion is set.
    pub fn nominal(id: u64) -> Self {
        SimTag {
            id,
            electrical: TagElectrical::nominal(),
            motion: Motion::planar_static(Vec2::ZERO, 0.0),
        }
    }

    /// A tag whose manufacturing diversity (resonance shift ±3 MHz, Q scale
    /// 0.85–1.15, modulator phase offset 0–2π, group delay ±2 ns) is drawn
    /// deterministically
    /// from `seed` — the same seed always yields the same physical tag, so
    /// calibration-then-measure workflows see a consistent device.
    pub fn with_seeded_diversity(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7467_4449);
        let delta_f0 = rng.gen_range(-3.0e6..3.0e6);
        let q_scale = rng.gen_range(0.85..1.15);
        let base_phase = rng.gen_range(0.0..std::f64::consts::TAU);
        let delay = rfp_phys::tag::NOMINAL_GROUP_DELAY_S + rng.gen_range(-2.0e-9..2.0e-9);
        SimTag {
            id: seed,
            electrical: TagElectrical::with_manufacturing(delta_f0, q_scale, base_phase)
                .with_group_delay(delay),
            motion: Motion::planar_static(Vec2::ZERO, 0.0),
        }
    }

    /// Attaches the tag to a target material (returns a modified copy).
    pub fn attached_to(&self, material: Material) -> Self {
        SimTag { electrical: self.electrical.with_material(material), ..self.clone() }
    }

    /// Sets the tag's motion (returns a modified copy).
    pub fn with_motion(&self, motion: Motion) -> Self {
        SimTag { motion, ..self.clone() }
    }

    /// Tag identifier (EPC stand-in; used as the calibration DB key).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Electrical model.
    pub fn electrical(&self) -> &TagElectrical {
        &self.electrical
    }

    /// Attached material.
    pub fn material(&self) -> Material {
        self.electrical.material()
    }

    /// Kinematics.
    pub fn motion(&self) -> &Motion {
        &self.motion
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_diversity_is_deterministic() {
        let a = SimTag::with_seeded_diversity(5);
        let b = SimTag::with_seeded_diversity(5);
        let c = SimTag::with_seeded_diversity(6);
        assert_eq!(a, b);
        assert_ne!(a.electrical(), c.electrical());
    }

    #[test]
    fn attaching_material_keeps_diversity() {
        let bare = SimTag::with_seeded_diversity(9);
        let loaded = bare.attached_to(Material::Metal);
        assert_eq!(loaded.material(), Material::Metal);
        assert_eq!(
            bare.electrical().resonance_hz(),
            loaded.electrical().resonance_hz()
        );
    }

    #[test]
    fn nominal_tag_is_free_space() {
        let t = SimTag::nominal(1);
        assert_eq!(t.material(), Material::FreeSpace);
        assert_eq!(t.id(), 1);
    }

    #[test]
    fn diversity_spread_is_physical() {
        for seed in 0..50 {
            let t = SimTag::with_seeded_diversity(seed);
            let f0 = t.electrical().resonance_hz();
            assert!((912.0e6..=918.0e6).contains(&f0), "seed {seed}: f0 {f0}");
        }
    }
}
