//! COTS RFID testbed simulator for RF-Prism.
//!
//! The paper evaluates on an ImpinJ Speedway R420 reader, three Laird
//! circularly-polarized antennas and Alien EPC Gen2 tags. Reproducing that
//! hardware is impossible in software, so this crate builds the closest
//! synthetic equivalent that exercises the same code paths: a reader model
//! that hops the FCC channel plan and reports `(channel, phase, RSSI,
//! timestamp)` tuples with all the artifacts the real reader has —
//!
//! * thermal phase/RSSI noise and per-channel multi-read,
//! * 12-bit phase quantization and random π jumps (ImpinJ behaviour),
//! * per-antenna hardware phase offsets (`θ_reader(Aⁱ)`, paper §IV-C),
//! * frequency-selective multipath from discrete scatterers (§V-D),
//! * tag mobility during the hop sequence (§V-C),
//! * dropped reads below the sensitivity floor.
//!
//! The clean phase itself comes from the shared forward models in
//! [`rfp_phys`] — the simulator only adds the corruption, so the
//! disentangler in `rfp-core` is inverting real physics, not a lookup
//! table.
//!
//! # Example: one hop survey of a static tag
//!
//! ```
//! use rfp_geom::Vec2;
//! use rfp_phys::Material;
//! use rfp_sim::{Motion, Scene, SimTag};
//!
//! let scene = Scene::standard_2d();
//! let tag = SimTag::with_seeded_diversity(7)
//!     .attached_to(Material::Glass)
//!     .with_motion(Motion::planar_static(Vec2::new(0.3, 1.5), 0.6));
//! let survey = scene.survey(&tag, 42);
//! assert_eq!(survey.per_antenna.len(), 3);
//! assert!(survey.per_antenna[0].len() > 100); // 50 channels × reads
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod antenna;
pub mod interference;
pub mod inventory;
pub mod measure;
pub mod motion;
pub mod multipath;
pub mod noise;
pub mod reader;
pub mod scene;
pub mod stream;
pub mod tag;

pub use antenna::Antenna;
pub use interference::InterferenceModel;
pub use inventory::InventoryRound;
pub use measure::HopSurvey;
pub use motion::Motion;
pub use multipath::{MultipathEnvironment, Scatterer};
pub use noise::NoiseModel;
pub use reader::ReaderConfig;
pub use scene::Scene;
pub use stream::{stream_rounds, StreamRound};
pub use tag::SimTag;
