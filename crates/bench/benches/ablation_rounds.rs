//! Ablation: sensing from multiple hop rounds.
//!
//! One R420 hop round takes ~10 s (paper §VI-C); applications that can
//! afford several rounds per decision average the per-round line
//! parameters before solving. Phase noise shrinks ~1/√K; the floor left
//! over is the systematic part (device-phase curvature, residual
//! multipath) that averaging cannot touch.

use rfp_bench::{report, setup};
use rfp_geom::{angle, Vec2};
use rfp_sim::{Motion, Scene, SimTag};

fn main() {
    report::header("Ablation", "accuracy vs number of averaged hop rounds");
    let scene = Scene::standard_2d();
    let prism = setup::prism_for(&scene);

    println!("{:>8} {:>14} {:>14} {:>12}", "rounds", "loc error", "orient error", "time cost");
    let positions: Vec<Vec2> = scene.region().grid(3, 3).collect();
    let mut results = Vec::new();
    for &k in &[1usize, 2, 4, 8] {
        let mut pos_err = Vec::new();
        let mut orient_err = Vec::new();
        for (pi, &position) in positions.iter().enumerate() {
            for trial in 0..4u64 {
                let alpha = 0.3 + 0.2 * trial as f64;
                let tag = SimTag::with_seeded_diversity(1 + pi as u64)
                    .with_motion(Motion::planar_static(position, alpha));
                let rounds: Vec<_> = (0..k as u64)
                    .map(|r| {
                        scene
                            .survey(&tag, 40_000 + pi as u64 * 100 + trial * 10 + r)
                            .per_antenna
                    })
                    .collect();
                if let Ok(result) = prism.sense_rounds(&rounds) {
                    pos_err.push(result.estimate.position.distance(position) * 100.0);
                    orient_err.push(
                        angle::dipole_distance(result.estimate.orientation, alpha)
                            .to_degrees(),
                    );
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "{k:>8} {:>14} {:>14} {:>11}s",
            report::cm(mean(&pos_err)),
            report::deg(mean(&orient_err)),
            k * 10
        );
        results.push((k, mean(&pos_err)));
    }
    println!();
    println!("the reader needs ~10 s per round, so averaging trades latency for");
    println!("accuracy; the gain flattens once systematic error dominates.");
    assert!(
        results.last().unwrap().1 < results[0].1,
        "averaging must help: {results:?}"
    );
}
