//! Soft-margin SVM trained with simplified SMO.
//!
//! The paper's middle classifier (83.5 %, Fig. 13). Binary machines are
//! trained with John Platt's simplified Sequential Minimal Optimization and
//! combined one-vs-one with majority voting for the 8-class material task.
//! Both a linear and an RBF kernel are provided; the paper notes SVM
//! performance "varies with different kernel functions", which the
//! classifier-comparison bench reproduces by sweeping both.

use crate::dataset::Dataset;
use crate::Classifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SVM kernel functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Inner product `x·y`.
    Linear,
    /// Gaussian RBF `exp(−γ ‖x−y‖²)`.
    Rbf {
        /// Kernel width γ.
        gamma: f64,
    },
}

impl Kernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            Kernel::Linear => a.iter().zip(b).map(|(x, y)| x * y).sum(),
            Kernel::Rbf { gamma } => {
                let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
                (-gamma * d2).exp()
            }
        }
    }
}

/// Hyper-parameters for SVM training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmConfig {
    /// Soft-margin penalty C.
    pub c: f64,
    /// Kernel.
    pub kernel: Kernel,
    /// KKT violation tolerance.
    pub tolerance: f64,
    /// Number of full passes without a change before declaring convergence.
    pub max_passes: usize,
    /// Hard cap on optimization sweeps (guards worst-case inputs).
    pub max_iterations: usize,
    /// RNG seed for the SMO partner choice.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            c: 1.0,
            kernel: Kernel::Rbf { gamma: 0.05 },
            tolerance: 1e-3,
            max_passes: 5,
            max_iterations: 200,
            seed: 0x5eed,
        }
    }
}

/// A binary soft-margin SVM (labels internally ±1).
#[derive(Debug, Clone)]
struct BinarySvm {
    support_vectors: Vec<Vec<f64>>,
    coefficients: Vec<f64>, // αᵢ yᵢ for each support vector
    bias: f64,
    kernel: Kernel,
}

impl BinarySvm {
    /// Trains on `features` with ±1 `targets` using simplified SMO.
    fn fit(features: &[Vec<f64>], targets: &[f64], config: &SvmConfig) -> Self {
        let n = features.len();
        debug_assert!(n >= 2);
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Precompute the kernel matrix (n is small in this workspace).
        let mut k = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in i..n {
                let v = config.kernel.eval(&features[i], &features[j]);
                k[i][j] = v;
                k[j][i] = v;
            }
        }

        let mut alpha = vec![0.0f64; n];
        let mut bias = 0.0f64;
        let f = |alpha: &[f64], bias: f64, k: &[Vec<f64>], idx: usize| -> f64 {
            let mut s = bias;
            for i in 0..n {
                if alpha[i] > 0.0 {
                    s += alpha[i] * targets[i] * k[i][idx];
                }
            }
            s
        };

        let mut passes = 0usize;
        let mut iterations = 0usize;
        while passes < config.max_passes && iterations < config.max_iterations {
            iterations += 1;
            let mut changed = 0usize;
            for i in 0..n {
                let e_i = f(&alpha, bias, &k, i) - targets[i];
                let r = targets[i] * e_i;
                if (r < -config.tolerance && alpha[i] < config.c)
                    || (r > config.tolerance && alpha[i] > 0.0)
                {
                    let mut j = rng.gen_range(0..n - 1);
                    if j >= i {
                        j += 1;
                    }
                    let e_j = f(&alpha, bias, &k, j) - targets[j];
                    let (a_i_old, a_j_old) = (alpha[i], alpha[j]);
                    let (lo, hi) = if (targets[i] - targets[j]).abs() > 1e-12 {
                        (
                            (alpha[j] - alpha[i]).max(0.0),
                            (config.c + alpha[j] - alpha[i]).min(config.c),
                        )
                    } else {
                        (
                            (alpha[i] + alpha[j] - config.c).max(0.0),
                            (alpha[i] + alpha[j]).min(config.c),
                        )
                    };
                    if hi - lo < 1e-12 {
                        continue;
                    }
                    let eta = 2.0 * k[i][j] - k[i][i] - k[j][j];
                    if eta >= 0.0 {
                        continue;
                    }
                    let mut a_j = a_j_old - targets[j] * (e_i - e_j) / eta;
                    a_j = a_j.clamp(lo, hi);
                    if (a_j - a_j_old).abs() < 1e-7 {
                        continue;
                    }
                    let a_i = a_i_old + targets[i] * targets[j] * (a_j_old - a_j);
                    alpha[i] = a_i;
                    alpha[j] = a_j;
                    let b1 = bias
                        - e_i
                        - targets[i] * (a_i - a_i_old) * k[i][i]
                        - targets[j] * (a_j - a_j_old) * k[i][j];
                    let b2 = bias
                        - e_j
                        - targets[i] * (a_i - a_i_old) * k[i][j]
                        - targets[j] * (a_j - a_j_old) * k[j][j];
                    bias = if a_i > 0.0 && a_i < config.c {
                        b1
                    } else if a_j > 0.0 && a_j < config.c {
                        b2
                    } else {
                        (b1 + b2) / 2.0
                    };
                    changed += 1;
                }
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }

        // Keep only the support vectors.
        let mut support_vectors = Vec::new();
        let mut coefficients = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-9 {
                support_vectors.push(features[i].clone());
                coefficients.push(alpha[i] * targets[i]);
            }
        }
        BinarySvm { support_vectors, coefficients, bias, kernel: config.kernel }
    }

    /// Decision value `f(x)`; positive → class +1.
    fn decision(&self, x: &[f64]) -> f64 {
        let mut s = self.bias;
        for (sv, c) in self.support_vectors.iter().zip(&self.coefficients) {
            s += c * self.kernel.eval(sv, x);
        }
        s
    }
}

/// One-vs-one multiclass SVM.
///
/// # Example
///
/// ```
/// use rfp_ml::{Dataset, svm::{SvmClassifier, SvmConfig, Kernel}, Classifier};
/// let mut ds = Dataset::new(2);
/// for i in 0..10 {
///     ds.push(vec![i as f64 / 10.0], 0);
///     ds.push(vec![2.0 + i as f64 / 10.0], 1);
/// }
/// let cfg = SvmConfig { kernel: Kernel::Linear, ..Default::default() };
/// let svm = SvmClassifier::fit(&ds, &cfg);
/// assert_eq!(svm.predict(&[0.2]), 0);
/// assert_eq!(svm.predict(&[2.7]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SvmClassifier {
    machines: Vec<(usize, usize, BinarySvm)>,
    n_classes: usize,
    n_features: usize,
}

impl SvmClassifier {
    /// Trains `n·(n−1)/2` pairwise machines.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty or has fewer than two distinct classes
    /// with at least one sample each.
    pub fn fit(train: &Dataset, config: &SvmConfig) -> Self {
        assert!(!train.is_empty(), "empty training set");
        let n_classes = train.n_classes();
        let counts = train.class_counts();
        let present: Vec<usize> =
            (0..n_classes).filter(|&c| counts[c] > 0).collect();
        assert!(present.len() >= 2, "need at least two classes with samples");

        let mut machines = Vec::new();
        for (ai, &a) in present.iter().enumerate() {
            for &b in &present[ai + 1..] {
                let mut feats = Vec::new();
                let mut targs = Vec::new();
                for i in 0..train.len() {
                    let (f, l) = train.sample(i);
                    if l == a {
                        feats.push(f.to_vec());
                        targs.push(1.0);
                    } else if l == b {
                        feats.push(f.to_vec());
                        targs.push(-1.0);
                    }
                }
                machines.push((a, b, BinarySvm::fit(&feats, &targs, config)));
            }
        }
        SvmClassifier {
            machines,
            n_classes,
            n_features: train.feature_dim().expect("nonempty"),
        }
    }

    /// Number of pairwise machines trained.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }
}

impl Classifier for SvmClassifier {
    fn predict(&self, features: &[f64]) -> usize {
        assert_eq!(features.len(), self.n_features, "feature dimension mismatch");
        let mut votes = vec![0usize; self.n_classes];
        let mut margins = vec![0.0f64; self.n_classes];
        for (a, b, m) in &self.machines {
            let d = m.decision(features);
            if d >= 0.0 {
                votes[*a] += 1;
                margins[*a] += d;
            } else {
                votes[*b] += 1;
                margins[*b] -= d;
            }
        }
        // Majority vote; ties break by accumulated margin.
        (0..self.n_classes)
            .max_by(|&x, &y| {
                votes[x]
                    .cmp(&votes[y])
                    .then(margins[x].partial_cmp(&margins[y]).expect("finite"))
            })
            .expect("at least one class")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(centres: &[(f64, f64)], n: usize, spread: f64, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(centres.len());
        for (c, &(cx, cy)) in centres.iter().enumerate() {
            for _ in 0..n {
                ds.push(
                    vec![
                        cx + rng.gen_range(-spread..spread),
                        cy + rng.gen_range(-spread..spread),
                    ],
                    c,
                );
            }
        }
        ds
    }

    #[test]
    fn linear_kernel_separates_blobs() {
        let ds = blobs(&[(0.0, 0.0), (4.0, 4.0)], 30, 0.8, 1);
        let cfg = SvmConfig { kernel: Kernel::Linear, ..Default::default() };
        let svm = SvmClassifier::fit(&ds, &cfg);
        assert_eq!(svm.predict(&[0.0, 0.0]), 0);
        assert_eq!(svm.predict(&[4.0, 4.0]), 1);
        assert_eq!(svm.machine_count(), 1);
    }

    #[test]
    fn rbf_kernel_handles_nonlinear_boundary() {
        // Class 0 inside a ring of class 1: linearly inseparable.
        let mut rng = StdRng::seed_from_u64(2);
        let mut ds = Dataset::new(2);
        for _ in 0..60 {
            let a = rng.gen_range(0.0..std::f64::consts::TAU);
            let r_in = rng.gen_range(0.0..0.8);
            ds.push(vec![r_in * a.cos(), r_in * a.sin()], 0);
            let r_out = rng.gen_range(2.0..2.6);
            ds.push(vec![r_out * a.cos(), r_out * a.sin()], 1);
        }
        let cfg = SvmConfig { kernel: Kernel::Rbf { gamma: 1.0 }, ..Default::default() };
        let svm = SvmClassifier::fit(&ds, &cfg);
        assert_eq!(svm.predict(&[0.0, 0.0]), 0);
        assert_eq!(svm.predict(&[2.3, 0.0]), 1);
        assert_eq!(svm.predict(&[0.0, -2.2]), 1);
    }

    #[test]
    fn multiclass_one_vs_one_votes() {
        let ds = blobs(&[(0.0, 0.0), (5.0, 0.0), (0.0, 5.0)], 25, 0.7, 3);
        let svm = SvmClassifier::fit(&ds, &Default::default());
        assert_eq!(svm.machine_count(), 3);
        assert_eq!(svm.predict(&[0.0, 0.0]), 0);
        assert_eq!(svm.predict(&[5.0, 0.0]), 1);
        assert_eq!(svm.predict(&[0.0, 5.0]), 2);
    }

    #[test]
    fn generalizes_to_test_split() {
        let ds = blobs(&[(0.0, 0.0), (3.5, 3.5)], 60, 1.0, 4);
        let (train, test) = ds.stratified_split(0.5, 9);
        let svm = SvmClassifier::fit(&train, &Default::default());
        let preds = svm.predict_batch(test.features());
        let acc = crate::metrics::accuracy(test.labels(), &preds);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = blobs(&[(0.0, 0.0), (3.0, 3.0)], 20, 0.5, 5);
        let a = SvmClassifier::fit(&ds, &Default::default());
        let b = SvmClassifier::fit(&ds, &Default::default());
        let q = vec![vec![1.5, 1.5], vec![0.1, 0.4], vec![2.9, 2.6]];
        assert_eq!(a.predict_batch(&q), b.predict_batch(&q));
    }

    #[test]
    fn kernel_values() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let r = Kernel::Rbf { gamma: 0.5 }.eval(&[0.0], &[2.0]);
        assert!((r - (-2.0f64).exp()).abs() < 1e-12);
        assert_eq!(Kernel::Rbf { gamma: 0.5 }.eval(&[1.0], &[1.0]), 1.0);
    }

    #[test]
    #[should_panic]
    fn single_class_panics() {
        let mut ds = Dataset::new(2);
        ds.push(vec![0.0], 0);
        ds.push(vec![1.0], 0);
        let _ = SvmClassifier::fit(&ds, &Default::default());
    }
}
