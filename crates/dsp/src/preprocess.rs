//! Raw-read pre-processing: π-jump correction, per-channel aggregation and
//! cross-channel unwrapping.
//!
//! A COTS reader reports, for every successful inventory of a tag, the
//! channel it was read on, a phase in `[0, 2π)` and an RSSI. Three artifacts
//! must be repaired before the readings can be fitted to a line
//! (the paper's *signal pre-processing module*):
//!
//! 1. **π jumps** — ImpinJ-class readers resolve the backscatter phase only
//!    up to π; a random half of the reads come back shifted by exactly π.
//!    Within one channel the true phase is constant, so the reads form two
//!    antipodal clusters. We recover the channel phase with the
//!    double-angle trick (doubling maps both clusters onto one), then pick
//!    the cluster that holds the **majority** of reads to resolve which of
//!    `θ` / `θ+π` is the true value. This keeps the *absolute* phase
//!    correct, which matters because the line intercept carries the
//!    orientation information.
//! 2. **Per-channel noise** — multiple reads per 200 ms dwell are averaged
//!    (circularly) to beat down thermal phase noise.
//! 3. **2π folding** — across channels the phase walks many turns; standard
//!    unwrapping restores a continuous line (channel spacing is 500 kHz, so
//!    the true inter-channel increment is ≪ π for any realistic geometry).

use crate::workspace::FrontEndWorkspace;
use rfp_geom::angle;

/// One raw read report from the reader.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawRead {
    /// Channel index into the session's frequency plan.
    pub channel: usize,
    /// Centre frequency of that channel, Hz.
    pub frequency_hz: f64,
    /// Reported phase, wrapped into `[0, 2π)` (may contain a π jump).
    pub phase: f64,
    /// Reported RSSI, dBm.
    pub rssi_dbm: f64,
    /// Read timestamp, seconds since the start of the hop sequence.
    pub timestamp_s: f64,
}

/// Aggregated, corrected observation for one channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelObservation {
    /// Channel index.
    pub channel: usize,
    /// Centre frequency, Hz.
    pub frequency_hz: f64,
    /// Unwrapped phase (continuous across channels), radians.
    pub phase: f64,
    /// Mean RSSI over the channel's reads, dBm.
    pub rssi_dbm: f64,
    /// Number of raw reads aggregated.
    pub read_count: usize,
    /// Circular spread of the (π-corrected) reads, radians — a per-channel
    /// quality indicator.
    pub phase_spread: f64,
}

/// Configuration for [`preprocess_reads`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreprocessConfig {
    /// Whether to run π-jump correction (on for COTS-reader data).
    pub correct_pi_jumps: bool,
    /// Channels with fewer reads than this are dropped.
    pub min_reads_per_channel: usize,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig { correct_pi_jumps: true, min_reads_per_channel: 1 }
    }
}

/// Errors from [`preprocess_reads`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreprocessError {
    /// No channel had enough reads.
    NoUsableChannels,
}

impl std::fmt::Display for PreprocessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PreprocessError::NoUsableChannels => {
                write!(f, "no channel had enough reads to aggregate")
            }
        }
    }
}

impl std::error::Error for PreprocessError {}

/// Runs the full pre-processing pipeline on one antenna's raw reads and
/// returns per-channel observations sorted by frequency, with phases
/// unwrapped across channels.
///
/// # Errors
///
/// Returns [`PreprocessError::NoUsableChannels`] when every channel has
/// fewer than `config.min_reads_per_channel` reads.
///
/// # Example
///
/// ```
/// use rfp_dsp::preprocess::{preprocess_reads, PreprocessConfig, RawRead};
///
/// let reads = vec![
///     RawRead { channel: 0, frequency_hz: 902.75e6, phase: 1.0, rssi_dbm: -50.0, timestamp_s: 0.0 },
///     RawRead { channel: 0, frequency_hz: 902.75e6, phase: 1.0 + std::f64::consts::PI, rssi_dbm: -50.0, timestamp_s: 0.01 },
///     RawRead { channel: 0, frequency_hz: 902.75e6, phase: 1.02, rssi_dbm: -50.0, timestamp_s: 0.02 },
///     RawRead { channel: 1, frequency_hz: 903.25e6, phase: 1.06, rssi_dbm: -50.0, timestamp_s: 0.2 },
/// ];
/// let obs = preprocess_reads(&reads, &PreprocessConfig::default())?;
/// assert_eq!(obs.len(), 2);
/// // The π-jumped read was folded back onto the majority cluster:
/// assert!((obs[0].phase - 1.0).abs() < 0.05);
/// # Ok::<(), rfp_dsp::preprocess::PreprocessError>(())
/// ```
pub fn preprocess_reads(
    reads: &[RawRead],
    config: &PreprocessConfig,
) -> Result<Vec<ChannelObservation>, PreprocessError> {
    let mut ws = FrontEndWorkspace::default();
    let mut out = Vec::new();
    preprocess_reads_with(&mut ws, reads, config, &mut out)?;
    Ok(out)
}

/// [`preprocess_reads`] against caller-owned scratch: per-channel
/// aggregation runs over the workspace's flat SoA accumulator columns
/// (two passes over the raw reads — no per-channel `Vec`s, no map), the
/// unwrap operates in the workspace's phase column, and writing the final
/// observations simultaneously feeds the fused unwrap+OLS accumulator
/// ([`FrontEndWorkspace::raw_fit`]) and the fit columns
/// ([`FrontEndWorkspace::fit_columns`]). `out` is cleared and refilled;
/// in steady state (buffer capacities reached) the call performs **zero**
/// heap allocations.
///
/// Produces bit-identical observations to [`preprocess_reads`] (which
/// delegates here): the streamed per-channel circular statistics
/// accumulate in the same read order, and the order-statistic medians and
/// unstable index sorts reproduce the original stable orderings exactly.
///
/// # Errors
///
/// As [`preprocess_reads`].
pub fn preprocess_reads_with(
    ws: &mut FrontEndWorkspace,
    reads: &[RawRead],
    config: &PreprocessConfig,
    out: &mut Vec<ChannelObservation>,
) -> Result<(), PreprocessError> {
    use std::f64::consts::{FRAC_PI_2, PI};

    ws.reset_channels();
    out.clear();
    let min_reads = config.min_reads_per_channel.max(1);

    // Pass 1: per-channel counts, first read, RSSI and circular sums.
    // Iterating the reads in input order keeps every per-channel
    // accumulation in that channel's read order — the same summation
    // order as the per-channel vectors of the reference implementation,
    // hence bit-identical sums.
    for r in reads {
        let s = ws.slot(r.channel);
        if ws.count[s] == 0 {
            ws.first_freq[s] = r.frequency_hz;
            ws.first_phase[s] = r.phase;
        }
        ws.count[s] += 1;
        ws.sum_rssi[s] += r.rssi_dbm;
        if config.correct_pi_jumps {
            // Double-angle trick: sums of sin/cos of 2p recover the
            // channel axis modulo π regardless of per-read π jumps.
            let d = 2.0 * r.phase;
            ws.acc_sin[s] += d.sin();
            ws.acc_cos[s] += d.cos();
        } else {
            ws.acc_sin[s] += r.phase.sin();
            ws.acc_cos[s] += r.phase.cos();
        }
    }

    // Per-slot axis (and, without π correction, the spread too — it comes
    // from the same resultant vector as the mean).
    let mut kept = 0usize;
    for s in 0..ws.slots() {
        let n = ws.count[s];
        ws.keep[s] = n >= min_reads;
        if !ws.keep[s] {
            continue;
        }
        kept += 1;
        let (sin, cos) = (ws.acc_sin[s], ws.acc_cos[s]);
        let r = (sin * sin + cos * cos).sqrt() / n as f64;
        if config.correct_pi_jumps {
            // circular_mean(2p).unwrap_or(2·p₀) / 2, streamed.
            let doubled_mean = if r < 1e-12 { 2.0 * ws.first_phase[s] } else { sin.atan2(cos) };
            ws.axis[s] = doubled_mean / 2.0;
        } else {
            ws.axis[s] = if r < 1e-12 { ws.first_phase[s] } else { sin.atan2(cos) };
            ws.spread[s] = (-2.0 * r.clamp(1e-300, 1.0).ln()).sqrt();
        }
    }
    if kept == 0 {
        return Err(PreprocessError::NoUsableChannels);
    }

    // Pass 2 (π-jump mode): fold every read onto its channel axis and
    // accumulate the folded resultant for the per-channel spread.
    if config.correct_pi_jumps {
        for r in reads {
            let s = ws.slot_if_seen(r.channel).expect("seen in pass 1");
            if !ws.keep[s] {
                continue;
            }
            let p = r.phase;
            let folded =
                if angle::distance(p, ws.axis[s]) <= FRAC_PI_2 { p } else { p + PI };
            ws.fold_sin[s] += folded.sin();
            ws.fold_cos[s] += folded.cos();
        }
        for s in 0..ws.slots() {
            if !ws.keep[s] {
                continue;
            }
            let (sin, cos) = (ws.fold_sin[s], ws.fold_cos[s]);
            let r = ((sin * sin + cos * cos).sqrt() / ws.count[s] as f64).min(1.0);
            ws.spread[s] = (-2.0 * r.max(1e-300).ln()).sqrt();
        }
    }

    // Sort the kept slots ascending in frequency. The reference
    // implementation stable-sorts channels that arrive in ascending
    // channel-id order (BTreeMap iteration), so (frequency, channel) as an
    // unstable total order reproduces its ordering exactly.
    ws.order.clear();
    ws.order.extend((0..ws.slots()).filter(|&s| ws.keep[s]));
    {
        let first_freq = &ws.first_freq;
        let chan = &ws.chan;
        ws.order.sort_unstable_by(|&a, &b| {
            first_freq[a]
                .partial_cmp(&first_freq[b])
                .expect("finite frequencies")
                .then_with(|| chan[a].cmp(&chan[b]))
        });
    }

    // Wrapped per-channel phases in sorted order, then cross-channel
    // unwrap in place.
    ws.phase_col.clear();
    for &s in &ws.order {
        ws.phase_col.push(angle::wrap_tau(ws.axis[s]));
    }
    if config.correct_pi_jumps {
        // The per-channel axes are only known modulo π: unwrap them with
        // period π into a continuous curve, then resolve the single global
        // π ambiguity by a majority vote over *every* raw read (far more
        // robust than voting channel by channel).
        angle::unwrap_in_place_period(&mut ws.phase_col, PI);
        for (k, &s) in ws.order.iter().enumerate() {
            ws.unwrapped[s] = ws.phase_col[k];
        }
        let mut votes_axis = 0usize;
        let mut votes_total = 0usize;
        for r in reads {
            let s = ws.slot_if_seen(r.channel).expect("seen in pass 1");
            if !ws.keep[s] {
                continue;
            }
            votes_total += 1;
            if angle::distance(r.phase, ws.unwrapped[s]) <= FRAC_PI_2 {
                votes_axis += 1;
            }
        }
        if 2 * votes_axis < votes_total {
            for p in &mut ws.phase_col {
                *p += PI;
            }
        }
    } else {
        angle::unwrap_in_place(&mut ws.phase_col);
    }

    // Emit the final observations; the same loop feeds the fused
    // unwrap+OLS accumulator and the (freq, phase) fit columns, so the
    // raw line fit afterwards needs no further pass over the window.
    for k in 0..ws.order.len() {
        let s = ws.order[k];
        let freq = ws.first_freq[s];
        let phase = ws.phase_col[k];
        out.push(ChannelObservation {
            channel: ws.chan[s],
            frequency_hz: freq,
            phase,
            rssi_dbm: ws.sum_rssi[s] / ws.count[s] as f64,
            read_count: ws.count[s],
            phase_spread: ws.spread[s],
        });
        ws.emit(freq, phase);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn read(channel: usize, phase: f64) -> RawRead {
        RawRead {
            channel,
            frequency_hz: 902.75e6 + channel as f64 * 0.5e6,
            phase: angle::wrap_tau(phase),
            rssi_dbm: -55.0,
            timestamp_s: channel as f64 * 0.2,
        }
    }

    #[test]
    fn aggregates_per_channel() {
        let reads = vec![read(0, 1.0), read(0, 1.1), read(1, 1.2), read(1, 1.3)];
        let obs = preprocess_reads(&reads, &PreprocessConfig::default()).unwrap();
        assert_eq!(obs.len(), 2);
        assert_eq!(obs[0].read_count, 2);
        assert!((obs[0].phase - 1.05).abs() < 1e-9);
        assert_eq!(obs[0].channel, 0);
        assert!((obs[0].rssi_dbm + 55.0).abs() < 1e-12);
    }

    #[test]
    fn pi_jump_minority_is_folded_back() {
        // 5 reads, 2 jumped by π: the majority cluster must win.
        let reads = vec![
            read(0, 0.5),
            read(0, 0.52),
            read(0, 0.5 + PI),
            read(0, 0.48),
            read(0, 0.51 + PI),
        ];
        let obs = preprocess_reads(&reads, &PreprocessConfig::default()).unwrap();
        assert!((obs[0].phase - 0.5).abs() < 0.05, "phase={}", obs[0].phase);
        assert!(obs[0].phase_spread < 0.1);
    }

    #[test]
    fn pi_jump_near_wrap_boundary() {
        // True phase near 0; jumped reads near π. Wrapping must not confuse
        // the vote.
        let reads = vec![read(0, 0.02), read(0, -0.03), read(0, 0.01 + PI)];
        let obs = preprocess_reads(&reads, &PreprocessConfig::default()).unwrap();
        assert!(
            angle::distance(obs[0].phase, 0.0) < 0.05,
            "phase={}",
            obs[0].phase
        );
    }

    #[test]
    fn unwraps_across_channels() {
        // Steep line: 1.1 rad per channel, wraps several times over 20 channels.
        let true_line = |c: usize| 0.3 + 1.1 * c as f64;
        let reads: Vec<RawRead> = (0..20).map(|c| read(c, true_line(c))).collect();
        let obs = preprocess_reads(&reads, &PreprocessConfig::default()).unwrap();
        for w in obs.windows(2) {
            assert!(
                ((w[1].phase - w[0].phase) - 1.1).abs() < 1e-6,
                "increment {}",
                w[1].phase - w[0].phase
            );
        }
    }

    #[test]
    fn min_reads_filter_drops_thin_channels() {
        let reads = vec![read(0, 1.0), read(0, 1.0), read(1, 2.0)];
        let cfg = PreprocessConfig { min_reads_per_channel: 2, ..Default::default() };
        let obs = preprocess_reads(&reads, &cfg).unwrap();
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].channel, 0);
    }

    #[test]
    fn empty_input_errors() {
        assert_eq!(
            preprocess_reads(&[], &PreprocessConfig::default()).unwrap_err(),
            PreprocessError::NoUsableChannels
        );
    }

    #[test]
    fn correction_can_be_disabled() {
        let reads = vec![read(0, 0.5), read(0, 0.5 + PI)];
        let cfg = PreprocessConfig { correct_pi_jumps: false, ..Default::default() };
        // With correction off the two antipodal reads average to something
        // near the midpoint (circular mean undefined-ish); just check we get
        // an observation and do not crash.
        let obs = preprocess_reads(&reads, &cfg).unwrap();
        assert_eq!(obs[0].read_count, 2);
    }

    #[test]
    fn channels_sorted_by_frequency() {
        let reads = vec![read(5, 1.0), read(1, 0.5), read(3, 0.7)];
        let obs = preprocess_reads(&reads, &PreprocessConfig::default()).unwrap();
        let freqs: Vec<f64> = obs.iter().map(|o| o.frequency_hz).collect();
        assert!(freqs.windows(2).all(|w| w[1] > w[0]));
    }
}
