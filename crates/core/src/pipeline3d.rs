//! The 3-D sensing pipeline (paper §VII future work, packaged like the 2-D
//! [`crate::RfPrism`]).
//!
//! With four antennas the 8 fitted line parameters over-determine the 7
//! unknowns `(x, y, z, dipole axis, k_t, b_t)`; everything else (raw-read
//! pre-processing, multipath suppression, the error detector) is shared
//! with the 2-D pipeline — including the LM engine itself: the 3-D solve
//! is [`LmCore<7>`](crate::LmCore) behind the [`solve_3d_seeded_warm`]
//! facade, the same dimension-generic lane core the 2-D path runs on.

use crate::batch::BatchCache3D;
use crate::detector::{assess, DetectorConfig, MobilityVerdict};
use crate::model::{extract_observation_into, AntennaObservation, ExtractConfig, ExtractError};
use crate::obs;
use crate::solver3d::{
    solve_3d_seeded_warm, Solve3DError, Solve3DSeeds, Solver3DConfig, Solver3DWorkspace,
    TagEstimate3D, WarmStart3D,
};
use rfp_dsp::preprocess::RawRead;
use rfp_dsp::workspace::FrontEndWorkspace;
use rfp_geom::{AntennaPose, Region2};
use rfp_phys::FrequencyPlan;

/// Configuration of the 3-D pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RfPrism3DConfig {
    /// Pre-processing + robust fitting options.
    pub extract: ExtractConfig,
    /// 3-D solver options.
    pub solver: Solver3DConfig,
    /// Error-detector thresholds.
    pub detector: DetectorConfig,
    /// Whether a `Moving` verdict aborts the solve (default true).
    pub reject_moving: bool,
}

impl RfPrism3DConfig {
    /// Paper-style defaults.
    pub fn paper() -> Self {
        RfPrism3DConfig {
            extract: ExtractConfig::paper(),
            solver: Solver3DConfig::default(),
            detector: DetectorConfig::default(),
            reject_moving: true,
        }
    }
}

/// Result of one 3-D sensing pass.
#[derive(Debug, Clone)]
pub struct Sensing3DResult {
    /// Disentangled 3-D tag state.
    pub estimate: TagEstimate3D,
    /// The per-antenna observations that produced it.
    pub observations: Vec<AntennaObservation>,
    /// Error-detector verdict.
    pub verdict: MobilityVerdict,
}

/// Errors from [`RfPrism3D::sense`].
#[derive(Debug, Clone, PartialEq)]
pub enum Sense3DError {
    /// Wrong number of read groups.
    AntennaCountMismatch {
        /// Configured antennas.
        expected: usize,
        /// Supplied groups.
        got: usize,
    },
    /// Too few usable observations (need ≥ 4).
    TooFewObservations {
        /// Usable observations.
        usable: usize,
        /// First extraction error, if any.
        first_error: Option<ExtractError>,
    },
    /// The error detector rejected the window.
    TagMoving {
        /// Worst post-rejection residual std, radians.
        worst_residual_std: f64,
    },
    /// Solver failure.
    Solve(Solve3DError),
}

impl std::fmt::Display for Sense3DError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Sense3DError::AntennaCountMismatch { expected, got } => {
                write!(f, "expected reads for {expected} antennas, got {got}")
            }
            Sense3DError::TooFewObservations { usable, .. } => {
                write!(f, "only {usable} usable antenna observations; 3-D needs at least 4")
            }
            Sense3DError::TagMoving { worst_residual_std } => write!(
                f,
                "tag moved during the hop round (residual {worst_residual_std:.3} rad)"
            ),
            Sense3DError::Solve(e) => write!(f, "3-D solver failed: {e}"),
        }
    }
}

impl std::error::Error for Sense3DError {}

impl From<Solve3DError> for Sense3DError {
    fn from(e: Solve3DError) -> Self {
        Sense3DError::Solve(e)
    }
}

/// Reusable scratch for a full 3-D sensing pass — the 3-D analogue of
/// [`crate::SenseWorkspace`]: DSP front-end columns, 3-D solver scratch and
/// recycled observation buffers, one per worker thread.
#[derive(Debug, Default)]
pub struct Sense3DWorkspace {
    pub(crate) solver: Solver3DWorkspace,
    pub(crate) frontend: FrontEndWorkspace,
    obs_free: Vec<AntennaObservation>,
    vec_free: Vec<Vec<AntennaObservation>>,
}

impl Sense3DWorkspace {
    /// Returns a result's buffers to the workspace pools (see
    /// [`crate::SenseWorkspace::recycle`]).
    pub fn recycle(&mut self, result: Sensing3DResult) {
        self.recycle_observations(result.observations);
    }

    fn take_observations(&mut self) -> Vec<AntennaObservation> {
        let mut v = self.vec_free.pop().unwrap_or_default();
        v.clear();
        v
    }

    fn take_slot(&mut self, pose: AntennaPose) -> AntennaObservation {
        self.obs_free.pop().unwrap_or_else(|| AntennaObservation::new_empty(pose))
    }

    fn recycle_slot(&mut self, slot: AntennaObservation) {
        self.obs_free.push(slot);
    }

    fn recycle_observations(&mut self, mut v: Vec<AntennaObservation>) {
        self.obs_free.append(&mut v);
        self.vec_free.push(v);
    }
}

/// The 3-D RF-Prism pipeline.
#[derive(Debug, Clone)]
pub struct RfPrism3D {
    poses: Vec<AntennaPose>,
    plan: FrequencyPlan,
    region: Region2,
    z_range: (f64, f64),
    config: RfPrism3DConfig,
}

impl RfPrism3D {
    /// Creates a 3-D pipeline; `region` bounds (x, y) and `z_range` bounds
    /// the height search.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 poses are supplied or `z_range` is empty.
    pub fn new(
        poses: Vec<AntennaPose>,
        plan: FrequencyPlan,
        region: Region2,
        z_range: (f64, f64),
    ) -> Self {
        assert!(poses.len() >= 4, "3-D disentangling needs at least 4 antennas");
        assert!(z_range.1 > z_range.0, "empty z range");
        RfPrism3D { poses, plan, region, z_range, config: RfPrism3DConfig::paper() }
    }

    /// Overrides the configuration (builder style).
    pub fn with_config(mut self, config: RfPrism3DConfig) -> Self {
        self.config = config;
        self
    }

    /// The configured channel plan.
    pub fn plan(&self) -> &FrequencyPlan {
        &self.plan
    }

    /// Runs the pipeline on one hop round.
    ///
    /// # Errors
    ///
    /// See [`Sense3DError`].
    pub fn sense(
        &self,
        reads_per_antenna: &[Vec<RawRead>],
    ) -> Result<Sensing3DResult, Sense3DError> {
        let seeds = self.solve_seeds();
        let mut workspace = Sense3DWorkspace::default();
        self.sense_with(reads_per_antenna, &seeds, &mut workspace, None)
    }

    /// [`RfPrism3D::sense`] with a warm-start prior — typically the
    /// previous round's estimate (via [`WarmStart3D::from_estimate`]). The
    /// prior is refined first; when it passes the solver's validation gate
    /// the multi-start scan is skipped, otherwise the solver falls back to
    /// the full (pruned) scan.
    pub fn sense_warm(
        &self,
        reads_per_antenna: &[Vec<RawRead>],
        warm: Option<&WarmStart3D>,
    ) -> Result<Sensing3DResult, Sense3DError> {
        let seeds = self.solve_seeds();
        let mut workspace = Sense3DWorkspace::default();
        self.sense_with(reads_per_antenna, &seeds, &mut workspace, warm)
    }

    /// [`RfPrism3D::sense_warm`] against a prebuilt [`BatchCache3D`] and a
    /// reusable [`Sense3DWorkspace`] — the allocation-free steady-state
    /// entry point (see [`crate::RfPrism::sense_reusing`]).
    ///
    /// # Errors
    ///
    /// As [`RfPrism3D::sense`].
    pub fn sense_reusing(
        &self,
        cache: &BatchCache3D,
        reads_per_antenna: &[Vec<RawRead>],
        warm: Option<&WarmStart3D>,
        workspace: &mut Sense3DWorkspace,
    ) -> Result<Sensing3DResult, Sense3DError> {
        self.sense_with(reads_per_antenna, cache.seeds(), workspace, warm)
    }

    /// The per-scene 3-D solver seeds, with the per-antenna geometry
    /// tables for this pipeline's deployment (see `crate::batch`).
    pub(crate) fn solve_seeds(&self) -> Solve3DSeeds {
        Solve3DSeeds::for_scene(self.region, self.z_range, &self.config.solver, &self.poses)
    }

    /// [`RfPrism3D::sense`] against precomputed seeds and a reusable
    /// workspace; bit-identical results (see `crate::batch`).
    pub(crate) fn sense_with(
        &self,
        reads_per_antenna: &[Vec<RawRead>],
        seeds: &Solve3DSeeds,
        workspace: &mut Sense3DWorkspace,
        warm: Option<&WarmStart3D>,
    ) -> Result<Sensing3DResult, Sense3DError> {
        let _sense_span = obs::span("sense_3d");
        let _sense_timer = obs::time_histogram(obs::id::SENSE_LATENCY_US);
        obs::counter_add(obs::id::PIPELINE_WINDOWS_TOTAL, 1);
        if reads_per_antenna.len() != self.poses.len() {
            return Err(Sense3DError::AntennaCountMismatch {
                expected: self.poses.len(),
                got: reads_per_antenna.len(),
            });
        }
        let mut observations = workspace.take_observations();
        let mut first_error = None;
        {
            let _extract_span = obs::span("extract");
            for (pose, reads) in self.poses.iter().zip(reads_per_antenna) {
                let mut slot = workspace.take_slot(*pose);
                match extract_observation_into(
                    *pose,
                    reads,
                    &self.config.extract,
                    &mut workspace.frontend,
                    &mut slot,
                ) {
                    Ok(()) => observations.push(slot),
                    Err(e) => {
                        workspace.recycle_slot(slot);
                        obs::counter_add(obs::id::PIPELINE_EXTRACT_FAILURES, 1);
                        if first_error.is_none() {
                            first_error = Some(e);
                        }
                    }
                }
            }
        }
        if observations.len() < 4 {
            obs::counter_add(obs::id::PIPELINE_WINDOWS_TOO_FEW_OBS, 1);
            let usable = observations.len();
            workspace.recycle_observations(observations);
            return Err(Sense3DError::TooFewObservations { usable, first_error });
        }
        let verdict = assess(&observations, &self.config.detector);
        obs::verdict(&verdict);
        if self.config.reject_moving {
            if let MobilityVerdict::Moving { worst_residual_std } = verdict {
                obs::counter_add(obs::id::PIPELINE_WINDOWS_MOVING_REJECTED, 1);
                workspace.recycle_observations(observations);
                return Err(Sense3DError::TagMoving { worst_residual_std });
            }
        }
        let estimate = match solve_3d_seeded_warm(
            &observations,
            seeds,
            &self.config.solver,
            &mut workspace.solver,
            warm,
        ) {
            Ok(e) => e,
            Err(e) => {
                workspace.recycle_observations(observations);
                return Err(e.into());
            }
        };
        obs::counter_add(obs::id::PIPELINE_WINDOWS_OK, 1);
        Ok(Sensing3DResult { estimate, observations, verdict })
    }

    /// The (x, y) search region.
    pub fn region(&self) -> Region2 {
        self.region
    }

    /// The z search range.
    pub fn z_range(&self) -> (f64, f64) {
        self.z_range
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_geom::Vec3;
    use rfp_phys::Material;
    use rfp_sim::{Motion, Scene, SimTag};

    fn prism_for(scene: &Scene) -> RfPrism3D {
        RfPrism3D::new(
            scene.antenna_poses(),
            scene.reader().plan,
            scene.region(),
            (0.0, 1.5),
        )
    }

    #[test]
    fn senses_static_tag_in_3d() {
        let scene = Scene::six_antenna_3d();
        let truth = Vec3::new(0.8, 1.6, 0.7);
        let dipole = Vec3::new(0.9, 0.1, 0.5).normalized();
        let tag = SimTag::with_seeded_diversity(3)
            .attached_to(Material::Wood)
            .with_motion(Motion::Static { position: truth, dipole });
        let survey = scene.survey(&tag, 8);
        let result = prism_for(&scene).sense(&survey.per_antenna).unwrap();
        let err = result.estimate.position.distance(truth);
        assert!(err < 0.35, "3-D error {err} m");
        assert!(result.verdict.is_usable());
    }

    #[test]
    fn moving_tag_rejected() {
        let scene = Scene::six_antenna_3d();
        let tag = SimTag::with_seeded_diversity(1).with_motion(Motion::Linear {
            start: Vec3::new(0.2, 1.0, 0.5),
            velocity: Vec3::new(0.05, 0.03, 0.0),
            dipole: Vec3::X,
        });
        let survey = scene.survey(&tag, 9);
        assert!(matches!(
            prism_for(&scene).sense(&survey.per_antenna),
            Err(Sense3DError::TagMoving { .. })
        ));
    }

    #[test]
    fn antenna_count_checked() {
        let scene = Scene::six_antenna_3d();
        let prism = prism_for(&scene);
        assert!(matches!(
            prism.sense(&[Vec::new(), Vec::new()]),
            Err(Sense3DError::AntennaCountMismatch { expected: 6, got: 2 })
        ));
        let err = prism
            .sense(&vec![Vec::new(); 6])
            .unwrap_err();
        assert!(matches!(err, Sense3DError::TooFewObservations { usable: 0, .. }));
        assert!(!format!("{err}").is_empty());
    }

    #[test]
    #[should_panic]
    fn three_poses_panic() {
        let scene = Scene::standard_2d();
        let _ = RfPrism3D::new(
            scene.antenna_poses(),
            scene.reader().plan,
            scene.region(),
            (0.0, 1.0),
        );
    }
}
