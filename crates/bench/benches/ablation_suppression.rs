//! Ablation: multipath suppression strategies compared at the slope level.
//!
//! The paper's §V-D suppression is a hard channel-selection. This bench
//! compares it against plain OLS (no suppression), Theil–Sen (median of
//! slopes) and Huber IRLS (soft down-weighting) on the same cluttered
//! surveys, measuring the per-antenna *slope bias* in distance-equivalent
//! centimetres — the quantity that the solver geometry later amplifies.

use rfp_bench::report;
use rfp_dsp::linfit;
use rfp_dsp::preprocess::{preprocess_reads, PreprocessConfig};
use rfp_dsp::robust::{huber_line_fit, robust_line_fit, RobustFitConfig};
use rfp_geom::Vec2;
use rfp_phys::propagation;
use rfp_sim::{Motion, MultipathEnvironment, Scene, SimTag};

fn main() {
    report::header(
        "Ablation",
        "per-antenna slope bias under multipath, by fitting strategy",
    );
    let mut bias = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    let names = ["OLS (none)", "Theil–Sen", "Huber IRLS", "hard reject (§V-D)"];

    for env_seed in 0..14u64 {
        let scene = Scene::standard_2d()
            .with_environment(MultipathEnvironment::cluttered(3, 100 + env_seed));
        let tag = SimTag::with_seeded_diversity(1 + env_seed)
            .with_motion(Motion::planar_static(Vec2::new(0.6, 1.5), 0.4));
        let survey = scene.survey(&tag, env_seed);
        let plan = &scene.reader().plan;
        let kt = tag.electrical().linearized(plan).kt;
        for (ai, reads) in survey.per_antenna.iter().enumerate() {
            let obs = preprocess_reads(reads, &PreprocessConfig::default()).unwrap();
            let xs: Vec<f64> = obs.iter().map(|o| o.frequency_hz).collect();
            let ys: Vec<f64> = obs.iter().map(|o| o.phase).collect();
            let d = scene.antennas()[ai]
                .pose
                .distance_to(tag.motion().position(0.0));
            let k_true = propagation::slope_from_distance(d) + kt;
            let to_cm =
                |k: f64| ((k - k_true) * propagation::distance_from_slope(1.0)).abs() * 100.0;

            bias[0].push(to_cm(linfit::ols(&xs, &ys).unwrap().slope));
            bias[1].push(to_cm(linfit::theil_sen(&xs, &ys).unwrap().slope));
            bias[2].push(to_cm(huber_line_fit(&xs, &ys, 0.03, 12).unwrap().slope));
            bias[3].push(to_cm(
                robust_line_fit(&xs, &ys, &RobustFitConfig::default()).unwrap().fit.slope,
            ));
        }
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let p90 = |v: &[f64]| {
        let mut s = v.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        s[(s.len() as f64 * 0.9) as usize]
    };
    println!("{:>22} {:>12} {:>12}", "strategy", "mean bias", "p90 bias");
    for (name, b) in names.iter().zip(&bias) {
        println!("{name:>22} {:>12} {:>12}", report::cm(mean(b)), report::cm(p90(b)));
    }
    println!();
    println!("hard channel rejection (the paper's choice) wins on spiky multipath;");
    println!("Huber trails it because down-weighted spikes still leak, and plain OLS");
    println!("takes the full hit. Smooth broadband multipath biases all of them alike.");
    assert!(
        mean(&bias[3]) <= mean(&bias[0]),
        "suppression must beat plain OLS"
    );
}
